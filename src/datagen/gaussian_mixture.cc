#include "datagen/gaussian_mixture.h"

#include <utility>

#include "linalg/cholesky.h"

namespace condensa::datagen {

StatusOr<GaussianMixture> GaussianMixture::Create(
    std::vector<GaussianComponentSpec> components) {
  if (components.empty()) {
    return InvalidArgumentError("mixture needs at least one component");
  }
  const std::size_t d = components.front().mean.dim();
  double total_weight = 0.0;

  GaussianMixture mixture;
  for (GaussianComponentSpec& spec : components) {
    if (spec.mean.dim() != d) {
      return InvalidArgumentError("mixture component dimensions differ");
    }
    if (spec.weight < 0.0) {
      return InvalidArgumentError("mixture weight must be non-negative");
    }
    total_weight += spec.weight;
    CONDENSA_ASSIGN_OR_RETURN(linalg::Matrix factor,
                              linalg::CholeskyFactor(spec.covariance));
    mixture.means_.push_back(std::move(spec.mean));
    mixture.cholesky_factors_.push_back(std::move(factor));
    mixture.weights_.push_back(spec.weight);
  }
  if (total_weight <= 0.0) {
    return InvalidArgumentError("mixture weights sum to zero");
  }
  return mixture;
}

linalg::Vector GaussianMixture::Sample(Rng& rng) const {
  std::size_t component = rng.Categorical(weights_);
  const linalg::Vector& mean = means_[component];
  const linalg::Matrix& l = cholesky_factors_[component];
  const std::size_t d = mean.dim();

  linalg::Vector z(d);
  for (std::size_t i = 0; i < d; ++i) {
    z[i] = rng.Gaussian();
  }
  // x = mean + L z (L lower-triangular).
  linalg::Vector x = mean;
  for (std::size_t r = 0; r < d; ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c <= r; ++c) {
      total += l(r, c) * z[c];
    }
    x[r] += total;
  }
  return x;
}

std::vector<linalg::Vector> GaussianMixture::SampleMany(std::size_t count,
                                                        Rng& rng) const {
  std::vector<linalg::Vector> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(Sample(rng));
  }
  return out;
}

linalg::Vector GaussianMixture::Mean() const {
  linalg::Vector mean(dim());
  double total_weight = 0.0;
  for (std::size_t i = 0; i < means_.size(); ++i) {
    mean += means_[i] * weights_[i];
    total_weight += weights_[i];
  }
  mean /= total_weight;
  return mean;
}

}  // namespace condensa::datagen
