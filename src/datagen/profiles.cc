#include "datagen/profiles.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "data/split.h"
#include "datagen/gaussian_mixture.h"
#include "datagen/random_covariance.h"

namespace condensa::datagen {
namespace {

std::size_t ScaledCount(std::size_t count, double factor) {
  auto scaled = static_cast<std::size_t>(
      std::max(1.0, std::round(factor * static_cast<double>(count))));
  return scaled;
}

// A random point at the given distance from the origin.
linalg::Vector RandomDirectionScaled(std::size_t dim, double radius,
                                     Rng& rng) {
  linalg::Vector v(dim);
  double norm = 0.0;
  while (norm <= 1e-12) {
    for (std::size_t i = 0; i < dim; ++i) {
      v[i] = rng.Gaussian();
    }
    norm = v.Norm();
  }
  return v * (radius / norm);
}

void AddClassSamples(data::Dataset& dataset, const GaussianMixture& mixture,
                     std::size_t count, int label, Rng& rng) {
  for (std::size_t i = 0; i < count; ++i) {
    dataset.Add(mixture.Sample(rng), label);
  }
}

// Reassigns a `rate` fraction of records to a uniformly random *other*
// class. These are the "classification anomalies" whose removal by
// condensation the paper observes as accuracy gains.
data::Dataset InjectLabelNoise(const data::Dataset& dataset, double rate,
                               Rng& rng) {
  CONDENSA_CHECK(dataset.task() == data::TaskType::kClassification);
  std::vector<int> distinct = dataset.DistinctLabels();
  data::Dataset noisy(dataset.dim(), data::TaskType::kClassification);
  if (distinct.size() < 2) {
    noisy.Append(dataset);
    return noisy;
  }
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    int label = dataset.label(i);
    if (rng.Bernoulli(rate)) {
      int replacement = label;
      while (replacement == label) {
        replacement = distinct[rng.UniformIndex(distinct.size())];
      }
      label = replacement;
    }
    noisy.Add(dataset.record(i), label);
  }
  return noisy;
}

GaussianMixture MustCreateMixture(
    std::vector<GaussianComponentSpec> components) {
  StatusOr<GaussianMixture> mixture =
      GaussianMixture::Create(std::move(components));
  CONDENSA_CHECK(mixture.ok());
  return std::move(mixture).value();
}

}  // namespace

data::Dataset MakeIonosphere(Rng& rng, const ProfileOptions& options) {
  constexpr std::size_t kDim = 34;
  const std::size_t n_good = ScaledCount(225, options.size_factor);
  const std::size_t n_bad = ScaledCount(126, options.size_factor);

  // "Good" radar returns: two tight, strongly correlated modes.
  linalg::Vector good_center = RandomDirectionScaled(kDim, 1.0, rng);
  linalg::Vector mode_offset = RandomDirectionScaled(kDim, 1.2, rng);
  linalg::Matrix good_cov_a =
      RandomCovariance(GeometricSpectrum(kDim, 2.0, 0.85), rng);
  linalg::Matrix good_cov_b =
      RandomCovariance(GeometricSpectrum(kDim, 1.6, 0.85), rng);
  GaussianMixture good = MustCreateMixture({
      {good_center + mode_offset, good_cov_a, 0.6},
      {good_center - mode_offset, good_cov_b, 0.4},
  });

  // "Bad" returns: one diffuse cloud displaced from the good cluster.
  linalg::Vector bad_center =
      good_center + RandomDirectionScaled(kDim, 4.2, rng);
  linalg::Matrix bad_cov =
      RandomCovariance(GeometricSpectrum(kDim, 3.0, 0.92), rng);
  GaussianMixture bad = MustCreateMixture({{bad_center, bad_cov, 1.0}});

  data::Dataset dataset(kDim, data::TaskType::kClassification);
  AddClassSamples(dataset, good, n_good, 0, rng);
  AddClassSamples(dataset, bad, n_bad, 1, rng);
  dataset = InjectLabelNoise(dataset, 0.03, rng);
  return data::Shuffled(dataset, rng);
}

data::Dataset MakeEcoli(Rng& rng, const ProfileOptions& options) {
  constexpr std::size_t kDim = 7;
  // Original class sizes: cp 143, im 77, pp 52, imU 35, om 20, omL 5,
  // imL 2, imS 2.
  const std::size_t kCounts[] = {143, 77, 52, 35, 20, 5, 2, 2};

  data::Dataset dataset(kDim, data::TaskType::kClassification);
  for (std::size_t c = 0; c < std::size(kCounts); ++c) {
    linalg::Vector center = RandomDirectionScaled(kDim, 1.9, rng);
    linalg::Matrix cov =
        RandomCovariance(GeometricSpectrum(kDim, 1.0, 0.70), rng);
    GaussianMixture mixture = MustCreateMixture({{center, cov, 1.0}});
    AddClassSamples(dataset, mixture,
                    ScaledCount(kCounts[c], options.size_factor),
                    static_cast<int>(c), rng);
  }
  dataset = InjectLabelNoise(dataset, 0.02, rng);
  return data::Shuffled(dataset, rng);
}

data::Dataset MakePima(Rng& rng, const ProfileOptions& options) {
  constexpr std::size_t kDim = 8;
  const std::size_t n_negative = ScaledCount(500, options.size_factor);
  const std::size_t n_positive = ScaledCount(268, options.size_factor);

  // Heavily overlapping classes: the separation is deliberately small so
  // baseline 1-NN accuracy lands near the real dataset's ~70%.
  linalg::Vector negative_center = RandomDirectionScaled(kDim, 1.0, rng);
  linalg::Vector positive_center =
      negative_center + RandomDirectionScaled(kDim, 1.8, rng);
  linalg::Vector mode_offset = RandomDirectionScaled(kDim, 0.9, rng);

  GaussianMixture negative = MustCreateMixture({
      {negative_center + mode_offset,
       RandomCovariance(GeometricSpectrum(kDim, 1.8, 0.80), rng), 0.55},
      {negative_center - mode_offset,
       RandomCovariance(GeometricSpectrum(kDim, 1.4, 0.80), rng), 0.45},
  });
  GaussianMixture positive = MustCreateMixture({
      {positive_center,
       RandomCovariance(GeometricSpectrum(kDim, 2.0, 0.85), rng), 1.0},
  });

  data::Dataset dataset(kDim, data::TaskType::kClassification);
  AddClassSamples(dataset, negative, n_negative, 0, rng);
  AddClassSamples(dataset, positive, n_positive, 1, rng);
  // The paper highlights Pima's classification anomalies: 8% label noise.
  dataset = InjectLabelNoise(dataset, 0.08, rng);
  return data::Shuffled(dataset, rng);
}

data::Dataset MakeAbalone(Rng& rng, const ProfileOptions& options) {
  constexpr std::size_t kDim = 7;
  const std::size_t n = ScaledCount(4177, options.size_factor);

  // All physical measurements are near-collinear functions of a latent
  // size factor s (lengths ~ s, weights ~ s^3), which reproduces the
  // original's strongly correlated attribute structure.
  const double kLinearScale[] = {0.52, 0.41, 0.14};       // length dims
  const double kCubicScale[] = {0.83, 0.36, 0.18, 0.24};  // weight dims

  data::Dataset dataset(kDim, data::TaskType::kRegression);
  for (std::size_t i = 0; i < n; ++i) {
    double s = std::exp(rng.Gaussian(0.0, 0.35));
    linalg::Vector record(kDim);
    std::size_t j = 0;
    for (double scale : kLinearScale) {
      record[j++] = scale * s + rng.Gaussian(0.0, 0.035 * scale);
    }
    double s3 = s * s * s;
    for (double scale : kCubicScale) {
      record[j++] = scale * s3 + rng.Gaussian(0.0, 0.08 * scale);
    }
    // Age in years = rings + 1.5; rings grow sublinearly with size.
    // Rings cap at 29 in the UCI data; clamp the lognormal tail to match.
    double age = 1.5 + 8.0 * std::pow(s, 1.5) + rng.Gaussian(0.0, 1.0);
    age = std::clamp(age, 1.0, 30.5);
    dataset.Add(std::move(record), age);
  }
  return data::Shuffled(dataset, rng);
}

data::Dataset MakeGaussianBlobs(std::size_t num_classes,
                                std::size_t per_class, std::size_t dim,
                                double separation, Rng& rng) {
  CONDENSA_CHECK_GT(num_classes, 0u);
  CONDENSA_CHECK_GT(per_class, 0u);
  data::Dataset dataset(dim, data::TaskType::kClassification);
  for (std::size_t c = 0; c < num_classes; ++c) {
    linalg::Vector center = RandomDirectionScaled(dim, separation, rng);
    for (std::size_t i = 0; i < per_class; ++i) {
      linalg::Vector record(dim);
      for (std::size_t j = 0; j < dim; ++j) {
        record[j] = center[j] + rng.Gaussian();
      }
      dataset.Add(std::move(record), static_cast<int>(c));
    }
  }
  return data::Shuffled(dataset, rng);
}

StatusOr<data::Dataset> MakeProfileByName(const std::string& name, Rng& rng,
                                          const ProfileOptions& options) {
  if (name == "ionosphere") return MakeIonosphere(rng, options);
  if (name == "ecoli") return MakeEcoli(rng, options);
  if (name == "pima") return MakePima(rng, options);
  if (name == "abalone") return MakeAbalone(rng, options);
  return NotFoundError("unknown profile: " + name);
}

}  // namespace condensa::datagen
