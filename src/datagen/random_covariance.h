// Random covariance structure for synthetic data generation.
//
// The UCI-profile generators need class-conditional covariance matrices
// with controlled anisotropy (strong inter-attribute correlations are what
// the condensation approach preserves and the perturbation baseline loses).
// A covariance is built as Q diag(spectrum) Qᵀ with Q a random rotation.

#ifndef CONDENSA_DATAGEN_RANDOM_COVARIANCE_H_
#define CONDENSA_DATAGEN_RANDOM_COVARIANCE_H_

#include "common/random.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace condensa::datagen {

// Returns a uniformly random orthogonal matrix (Gram-Schmidt on a Gaussian
// matrix; Haar-distributed up to column signs, which is all we need).
linalg::Matrix RandomOrthogonal(std::size_t dim, Rng& rng);

// Returns the geometric eigenvalue spectrum {first, first·ratio, ...}.
// Requires first > 0 and ratio in (0, 1].
linalg::Vector GeometricSpectrum(std::size_t dim, double first, double ratio);

// Returns Q diag(spectrum) Qᵀ with a fresh random rotation Q. Spectrum
// entries must be non-negative.
linalg::Matrix RandomCovariance(const linalg::Vector& spectrum, Rng& rng);

}  // namespace condensa::datagen

#endif  // CONDENSA_DATAGEN_RANDOM_COVARIANCE_H_
