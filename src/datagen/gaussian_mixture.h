// Gaussian mixture sampling.
//
// Class-conditional densities in the synthetic UCI profiles are mixtures of
// a few correlated Gaussians; samples are drawn as mean + L z with L the
// Cholesky factor of the component covariance.

#ifndef CONDENSA_DATAGEN_GAUSSIAN_MIXTURE_H_
#define CONDENSA_DATAGEN_GAUSSIAN_MIXTURE_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace condensa::datagen {

// One mixture component, specified by its mean and covariance.
struct GaussianComponentSpec {
  linalg::Vector mean;
  linalg::Matrix covariance;
  double weight = 1.0;
};

class GaussianMixture {
 public:
  // Validates and pre-factorizes the components. Fails when the list is
  // empty, dimensions are inconsistent, a weight is negative or all zero,
  // or a covariance is not positive definite.
  static StatusOr<GaussianMixture> Create(
      std::vector<GaussianComponentSpec> components);

  std::size_t dim() const { return means_.front().dim(); }
  std::size_t num_components() const { return means_.size(); }

  // Draws one point.
  linalg::Vector Sample(Rng& rng) const;

  // Draws `count` points.
  std::vector<linalg::Vector> SampleMany(std::size_t count, Rng& rng) const;

  // The exact mixture mean, Σ w_i μ_i / Σ w_i.
  linalg::Vector Mean() const;

 private:
  GaussianMixture() = default;

  std::vector<linalg::Vector> means_;
  std::vector<linalg::Matrix> cholesky_factors_;
  std::vector<double> weights_;
};

}  // namespace condensa::datagen

#endif  // CONDENSA_DATAGEN_GAUSSIAN_MIXTURE_H_
