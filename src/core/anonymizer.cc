#include "core/anonymizer.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "common/thread_pool.h"
#include "linalg/eigen.h"
#include "obs/metrics.h"
#include "obs/timing.h"
#include "simd/distance.h"

namespace condensa::core {

std::vector<linalg::Vector> SampleFromEigen(
    const linalg::Vector& centroid, const linalg::EigenDecomposition& eigen,
    std::size_t count, SamplingDistribution distribution, Rng& rng) {
  const std::size_t d = centroid.dim();
  // Per-eigenvector scale: uniform draws span ±sqrt(3 λ_j) (variance λ_j),
  // Gaussian draws use stddev sqrt(λ_j).
  const bool gaussian = distribution == SamplingDistribution::kGaussian;
  linalg::Vector scale(d);
  for (std::size_t j = 0; j < d; ++j) {
    // Singular group covariances (constant attributes, duplicate points)
    // can surface eigenvalues a hair below zero through numerical noise;
    // treat them as the exact zeros they represent rather than feeding
    // sqrt a negative.
    const double lambda = std::max(0.0, eigen.eigenvalues[j]);
    scale[j] = gaussian ? std::sqrt(lambda) : std::sqrt(3.0 * lambda);
  }

  // Batched per-group generation: pack the active eigenvectors (zero-
  // scale axes draw nothing, exactly as before) once per group,
  // transposed to contiguous rows, then emit each record as one draw
  // pass plus one vectorized accumulation. Draw order (ascending j) and
  // per-element addition order are unchanged, and simd::AddScaledRows is
  // contraction-free, so the output is bit-identical to the original
  // per-axis loop.
  std::vector<std::size_t> active;
  active.reserve(d);
  for (std::size_t j = 0; j < d; ++j) {
    if (scale[j] != 0.0) active.push_back(j);
  }
  std::vector<double> rows(active.size() * d);
  for (std::size_t a = 0; a < active.size(); ++a) {
    for (std::size_t r = 0; r < d; ++r) {
      rows[a * d + r] = eigen.eigenvectors(r, active[a]);
    }
  }
  std::vector<double> coeffs(active.size());

  std::vector<linalg::Vector> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    linalg::Vector point = centroid;
    for (std::size_t a = 0; a < active.size(); ++a) {
      const double s = scale[active[a]];
      coeffs[a] = gaussian ? rng.Gaussian(0.0, s) : rng.Uniform(-s, s);
    }
    simd::AddScaledRows(d, coeffs.data(), rows.data(), active.size(),
                        point.data());
    out.push_back(std::move(point));
  }
  return out;
}

StatusOr<std::vector<linalg::Vector>> Anonymizer::GenerateFromGroup(
    const GroupStatistics& group, std::size_t count, Rng& rng) const {
  if (group.empty()) {
    return InvalidArgumentError("cannot anonymize an empty group");
  }
  if (options_.group_sampler) {
    return options_.group_sampler(group, count, rng);
  }
  linalg::Vector centroid = group.Centroid();

  if (group.count() == 1) {
    // Degenerate group: zero covariance, the centroid is the exact record.
    std::vector<linalg::Vector> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(centroid);
    }
    return out;
  }

  CONDENSA_ASSIGN_OR_RETURN(
      linalg::EigenDecomposition eigen,
      linalg::CovarianceEigenDecomposition(group.Covariance()));
  return SampleFromEigen(centroid, eigen, count, options_.distribution, rng);
}

StatusOr<std::vector<linalg::Vector>> Anonymizer::Generate(
    const CondensedGroupSet& groups, Rng& rng) const {
  obs::ScopedTimer timer(obs::DefaultRegistry().GetHistogram(
      "condensa_pool_generate_seconds"));

  // One substream and one result slot per group, assigned in group order
  // on this thread, so the released data is a pure function of the seed:
  // workers race only over *which slot runs when*, never over the Rng.
  const std::size_t num_groups = groups.num_groups();
  std::vector<Rng> streams;
  streams.reserve(num_groups);
  for (std::size_t i = 0; i < num_groups; ++i) {
    streams.push_back(rng.Split());
  }
  std::vector<StatusOr<std::vector<linalg::Vector>>> slots(
      num_groups, std::vector<linalg::Vector>{});
  std::vector<std::function<void()>> tasks;
  tasks.reserve(num_groups);
  for (std::size_t i = 0; i < num_groups; ++i) {
    tasks.push_back([this, &groups, &streams, &slots, i] {
      const GroupStatistics& group = groups.group(i);
      std::size_t count = options_.records_per_group > 0
                              ? options_.records_per_group
                              : group.count();
      slots[i] = GenerateFromGroup(group, count, streams[i]);
    });
  }
  ParallelRun(ThreadPool::ResolveThreadCount(options_.num_threads), tasks);

  // The true output size: records_per_group overrides each group's n(G),
  // so TotalRecords() would over- (or under-) reserve in that mode.
  const std::size_t total_records =
      options_.records_per_group > 0
          ? num_groups * options_.records_per_group
          : groups.TotalRecords();
  std::vector<linalg::Vector> out;
  out.reserve(total_records);
  for (StatusOr<std::vector<linalg::Vector>>& slot : slots) {
    CONDENSA_RETURN_IF_ERROR(slot.status());
    for (linalg::Vector& point : *slot) {
      out.push_back(std::move(point));
    }
  }
  return out;
}

}  // namespace condensa::core
