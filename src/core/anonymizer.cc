#include "core/anonymizer.h"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.h"

namespace condensa::core {

StatusOr<std::vector<linalg::Vector>> Anonymizer::GenerateFromGroup(
    const GroupStatistics& group, std::size_t count, Rng& rng) const {
  if (group.empty()) {
    return InvalidArgumentError("cannot anonymize an empty group");
  }
  const std::size_t d = group.dim();
  linalg::Vector centroid = group.Centroid();

  std::vector<linalg::Vector> out;
  out.reserve(count);

  if (group.count() == 1) {
    // Degenerate group: zero covariance, the centroid is the exact record.
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(centroid);
    }
    return out;
  }

  CONDENSA_ASSIGN_OR_RETURN(
      linalg::EigenDecomposition eigen,
      linalg::CovarianceEigenDecomposition(group.Covariance()));

  // Per-eigenvector scale: uniform draws span ±sqrt(3 λ_j) (variance λ_j),
  // Gaussian draws use stddev sqrt(λ_j).
  const bool gaussian =
      options_.distribution == SamplingDistribution::kGaussian;
  linalg::Vector scale(d);
  for (std::size_t j = 0; j < d; ++j) {
    // Singular group covariances (constant attributes, duplicate points)
    // can surface eigenvalues a hair below zero through numerical noise;
    // treat them as the exact zeros they represent rather than feeding
    // sqrt a negative.
    const double lambda = std::max(0.0, eigen.eigenvalues[j]);
    scale[j] = gaussian ? std::sqrt(lambda) : std::sqrt(3.0 * lambda);
  }

  for (std::size_t i = 0; i < count; ++i) {
    linalg::Vector point = centroid;
    for (std::size_t j = 0; j < d; ++j) {
      if (scale[j] == 0.0) continue;
      double u = gaussian ? rng.Gaussian(0.0, scale[j])
                          : rng.Uniform(-scale[j], scale[j]);
      // point += u * e_j without materializing the eigenvector copy.
      for (std::size_t r = 0; r < d; ++r) {
        point[r] += u * eigen.eigenvectors(r, j);
      }
    }
    out.push_back(std::move(point));
  }
  return out;
}

StatusOr<std::vector<linalg::Vector>> Anonymizer::Generate(
    const CondensedGroupSet& groups, Rng& rng) const {
  std::vector<linalg::Vector> out;
  out.reserve(groups.TotalRecords());
  for (const GroupStatistics& group : groups.groups()) {
    std::size_t count = options_.records_per_group > 0
                            ? options_.records_per_group
                            : group.count();
    CONDENSA_ASSIGN_OR_RETURN(std::vector<linalg::Vector> generated,
                              GenerateFromGroup(group, count, rng));
    for (linalg::Vector& point : generated) {
      out.push_back(std::move(point));
    }
  }
  return out;
}

}  // namespace condensa::core
