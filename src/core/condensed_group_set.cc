#include "core/condensed_group_set.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace condensa::core {

void CondensedGroupSet::SetBackend(std::string id, int version) {
  CONDENSA_CHECK(!id.empty());
  CONDENSA_CHECK_GE(version, 1);
  backend_id_ = std::move(id);
  backend_version_ = version;
}

void CondensedGroupSet::AddGroup(GroupStatistics group) {
  CONDENSA_CHECK_EQ(group.dim(), dim_);
  CONDENSA_CHECK_GT(group.count(), 0u);
  groups_.push_back(std::move(group));
}

void CondensedGroupSet::Absorb(CondensedGroupSet&& other) {
  CONDENSA_CHECK_EQ(other.dim_, dim_);
  groups_.reserve(groups_.size() + other.groups_.size());
  for (GroupStatistics& group : other.groups_) {
    CONDENSA_CHECK_GT(group.count(), 0u);
    groups_.push_back(std::move(group));
    // Moving a group between sets changes which set's caches may hold
    // its factorization; restamping is conservative (costs at most one
    // cache miss) and keeps "absorb invalidates" unconditionally true.
    groups_.back().BumpVersion();
  }
  other.groups_.clear();
}

void CondensedGroupSet::RemoveGroup(std::size_t i) {
  CONDENSA_CHECK_LT(i, groups_.size());
  groups_[i] = std::move(groups_.back());
  groups_.pop_back();
}

std::size_t CondensedGroupSet::NearestGroup(
    const linalg::Vector& point) const {
  CONDENSA_CHECK(!groups_.empty());
  std::size_t best = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    double distance = groups_[i].SquaredDistanceToCentroid(point);
    if (distance < best_distance) {
      best_distance = distance;
      best = i;
    }
  }
  return best;
}

std::size_t CondensedGroupSet::TotalRecords() const {
  std::size_t total = 0;
  for (const GroupStatistics& g : groups_) {
    total += g.count();
  }
  return total;
}

PrivacySummary CondensedGroupSet::Summary() const {
  PrivacySummary summary;
  summary.num_groups = groups_.size();
  if (groups_.empty()) return summary;
  summary.min_group_size = std::numeric_limits<std::size_t>::max();
  for (const GroupStatistics& g : groups_) {
    summary.total_records += g.count();
    summary.min_group_size = std::min(summary.min_group_size, g.count());
    summary.max_group_size = std::max(summary.max_group_size, g.count());
  }
  summary.average_group_size = static_cast<double>(summary.total_records) /
                               static_cast<double>(summary.num_groups);
  return summary;
}

}  // namespace condensa::core
