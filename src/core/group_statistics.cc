#include "core/group_statistics.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"

namespace condensa::core {

std::uint64_t GroupStatistics::NextVersion() {
  // Starts at 1 so 0 can mean "never stamped" in diagnostics.
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void GroupStatistics::BumpVersion() { version_ = NextVersion(); }

GroupStatistics::GroupStatistics(std::size_t dim)
    : first_order_(dim), second_order_(dim, dim), version_(NextVersion()) {}

GroupStatistics GroupStatistics::FromMoments(std::size_t count,
                                             const linalg::Vector& centroid,
                                             const linalg::Matrix& covariance) {
  CONDENSA_CHECK_GT(count, 0u);
  CONDENSA_CHECK_EQ(covariance.rows(), centroid.dim());
  CONDENSA_CHECK_EQ(covariance.cols(), centroid.dim());
  const std::size_t d = centroid.dim();
  const double n = static_cast<double>(count);

  GroupStatistics stats(d);
  stats.count_ = count;
  stats.first_order_ = centroid * n;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      // Paper Eq. 3: Sc_ij = n C_ij + Fs_i Fs_j / n.
      stats.second_order_(i, j) =
          n * covariance(i, j) +
          stats.first_order_[i] * stats.first_order_[j] / n;
    }
  }
  return stats;
}

GroupStatistics GroupStatistics::FromRawSums(std::size_t count,
                                             linalg::Vector first_order,
                                             linalg::Matrix second_order) {
  CONDENSA_CHECK_GT(count, 0u);
  CONDENSA_CHECK_EQ(second_order.rows(), first_order.dim());
  CONDENSA_CHECK_EQ(second_order.cols(), first_order.dim());
  CONDENSA_CHECK(second_order.IsSymmetric(
      1e-8 * std::max(1.0, second_order.MaxAbs())));
  GroupStatistics stats(first_order.dim());
  stats.count_ = count;
  stats.first_order_ = std::move(first_order);
  stats.second_order_ = std::move(second_order);
  return stats;
}

void GroupStatistics::Add(const linalg::Vector& record) {
  CONDENSA_CHECK_EQ(record.dim(), dim());
  version_ = NextVersion();
  ++count_;
  for (std::size_t i = 0; i < record.dim(); ++i) {
    first_order_[i] += record[i];
    for (std::size_t j = i; j < record.dim(); ++j) {
      double product = record[i] * record[j];
      second_order_(i, j) += product;
      if (j != i) second_order_(j, i) += product;
    }
  }
}

void GroupStatistics::Remove(const linalg::Vector& record) {
  CONDENSA_CHECK_EQ(record.dim(), dim());
  CONDENSA_CHECK_GT(count_, 0u);
  version_ = NextVersion();
  --count_;
  for (std::size_t i = 0; i < record.dim(); ++i) {
    first_order_[i] -= record[i];
    for (std::size_t j = i; j < record.dim(); ++j) {
      double product = record[i] * record[j];
      second_order_(i, j) -= product;
      if (j != i) second_order_(j, i) -= product;
    }
  }
}

void GroupStatistics::Merge(const GroupStatistics& other) {
  CONDENSA_CHECK_EQ(dim(), other.dim());
  version_ = NextVersion();
  count_ += other.count_;
  first_order_ += other.first_order_;
  second_order_ += other.second_order_;
}

linalg::Vector GroupStatistics::Centroid() const {
  CONDENSA_CHECK_GT(count_, 0u);
  return first_order_ / static_cast<double>(count_);
}

linalg::Matrix GroupStatistics::Covariance() const {
  CONDENSA_CHECK_GT(count_, 0u);
  const std::size_t d = dim();
  const double n = static_cast<double>(count_);
  linalg::Matrix cov(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      // Observation 2: cov_ij = Sc_ij / n - Fs_i Fs_j / n^2.
      double value =
          second_order_(i, j) / n - first_order_[i] * first_order_[j] / (n * n);
      if (i == j && value < 0.0) {
        value = 0.0;  // round-off on degenerate groups
      }
      cov(i, j) = value;
      cov(j, i) = value;
    }
  }
  return cov;
}

double GroupStatistics::SquaredDistanceToCentroid(
    const linalg::Vector& point) const {
  CONDENSA_CHECK_GT(count_, 0u);
  CONDENSA_CHECK_EQ(point.dim(), dim());
  const double n = static_cast<double>(count_);
  double total = 0.0;
  for (std::size_t i = 0; i < point.dim(); ++i) {
    double diff = point[i] - first_order_[i] / n;
    total += diff * diff;
  }
  return total;
}

}  // namespace condensa::core
