#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include <functional>

#include "common/thread_pool.h"
#include "core/checkpointing.h"
#include "core/dynamic_condenser.h"
#include "core/static_condenser.h"
#include "obs/timing.h"
#include "obs/trace.h"

namespace condensa::core {
namespace {

const char* ModeName(CondensationMode mode) {
  return mode == CondensationMode::kStatic ? "static" : "dynamic";
}

// NaN/Inf would silently poison every aggregate they touch (sums,
// covariances, eigenvalues), so the engine rejects them up front.
Status ValidateFinite(const data::Dataset& input) {
  for (std::size_t i = 0; i < input.size(); ++i) {
    for (std::size_t j = 0; j < input.dim(); ++j) {
      if (!std::isfinite(input.record(i)[j])) {
        return InvalidArgumentError(
            "record " + std::to_string(i) + " attribute " +
            std::to_string(j) + " is not finite");
      }
    }
    if (input.task() == data::TaskType::kRegression &&
        !std::isfinite(input.target(i))) {
      return InvalidArgumentError("record " + std::to_string(i) +
                                  " target is not finite");
    }
  }
  return OkStatus();
}

// Condenses one point pool with an explicit k, honouring the mode. A
// non-empty `checkpoint_dir` makes the dynamic stream crash-safe by
// routing it through a DurableCondenser rooted there.
StatusOr<CondensedGroupSet> CondensePool(
    const std::vector<linalg::Vector>& points, std::size_t k,
    const CondensationConfig& config, const std::string& checkpoint_dir,
    Rng& rng, std::size_t* splits_out) {
  obs::TraceSpan span("engine.condense_pool");
  if (splits_out != nullptr) *splits_out = 0;
  if (config.mode == CondensationMode::kStatic) {
    if (config.group_construction) {
      CONDENSA_ASSIGN_OR_RETURN(CondensedGroupSet groups,
                                config.group_construction(points, k, rng));
      groups.SetBackend(config.backend, config.backend_version);
      return groups;
    }
    StaticCondenser condenser(StaticCondenserOptions{.group_size = k});
    return condenser.Condense(points, rng);
  }

  // Dynamic mode: static bootstrap prefix, then stream the remainder.
  CONDENSA_CHECK(!points.empty());
  std::vector<linalg::Vector> ordered = points;
  if (config.shuffle_stream) {
    rng.Shuffle(ordered);
  }
  std::size_t bootstrap_count = static_cast<std::size_t>(
      config.bootstrap_fraction * static_cast<double>(ordered.size()));
  if (bootstrap_count > 0) {
    bootstrap_count = std::max(bootstrap_count, k);
  }
  bootstrap_count = std::min(bootstrap_count, ordered.size());
  if (bootstrap_count < k) {
    bootstrap_count = 0;  // pool too small to bootstrap; stream everything
  }

  const DynamicCondenserOptions condenser_options{
      .group_size = k,
      .split_rule = config.split_rule,
      .backend = config.backend,
      .backend_version = config.backend_version,
      .bootstrap_construction = config.group_construction};

  if (!checkpoint_dir.empty()) {
    CONDENSA_ASSIGN_OR_RETURN(
        DurableCondenser durable,
        DurableCondenser::Create(
            ordered.front().dim(), condenser_options,
            DurabilityOptions{.snapshot_interval = config.snapshot_interval},
            checkpoint_dir));
    if (bootstrap_count > 0) {
      std::vector<linalg::Vector> prefix(ordered.begin(),
                                         ordered.begin() + bootstrap_count);
      CONDENSA_RETURN_IF_ERROR(durable.Bootstrap(prefix, rng));
    }
    for (std::size_t i = bootstrap_count; i < ordered.size(); ++i) {
      CONDENSA_RETURN_IF_ERROR(durable.Insert(ordered[i]));
    }
    // Leave the final structure durable before finalizing the stream.
    CONDENSA_RETURN_IF_ERROR(durable.Checkpoint());
    if (splits_out != nullptr) {
      *splits_out = durable.condenser().split_count();
    }
    return durable.TakeGroups();
  }

  DynamicCondenser condenser(ordered.front().dim(), condenser_options);
  if (bootstrap_count > 0) {
    std::vector<linalg::Vector> prefix(ordered.begin(),
                                       ordered.begin() + bootstrap_count);
    CONDENSA_RETURN_IF_ERROR(condenser.Bootstrap(prefix, rng));
  }
  for (std::size_t i = bootstrap_count; i < ordered.size(); ++i) {
    CONDENSA_RETURN_IF_ERROR(condenser.Insert(ordered[i]));
  }
  if (splits_out != nullptr) *splits_out = condenser.split_count();
  return condenser.TakeGroups();
}

// Condenses one record pool into a CondensedPools::Pool, clamping k to
// the pool size (a class smaller than k cannot split below one group).
StatusOr<CondensedPools::Pool> MakePool(
    const std::vector<linalg::Vector>& points, int label,
    const CondensationConfig& config, Rng& rng) {
  std::size_t effective_k =
      std::min<std::size_t>(config.group_size, points.size());
  std::size_t splits = 0;
  // Each pool checkpoints in its own subdirectory, keyed by label.
  const std::string checkpoint_dir =
      config.checkpoint_dir.empty()
          ? std::string()
          : config.checkpoint_dir + "/pool-" + std::to_string(label);
  CONDENSA_ASSIGN_OR_RETURN(
      CondensedGroupSet groups,
      CondensePool(points, effective_k, config, checkpoint_dir, rng,
                   &splits));
  return CondensedPools::Pool{label, splits, std::move(groups)};
}

}  // namespace

std::size_t AnonymizationResult::AchievedIndistinguishability() const {
  std::size_t level = std::numeric_limits<std::size_t>::max();
  bool any = false;
  for (const PoolReport& report : reports) {
    if (report.privacy.num_groups == 0) continue;
    level = std::min(level, report.privacy.min_group_size);
    any = true;
  }
  return any ? level : 0;
}

double AnonymizationResult::AverageGroupSize() const {
  std::size_t records = 0;
  std::size_t groups = 0;
  for (const PoolReport& report : reports) {
    records += report.privacy.total_records;
    groups += report.privacy.num_groups;
  }
  if (groups == 0) return 0.0;
  return static_cast<double>(records) / static_cast<double>(groups);
}

std::vector<PoolReport> CondensedPools::Reports() const {
  std::vector<PoolReport> reports;
  reports.reserve(pools.size());
  for (const Pool& pool : pools) {
    PoolReport report;
    report.label = pool.label;
    report.pool_size = pool.groups.TotalRecords();
    report.effective_group_size = pool.groups.indistinguishability_level();
    report.privacy = pool.groups.Summary();
    report.splits = pool.splits;
    reports.push_back(report);
  }
  return reports;
}

Status CondensationConfig::Validate() const {
  if (group_size < 1) {
    return InvalidArgumentError("group_size (k) must be >= 1");
  }
  if (!(bootstrap_fraction >= 0.0) || !(bootstrap_fraction <= 1.0)) {
    return InvalidArgumentError("bootstrap_fraction must be in [0, 1]");
  }
  if (snapshot_interval < 1) {
    return InvalidArgumentError("snapshot_interval must be >= 1");
  }
  if (backend.empty()) {
    return InvalidArgumentError("backend id must be non-empty");
  }
  if (backend_version < 1) {
    return InvalidArgumentError("backend_version must be >= 1");
  }
  if (backend != CondensedGroupSet::kDefaultBackendId &&
      !group_construction) {
    return InvalidArgumentError(
        "backend '" + backend +
        "' has no construction hook bound; resolve the id through "
        "backend::Registry instead of setting it directly");
  }
  return OkStatus();
}

CondensationEngine::CondensationEngine(CondensationConfig config)
    : config_(config) {}

StatusOr<CondensedGroupSet> CondensationEngine::CondensePoints(
    const std::vector<linalg::Vector>& points, Rng& rng) const {
  CONDENSA_RETURN_IF_ERROR(config_.Validate());
  const std::string checkpoint_dir =
      config_.checkpoint_dir.empty()
          ? std::string()
          : config_.checkpoint_dir + "/pool-points";
  return CondensePool(points, config_.group_size, config_, checkpoint_dir,
                      rng, nullptr);
}

StatusOr<CondensedPools> CondensationEngine::Condense(
    const data::Dataset& input, Rng& rng) const {
  CONDENSA_RETURN_IF_ERROR(config_.Validate());
  if (input.empty()) {
    return InvalidArgumentError("cannot condense an empty dataset");
  }
  CONDENSA_RETURN_IF_ERROR(ValidateFinite(input));

  // Engine-level accounting: wall time per run (labeled by mode), input
  // totals, and last-run gauges — the engine's final stats report.
  obs::MetricsRegistry& registry =
      config_.metrics != nullptr ? *config_.metrics : obs::DefaultRegistry();
  const obs::Labels mode_labels = {{"mode", ModeName(config_.mode)}};
  obs::TraceSpan span("engine.condense");
  obs::ScopedTimer run_timer(
      registry.GetHistogram("condensa_engine_condense_seconds", mode_labels));
  registry.GetCounter("condensa_engine_runs_total", mode_labels).Increment();
  registry.GetCounter("condensa_engine_records_total")
      .Increment(input.size());

  CondensedPools pools;
  pools.task = input.task();
  pools.feature_dim = input.dim();

  switch (input.task()) {
    case data::TaskType::kClassification: {
      // One pool per class label, condensed in parallel. Jobs are built
      // in deterministic (std::map) label order and each gets its own
      // Rng::Split() substream before any worker runs, so the result is
      // bit-identical for a fixed seed at any thread count.
      struct PoolJob {
        int label = -1;
        std::vector<linalg::Vector> points;
        Rng rng;
        StatusOr<CondensedPools::Pool> result{
            CondensedPools::Pool{-1, 0, CondensedGroupSet(0, 0)}};
      };
      std::vector<PoolJob> jobs;
      for (const auto& [label, indices] : input.IndicesByLabel()) {
        PoolJob job;
        job.label = label;
        job.points.reserve(indices.size());
        for (std::size_t i : indices) {
          job.points.push_back(input.record(i));
        }
        job.rng = rng.Split();
        jobs.push_back(std::move(job));
      }

      obs::Histogram& pool_seconds =
          registry.GetHistogram("condensa_pool_condense_seconds");
      registry.GetCounter("condensa_pool_tasks_total")
          .Increment(jobs.size());
      const std::size_t threads =
          ThreadPool::ResolveThreadCount(config_.num_threads);
      registry.GetGauge("condensa_pool_threads")
          .Set(static_cast<double>(threads));

      std::vector<std::function<void()>> tasks;
      tasks.reserve(jobs.size());
      for (PoolJob& job : jobs) {
        tasks.push_back([&job, &config = config_, &pool_seconds] {
          obs::ScopedTimer pool_timer(pool_seconds);
          job.result = MakePool(job.points, job.label, config, job.rng);
        });
      }
      ParallelRun(threads, tasks);

      for (PoolJob& job : jobs) {
        CONDENSA_ASSIGN_OR_RETURN(CondensedPools::Pool pool,
                                  std::move(job.result));
        pools.pools.push_back(std::move(pool));
      }
      break;
    }
    case data::TaskType::kRegression: {
      // Condense in (features ⊕ target) space so the attribute-target
      // correlations survive condensation.
      const std::size_t d = input.dim();
      std::vector<linalg::Vector> points;
      points.reserve(input.size());
      for (std::size_t i = 0; i < input.size(); ++i) {
        linalg::Vector extended(d + 1);
        for (std::size_t j = 0; j < d; ++j) {
          extended[j] = input.record(i)[j];
        }
        extended[d] = input.target(i);
        points.push_back(std::move(extended));
      }
      CONDENSA_ASSIGN_OR_RETURN(CondensedPools::Pool pool,
                                MakePool(points, -1, config_, rng));
      pools.pools.push_back(std::move(pool));
      break;
    }
    case data::TaskType::kUnlabeled: {
      CONDENSA_ASSIGN_OR_RETURN(
          CondensedPools::Pool pool,
          MakePool(input.records(), -1, config_, rng));
      pools.pools.push_back(std::move(pool));
      break;
    }
  }

  // Final stats: what this run produced, as counters plus last-run gauges
  // so `condensa stats` (and any scraper) sees the shape of the release.
  std::size_t groups = 0, splits = 0, min_group = 0;
  bool first = true;
  for (const CondensedPools::Pool& pool : pools.pools) {
    PrivacySummary summary = pool.groups.Summary();
    groups += summary.num_groups;
    splits += pool.splits;
    min_group = first ? summary.min_group_size
                      : std::min(min_group, summary.min_group_size);
    first = false;
  }
  registry.GetCounter("condensa_engine_pools_total")
      .Increment(pools.pools.size());
  registry.GetCounter("condensa_engine_groups_total").Increment(groups);
  registry.GetCounter("condensa_engine_splits_total").Increment(splits);
  registry.GetGauge("condensa_engine_last_pools").Set(pools.pools.size());
  registry.GetGauge("condensa_engine_last_groups").Set(groups);
  registry.GetGauge("condensa_engine_last_min_group_size").Set(min_group);
  registry.GetGauge("condensa_engine_last_records").Set(input.size());
  return pools;
}

StatusOr<AnonymizationResult> GenerateRelease(
    const CondensedPools& pools, Rng& rng,
    const AnonymizerOptions& anonymizer_options) {
  obs::TraceSpan span("engine.generate_release");
  if (pools.pools.empty()) {
    return InvalidArgumentError("no pools to generate from");
  }
  const std::size_t condensed_dim = pools.CondensedDim();
  for (const CondensedPools::Pool& pool : pools.pools) {
    if (pool.groups.dim() != condensed_dim) {
      return InvalidArgumentError("pool dimension mismatch");
    }
  }

  Anonymizer anonymizer(anonymizer_options);
  AnonymizationResult result;
  result.reports = pools.Reports();
  result.anonymized = data::Dataset(pools.feature_dim, pools.task);

  for (const CondensedPools::Pool& pool : pools.pools) {
    CONDENSA_ASSIGN_OR_RETURN(std::vector<linalg::Vector> generated,
                              anonymizer.Generate(pool.groups, rng));
    for (linalg::Vector& point : generated) {
      switch (pools.task) {
        case data::TaskType::kClassification:
          result.anonymized.Add(std::move(point), pool.label);
          break;
        case data::TaskType::kRegression: {
          linalg::Vector features(pools.feature_dim);
          for (std::size_t j = 0; j < pools.feature_dim; ++j) {
            features[j] = point[j];
          }
          result.anonymized.Add(std::move(features),
                                point[pools.feature_dim]);
          break;
        }
        case data::TaskType::kUnlabeled:
          result.anonymized.Add(std::move(point));
          break;
      }
    }
  }
  return result;
}

StatusOr<AnonymizationResult> CondensationEngine::Anonymize(
    const data::Dataset& input, Rng& rng) const {
  CONDENSA_ASSIGN_OR_RETURN(CondensedPools pools, Condense(input, rng));
  CONDENSA_ASSIGN_OR_RETURN(
      AnonymizationResult result,
      GenerateRelease(pools, rng, {.num_threads = config_.num_threads,
                                   .group_sampler = config_.group_sampler}));
  if (!input.feature_names().empty()) {
    CONDENSA_RETURN_IF_ERROR(
        result.anonymized.SetFeatureNames(input.feature_names()));
  }
  return result;
}

}  // namespace condensa::core
