#include "core/split.h"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.h"

namespace condensa::core {

namespace {

// Paper Fig. 3 verbatim: Fs(M1/M2) is set to the *centroid* ± offset (a
// unit inconsistency preserved deliberately), n = k = n(M)/2, and
// Sc_ij = k·C'_ij + Fs_i·Fs_j / k with those Fs values.
GroupStatistics VerbatimHalf(std::size_t count,
                             const linalg::Vector& fs_as_written,
                             const linalg::Matrix& covariance) {
  const std::size_t d = fs_as_written.dim();
  const double k = static_cast<double>(count);
  linalg::Matrix sc(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      sc(i, j) =
          k * covariance(i, j) + fs_as_written[i] * fs_as_written[j] / k;
    }
  }
  return GroupStatistics::FromRawSums(count, fs_as_written, sc);
}

}  // namespace

StatusOr<SplitResult> SplitGroupStatistics(const GroupStatistics& group,
                                           SplitRule rule) {
  if (group.count() < 2) {
    return InvalidArgumentError("cannot split a group with fewer than 2 records");
  }

  // Determine the covariance matrix C(M) (Observation 2) and its
  // eigen-system C = P Λ Pᵀ with λ₁ >= ... >= λ_d.
  linalg::Matrix covariance = group.Covariance();
  CONDENSA_ASSIGN_OR_RETURN(linalg::EigenDecomposition eigen,
                            linalg::CovarianceEigenDecomposition(covariance));

  // Degenerate groups (duplicate points) can report a leading eigenvalue a
  // hair below zero from round-off; clamp so the offset stays real.
  const double lambda1 = std::max(0.0, eigen.eigenvalues[0]);
  const linalg::Vector e1 = eigen.Eigenvector(0);

  // Uniform with variance λ₁ has range a = sqrt(12 λ₁); the halves'
  // centroids sit at the quarter points Y ± (a/4) e₁.
  const double offset = std::sqrt(12.0 * lambda1) / 4.0;
  linalg::Vector centroid = group.Centroid();

  // Shared covariance of both halves: λ₁ -> λ₁ / 4, all else unchanged,
  // rebuilt as C' = P Λ' Pᵀ (paper Eq. 4).
  linalg::Vector new_eigenvalues = eigen.eigenvalues;
  new_eigenvalues[0] = lambda1 / 4.0;
  linalg::Matrix new_covariance =
      linalg::MatMul(linalg::MatMul(eigen.eigenvectors,
                                    linalg::Matrix::Diagonal(new_eigenvalues)),
                     eigen.eigenvectors.Transposed());

  // The 2k-sized group splits into two groups of k each; for generality a
  // group of odd size n yields halves of floor(n/2) and ceil(n/2).
  const std::size_t lower_count = group.count() / 2;
  const std::size_t upper_count = group.count() - lower_count;

  if (rule == SplitRule::kPaperVerbatim) {
    // Fig. 3 only ever splits a 2k-sized group, so the halves sit at the
    // symmetric quarter points.
    SplitResult result{
        VerbatimHalf(lower_count, centroid - offset * e1, new_covariance),
        VerbatimHalf(upper_count, centroid + offset * e1, new_covariance),
    };
    return result;
  }

  // With unequal half sizes the symmetric quarter points would shift the
  // total first moment by (n₂ - n₁)·offset per split — a drift that
  // compounds under merge-then-split churn. Scaling each half's
  // displacement inversely to its count keeps n₁·c₁ + n₂·c₂ = n·Y exact
  // while preserving the 2·offset separation (and reducing to ±offset
  // when n₁ = n₂).
  const double n = static_cast<double>(group.count());
  linalg::Vector centroid_lower =
      centroid - (2.0 * offset * static_cast<double>(upper_count) / n) * e1;
  linalg::Vector centroid_upper =
      centroid + (2.0 * offset * static_cast<double>(lower_count) / n) * e1;
  SplitResult result{
      GroupStatistics::FromMoments(lower_count, centroid_lower,
                                   new_covariance),
      GroupStatistics::FromMoments(upper_count, centroid_upper,
                                   new_covariance),
  };
  return result;
}

}  // namespace condensa::core
