// Anonymized-data construction from condensed groups (paper Section 2.1).
//
// For each group the covariance matrix is eigendecomposed, C = P Λ Pᵀ, and
// records are regenerated under the locally-uniform independence
// assumption: each anonymized point is
//     x = centroid + Σ_j u_j e_j,   u_j ~ Uniform(−sqrt(3 λ_j), sqrt(3 λ_j))
// so every axis contribution has mean 0 and variance exactly λ_j. A group
// of size 1 has zero covariance, so its single regenerated record is its
// centroid — i.e. static condensation with k = 1 reproduces the original
// data exactly, the property the paper uses as its baseline anchor.

#ifndef CONDENSA_CORE_ANONYMIZER_H_
#define CONDENSA_CORE_ANONYMIZER_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/backend_hooks.h"
#include "core/condensed_group_set.h"
#include "linalg/eigen.h"
#include "linalg/vector.h"

namespace condensa::core {

// Shape of the per-eigenvector sampling distribution.
enum class SamplingDistribution {
  // The paper's choice: Uniform(−sqrt(3 λ_j), sqrt(3 λ_j)).
  kUniform = 0,
  // Design-choice ablation: Gaussian N(0, λ_j) along each eigenvector
  // (unbounded support, heavier concentration at the centroid).
  kGaussian = 1,
};

struct AnonymizerOptions {
  // When set, each group emits exactly this many records instead of its
  // own n(G); 0 means "one output record per condensed input record".
  std::size_t records_per_group = 0;
  // Per-eigenvector sampling distribution (paper: uniform).
  SamplingDistribution distribution = SamplingDistribution::kUniform;
  // Worker threads for Generate's per-group fan-out; 0 means one per
  // hardware thread. Output is bit-identical for a fixed seed at any
  // thread count: the caller's Rng is split into one substream per group
  // on the calling thread, in group order, before any worker runs.
  std::size_t num_threads = 0;
  // Regeneration hook (core/backend_hooks.h): when set, every group's
  // records come from this sampler instead of the eigendecomposition
  // path above (the per-group Rng splitting and parallel fan-out are
  // unchanged). Null = the paper's condensation regeneration,
  // byte-for-byte. Resolve through backend::Registry rather than setting
  // it by hand.
  GroupSamplerFn group_sampler;
};

// Draws `count` anonymized points from an already-computed factorization
// C = P Λ Pᵀ: x = centroid + Σ_j u_j e_j with u_j ~ Uniform(±sqrt(3 λ_j))
// (or N(0, λ_j) for the Gaussian ablation). This is the sampling kernel
// shared by Anonymizer::GenerateFromGroup and the query plane's cached
// regeneration (src/query/engine.h) — given the same Rng state the two
// paths are bit-identical, because they run exactly this code.
std::vector<linalg::Vector> SampleFromEigen(
    const linalg::Vector& centroid, const linalg::EigenDecomposition& eigen,
    std::size_t count, SamplingDistribution distribution, Rng& rng);

class Anonymizer {
 public:
  explicit Anonymizer(AnonymizerOptions options = {}) : options_(options) {}

  const AnonymizerOptions& options() const { return options_; }

  // Regenerates `count` records from one group aggregate.
  StatusOr<std::vector<linalg::Vector>> GenerateFromGroup(
      const GroupStatistics& group, std::size_t count, Rng& rng) const;

  // Regenerates an anonymized point set for the whole group set; group i
  // contributes n(G_i) records (or records_per_group when configured).
  // Groups are eigendecomposed and sampled in parallel (num_threads),
  // each from its own Rng::Split() substream, so the output depends only
  // on the seed — never on the thread count.
  StatusOr<std::vector<linalg::Vector>> Generate(
      const CondensedGroupSet& groups, Rng& rng) const;

 private:
  AnonymizerOptions options_;
};

}  // namespace condensa::core

#endif  // CONDENSA_CORE_ANONYMIZER_H_
