#include "core/centroid_index.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"

namespace condensa::core {
namespace {

struct CentroidIndexMetrics {
  obs::Counter& rebuilds = obs::DefaultRegistry().GetCounter(
      "condensa_centroid_index_rebuilds_total");
  obs::Counter& queries = obs::DefaultRegistry().GetCounter(
      "condensa_centroid_index_queries_total");
  obs::Counter& scan_fallbacks = obs::DefaultRegistry().GetCounter(
      "condensa_centroid_index_scan_fallbacks_total");

  static CentroidIndexMetrics& Get() {
    static CentroidIndexMetrics metrics;
    return metrics;
  }
};

}  // namespace

void CentroidIndex::NoteGroupUpdated(std::size_t group_id) {
  if (!tree_) return;
  if (group_id >= dirty_.size()) {
    // The set grew without an Invalidate call; drop the stale snapshot.
    Invalidate();
    return;
  }
  if (!dirty_[group_id]) {
    dirty_[group_id] = true;
    ++dirty_count_;
  }
}

void CentroidIndex::Invalidate() {
  tree_.reset();
  centroids_.reset();
  dirty_.clear();
  dirty_count_ = 0;
}

bool CentroidIndex::TooDirty() const {
  return dirty_count_ * 4 >= dirty_.size();
}

void CentroidIndex::Rebuild(const CondensedGroupSet& groups) {
  auto centroids = std::make_unique<std::vector<linalg::Vector>>();
  centroids->reserve(groups.num_groups());
  for (const GroupStatistics& group : groups.groups()) {
    centroids->push_back(group.Centroid());
  }
  StatusOr<index::KdTree> tree = index::KdTree::Build(*centroids);
  CONDENSA_CHECK(tree.ok());  // non-empty, consistent dims by construction
  centroids_ = std::move(centroids);
  tree_ = std::make_unique<index::KdTree>(std::move(*tree));
  dirty_.assign(centroids_->size(), false);
  dirty_count_ = 0;
  CentroidIndexMetrics::Get().rebuilds.Increment();
}

std::size_t CentroidIndex::NearestGroup(const CondensedGroupSet& groups,
                                        const linalg::Vector& point) {
  CentroidIndexMetrics& metrics = CentroidIndexMetrics::Get();
  metrics.queries.Increment();
  const std::size_t num_groups = groups.num_groups();
  if (num_groups < kMinGroupsForIndex) {
    metrics.scan_fallbacks.Increment();
    return groups.NearestGroup(point);
  }
  if (!tree_ || TooDirty()) {
    Rebuild(groups);
  }

  // One filtered traversal finds the best *clean* snapshot entry under
  // the key (squared snapshot distance, group id); dirty groups are
  // compared exactly below.
  std::vector<std::pair<double, std::size_t>> clean =
      tree_->KNearestKeyed(point, 1, [this](std::size_t i) {
        return dirty_[i] ? index::KdTree::kSkipPoint : i;
      });
  if (clean.empty()) {
    // Every group dirty (only possible for tiny snapshots given the
    // TooDirty rebuild); the scan is the answer.
    metrics.scan_fallbacks.Increment();
    return groups.NearestGroup(point);
  }

  // Candidates: the clean winner plus every dirty group. Compare them
  // all with the same arithmetic the linear scan uses, lowest group id
  // winning ties, so the result is bit-identical to
  // groups.NearestGroup(point).
  std::size_t best = num_groups;
  double best_distance = 0.0;
  auto consider = [&](std::size_t id) {
    double distance = groups.group(id).SquaredDistanceToCentroid(point);
    if (best == num_groups || distance < best_distance ||
        (distance == best_distance && id < best)) {
      best = id;
      best_distance = distance;
    }
  };
  consider(clean.front().second);
  for (std::size_t id = 0; id < dirty_.size(); ++id) {
    if (dirty_[id]) consider(id);
  }
  CONDENSA_DCHECK_LT(best, num_groups);
  return best;
}

}  // namespace condensa::core
