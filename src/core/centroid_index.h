// Nearest-centroid acceleration for CondensedGroupSet::NearestGroup hot
// paths (static leftover absorption, dynamic insert/remove routing).
//
// The group set's own NearestGroup is a linear scan over every centroid,
// which is the per-record cost of the dynamic condenser. This index keeps
// a kd-tree over a snapshot of the centroids plus a dirty bitmap:
// NearestGroup answers from the tree for clean groups and a short scan
// over dirty ones, and the caller invalidates on churn — NoteGroupUpdated
// when one group's aggregate changed (its centroid moved), Invalidate
// when groups were added/removed/reordered. Once too many groups are
// dirty the snapshot is rebuilt, so the amortized per-query cost stays
// O(log G) instead of O(G).
//
// The answer is bit-for-bit the one the linear scan would give, including
// tie-breaks (lowest group id wins): the tree only proposes a distance
// bound, every group inside that bound plus every dirty group is then
// compared with GroupStatistics::SquaredDistanceToCentroid — the same
// arithmetic the scan uses. Small sets skip the tree entirely.

#ifndef CONDENSA_CORE_CENTROID_INDEX_H_
#define CONDENSA_CORE_CENTROID_INDEX_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "core/condensed_group_set.h"
#include "index/kdtree.h"
#include "linalg/vector.h"

namespace condensa::core {

class CentroidIndex {
 public:
  CentroidIndex() = default;

  // Index of the group whose centroid is nearest to `point` — identical
  // to groups.NearestGroup(point) in every case. `groups` must be the
  // same set as on previous calls unless the index was invalidated; the
  // caller reports mutations via NoteGroupUpdated / Invalidate.
  std::size_t NearestGroup(const CondensedGroupSet& groups,
                           const linalg::Vector& point);

  // One group's aggregate changed in place (Add/Remove/Merge moved its
  // centroid). Cheap: marks the snapshot entry dirty.
  void NoteGroupUpdated(std::size_t group_id);

  // Structural churn: groups added, removed, or reordered. Drops the
  // snapshot; the next query rebuilds it.
  void Invalidate();

 private:
  // Below this many groups a linear scan beats tree upkeep.
  static constexpr std::size_t kMinGroupsForIndex = 32;

  void Rebuild(const CondensedGroupSet& groups);
  bool TooDirty() const;

  // Centroid snapshot, heap-allocated so the tree's internal pointer
  // survives moves of the owning condenser.
  std::unique_ptr<std::vector<linalg::Vector>> centroids_;
  std::unique_ptr<index::KdTree> tree_;
  std::vector<bool> dirty_;
  std::size_t dirty_count_ = 0;
};

}  // namespace condensa::core

#endif  // CONDENSA_CORE_CENTROID_INDEX_H_
