// Static condensation: CreateCondensedGroups (paper Figure 1).
//
// Given the full database, repeatedly:
//   1. sample a random remaining record X,
//   2. absorb the (k-1) remaining records closest to X into a group with X,
//   3. store the group's (Fs, Sc, n) aggregate and delete its members.
// When fewer than k records remain, each joins the group with the nearest
// centroid, so a few groups may exceed k — never fall below it.
//
// The neighbour gathering in step 2 is the hot path and runs either as a
// brute-force scan over the survivors or through a deletion-aware k-d
// tree (index::DeletionAwareKdTree); kAuto picks the index for large
// inputs and the scan below `index_threshold`, where tree upkeep costs
// more than it saves. Both paths select neighbours by (squared distance,
// original record index) — ties broken by the stable original index, not
// by survivor-array position — so for a fixed seed they produce
// bit-identical group sets.

#ifndef CONDENSA_CORE_STATIC_CONDENSER_H_
#define CONDENSA_CORE_STATIC_CONDENSER_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/condensed_group_set.h"
#include "linalg/vector.h"

namespace condensa::core {

// How step 2 finds the (k-1) records nearest the sampled seed.
enum class NeighbourSearch {
  // Index for inputs of at least index_threshold points, scan below.
  kAuto = 0,
  // Always the O(n) scan (the reference implementation).
  kBruteForce = 1,
  // Always the deletion-aware k-d tree.
  kKdTree = 2,
};

struct StaticCondenserOptions {
  // The indistinguishability level k (minimum group size). Must be >= 1.
  std::size_t group_size = 10;
  // Neighbour-gathering strategy (results are identical either way).
  NeighbourSearch neighbour_search = NeighbourSearch::kAuto;
  // kAuto cutover: point counts below this use the brute-force scan.
  std::size_t index_threshold = 2048;
};

class StaticCondenser {
 public:
  explicit StaticCondenser(StaticCondenserOptions options)
      : options_(options) {}

  const StaticCondenserOptions& options() const { return options_; }

  // Condenses `points` into groups of at least k records. All points must
  // share one dimension. Fails when points is empty, contains fewer than k
  // records, or k == 0.
  StatusOr<CondensedGroupSet> Condense(
      const std::vector<linalg::Vector>& points, Rng& rng) const;

 private:
  StaticCondenserOptions options_;
};

}  // namespace condensa::core

#endif  // CONDENSA_CORE_STATIC_CONDENSER_H_
