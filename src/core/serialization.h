// Persistence for condensed group sets.
//
// In the paper's deployment model the server retains only the aggregate
// statistics H = {(Fs(G), Sc(G), n(G))}. This module serializes H to a
// versioned, human-inspectable text format so a server can checkpoint the
// structure between sessions (or hand it to another process) without ever
// materializing records. Round-tripping is exact: values are written with
// 17 significant digits, enough to reproduce every double bit-for-bit.

#ifndef CONDENSA_CORE_SERIALIZATION_H_
#define CONDENSA_CORE_SERIALIZATION_H_

#include <string>

#include "common/status.h"
#include "core/condensed_group_set.h"
#include "core/engine.h"

namespace condensa::core {

// Renders `groups` in the condensa-groups v1 text format.
std::string SerializeGroupSet(const CondensedGroupSet& groups);

// Parses the text format. Fails with DataLoss on malformed input and
// InvalidArgument on inconsistent headers (wrong magic, bad counts).
StatusOr<CondensedGroupSet> DeserializeGroupSet(const std::string& text);

// File wrappers around the string forms. Saves are atomic (temp file +
// fsync + rename, see common/io.h): a crash mid-save never corrupts an
// existing file. Short writes fail with kDataLoss naming the path.
Status SaveGroupSet(const CondensedGroupSet& groups, const std::string& path);
StatusOr<CondensedGroupSet> LoadGroupSet(const std::string& path);

// Renders a whole CondensedPools (the engine's per-class retained state)
// in the condensa-pools v1 text format — a header plus one embedded
// group-set section per pool. Round-trips exactly.
std::string SerializePools(const CondensedPools& pools);
StatusOr<CondensedPools> DeserializePools(const std::string& text);
Status SavePools(const CondensedPools& pools, const std::string& path);
StatusOr<CondensedPools> LoadPools(const std::string& path);

}  // namespace condensa::core

#endif  // CONDENSA_CORE_SERIALIZATION_H_
