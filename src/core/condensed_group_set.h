// The set H of condensed-group aggregates produced by a condenser.
//
// This is all the server retains about the data (paper Section 2): one
// (Fs, Sc, n) aggregate per group plus the indistinguishability level k the
// set was built for. The privacy summary exposes the achieved group sizes,
// since static condensation can leave a few groups with more than k records
// and dynamic condensation keeps groups between k and 2k.

#ifndef CONDENSA_CORE_CONDENSED_GROUP_SET_H_
#define CONDENSA_CORE_CONDENSED_GROUP_SET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/group_statistics.h"
#include "linalg/vector.h"

namespace condensa::core {

// Aggregate view of the privacy level a group set achieves.
struct PrivacySummary {
  std::size_t num_groups = 0;
  std::size_t total_records = 0;
  // Smallest group: the achieved indistinguishability level.
  std::size_t min_group_size = 0;
  std::size_t max_group_size = 0;
  double average_group_size = 0.0;
};

class CondensedGroupSet {
 public:
  // Backend id of the paper's condensation algorithm — the default stamp
  // of every group set, and the one the serialized formats omit (so
  // default-backend releases and checkpoints stay byte-identical to
  // documents written before the backend framework existed).
  static constexpr char kDefaultBackendId[] = "condensation";

  CondensedGroupSet(std::size_t dim, std::size_t indistinguishability_level)
      : dim_(dim), k_(indistinguishability_level) {}

  std::size_t dim() const { return dim_; }
  // The k this set was built for.
  std::size_t indistinguishability_level() const { return k_; }

  // Identity of the anonymization backend that built this set (see
  // docs/backends.md). The stamp travels through serialization and
  // checkpoints, so a structure built by one backend refuses to be
  // maintained under another.
  const std::string& backend_id() const { return backend_id_; }
  int backend_version() const { return backend_version_; }
  // `id` must be non-empty and `version` >= 1.
  void SetBackend(std::string id, int version);

  std::size_t num_groups() const { return groups_.size(); }
  bool empty() const { return groups_.empty(); }

  const GroupStatistics& group(std::size_t i) const {
    CONDENSA_DCHECK_LT(i, groups_.size());
    return groups_[i];
  }
  GroupStatistics& mutable_group(std::size_t i) {
    CONDENSA_DCHECK_LT(i, groups_.size());
    return groups_[i];
  }
  const std::vector<GroupStatistics>& groups() const { return groups_; }

  // Appends a group aggregate. Dim must match; the group must be non-empty.
  void AddGroup(GroupStatistics group);

  // Reserves capacity for `count` groups (bulk-gather fast path).
  void ReserveGroups(std::size_t count) { groups_.reserve(count); }

  // Appends every group of `other` in order, leaving `other` empty. Dim
  // must match; `other`'s k and backend stamp are ignored (this set's
  // stand — scatter/gather merges only sets built by one backend). This is the
  // scatter/gather concatenation step: because the aggregates are
  // additive, moving them between sets loses nothing.
  void Absorb(CondensedGroupSet&& other);

  // Removes group i (order not preserved; O(1)).
  void RemoveGroup(std::size_t i);

  // Index of the group whose centroid is nearest to `point` (Euclidean).
  // Requires a non-empty set.
  std::size_t NearestGroup(const linalg::Vector& point) const;

  // Total records across groups.
  std::size_t TotalRecords() const;

  PrivacySummary Summary() const;

 private:
  std::size_t dim_;
  std::size_t k_;
  std::string backend_id_ = kDefaultBackendId;
  int backend_version_ = 1;
  std::vector<GroupStatistics> groups_;
};

}  // namespace condensa::core

#endif  // CONDENSA_CORE_CONDENSED_GROUP_SET_H_
