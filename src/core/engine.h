// End-to-end anonymization facade.
//
// This is the API most users want: Dataset in, anonymized Dataset out.
// Following paper Section 3.1, classification data is condensed one class
// at a time so regenerated records keep their labels; regression data is
// condensed with the target appended as an extra dimension (preserving
// attribute-target correlations) and the target recovered from the
// regenerated record; unlabeled data is condensed as a whole.
//
// Example:
//   CondensationEngine engine({.group_size = 25,
//                              .mode = CondensationMode::kStatic});
//   Rng rng(42);
//   StatusOr<AnonymizationResult> result = engine.Anonymize(dataset, rng);
//   if (result.ok()) Train(result->anonymized);

#ifndef CONDENSA_CORE_ENGINE_H_
#define CONDENSA_CORE_ENGINE_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/anonymizer.h"
#include "core/backend_hooks.h"
#include "core/condensed_group_set.h"
#include "core/split.h"
#include "data/dataset.h"
#include "obs/metrics.h"

namespace condensa::core {

enum class CondensationMode {
  // Whole database available: CreateCondensedGroups (paper Fig. 1).
  kStatic = 0,
  // Stream setting: DynamicGroupMaintenance (paper Fig. 2), optionally
  // bootstrapped from a static prefix.
  kDynamic = 1,
};

struct CondensationConfig {
  // The indistinguishability level k. Must be >= 1.
  std::size_t group_size = 10;
  CondensationMode mode = CondensationMode::kStatic;
  // Dynamic mode: fraction of each record pool condensed statically before
  // the remainder is streamed (the paper's initial database D). The static
  // prefix always contains at least k records when the pool allows it.
  // 0 means pure streaming from an empty structure.
  double bootstrap_fraction = 0.25;
  // Dynamic mode: stream records in a random order (true matches the
  // i.i.d. stream the paper evaluates; false preserves input order, which
  // ablation A4 uses to measure order sensitivity).
  bool shuffle_stream = true;
  // Dynamic mode: split formula (see core/split.h). kPaperVerbatim exists
  // only for ablation A10.
  SplitRule split_rule = SplitRule::kMomentConsistent;
  // Dynamic mode: when non-empty, streaming condensation is crash-safe —
  // every pool keeps an atomic snapshot plus a fsync'd record journal
  // under <checkpoint_dir>/pool-<label>, recoverable with
  // DurableCondenser::Recover or `condensa recover` (see
  // core/checkpointing.h and docs/durability.md). The directory must not
  // already hold checkpoint state. Ignored in static mode.
  std::string checkpoint_dir = {};
  // Durable streaming: journal appends between snapshots (>= 1).
  std::size_t snapshot_interval = 1024;
  // Worker threads for per-pool condensation fan-out (classification
  // condenses one pool per class label); 0 means one per hardware
  // thread. Results are bit-identical for a fixed seed at any thread
  // count: the run Rng is split into one substream per pool, in label
  // order, before any pool is condensed.
  std::size_t num_threads = 0;
  // Registry receiving the engine's run metrics (timings, record/pool/
  // group/split totals, last-run gauges — see docs/observability.md).
  // nullptr records into obs::DefaultRegistry(). Note the subsystem
  // instruments (condensers, kd-tree, eigensolver, checkpointing) always
  // record into the default registry; pointing this at a private registry
  // isolates only the engine-level series.
  obs::MetricsRegistry* metrics = nullptr;
  // Anonymization backend identity and hooks (docs/backends.md). The id
  // is stamped into every produced group set (and so into serialized
  // pools and checkpoints); the hooks redirect the two pluggable halves
  // of the pipeline. Null hooks = the built-in condensation path,
  // byte-identical to a config that never mentions backends. Resolve a
  // non-default id through backend::Registry (src/backend/registry.h)
  // rather than filling these by hand; Validate() rejects a non-default
  // `backend` whose construction hook is missing.
  std::string backend = CondensedGroupSet::kDefaultBackendId;
  int backend_version = 1;
  GroupConstructionFn group_construction;
  GroupSamplerFn group_sampler;

  // Checks every field (group_size >= 1, bootstrap_fraction in [0, 1],
  // snapshot_interval >= 1). The engine refuses to condense with an
  // invalid config, returning this Status from Condense/CondensePoints —
  // constructing the engine itself never aborts. (k = 1 is permitted
  // here for identity-condensation ablations; the streaming runtime's
  // StreamPipelineConfig requires k >= 2.)
  Status Validate() const;
};

// Per-pool (per-class, or whole-set) condensation outcome.
struct PoolReport {
  // Class label for classification pools; -1 for regression/unlabeled.
  int label = -1;
  // Records condensed in this pool.
  std::size_t pool_size = 0;
  // k actually used: min(config k, pool size) — a class smaller than k
  // cannot be split below one group.
  std::size_t effective_group_size = 0;
  PrivacySummary privacy;
  // Dynamic mode: number of group splits performed.
  std::size_t splits = 0;
};

struct AnonymizationResult {
  data::Dataset anonymized = data::Dataset(0);
  std::vector<PoolReport> reports;

  // Smallest group size across pools: the achieved indistinguishability
  // level of the whole release.
  std::size_t AchievedIndistinguishability() const;
  // Record-weighted average group size across pools (the X axis of every
  // figure in the paper).
  double AverageGroupSize() const;
};

// Everything the server retains after condensation: one group set per
// pool (per class for classification; a single pool otherwise). This is
// the paper's H, partitioned — enough to regenerate releases forever
// without touching raw records again. Serializable via
// core/serialization.h.
struct CondensedPools {
  struct Pool {
    // Class label for classification pools; -1 for regression/unlabeled.
    int label = -1;
    // Dynamic mode: splits performed while condensing this pool.
    std::size_t splits = 0;
    CondensedGroupSet groups;
  };

  data::TaskType task = data::TaskType::kUnlabeled;
  // Dimension of the released records. Regression pools condense in
  // feature_dim + 1 dimensions (target appended).
  std::size_t feature_dim = 0;
  std::vector<Pool> pools;

  // Dimension the group statistics live in.
  std::size_t CondensedDim() const {
    return task == data::TaskType::kRegression ? feature_dim + 1
                                               : feature_dim;
  }
  // Per-pool accounting in AnonymizationResult form.
  std::vector<PoolReport> Reports() const;
};

// Regenerates an anonymized dataset from retained pools. Draws fresh
// randomness, so repeated calls give independent releases with the same
// statistics. Fails on empty/inconsistent pools.
StatusOr<AnonymizationResult> GenerateRelease(
    const CondensedPools& pools, Rng& rng,
    const AnonymizerOptions& anonymizer_options = {});

class CondensationEngine {
 public:
  // Stores the config as-is; validation happens on first use (see
  // CondensationConfig::Validate) so a bad config yields a Status, not
  // an abort.
  explicit CondensationEngine(CondensationConfig config);

  const CondensationConfig& config() const { return config_; }

  // Condenses a full dataset into retained pool statistics (dispatches
  // on dataset.task()); no anonymized data is produced yet.
  StatusOr<CondensedPools> Condense(const data::Dataset& input,
                                    Rng& rng) const;

  // Convenience: Condense followed by GenerateRelease.
  StatusOr<AnonymizationResult> Anonymize(const data::Dataset& input,
                                          Rng& rng) const;

  // Condenses a bare point pool with the configured mode and returns the
  // group aggregates (no anonymized data). Exposed for metrics/benches.
  StatusOr<CondensedGroupSet> CondensePoints(
      const std::vector<linalg::Vector>& points, Rng& rng) const;

 private:
  CondensationConfig config_;
};

}  // namespace condensa::core

#endif  // CONDENSA_CORE_ENGINE_H_
