#include "core/checkpointing.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "core/serialization.h"
#include "obs/metrics.h"
#include "obs/timing.h"

namespace condensa::core {
namespace {

struct CheckpointMetrics {
  obs::Counter& snapshots = obs::DefaultRegistry().GetCounter(
      "condensa_checkpoint_snapshots_total");
  obs::Counter& snapshot_bytes = obs::DefaultRegistry().GetCounter(
      "condensa_checkpoint_snapshot_bytes_total");
  obs::Counter& journal_appends = obs::DefaultRegistry().GetCounter(
      "condensa_checkpoint_journal_appends_total");
  obs::Counter& journal_bytes = obs::DefaultRegistry().GetCounter(
      "condensa_checkpoint_journal_bytes_total");
  obs::Counter& fsyncs = obs::DefaultRegistry().GetCounter(
      "condensa_checkpoint_journal_fsyncs_total");
  obs::Counter& recoveries = obs::DefaultRegistry().GetCounter(
      "condensa_checkpoint_recoveries_total");
  obs::Counter& recovery_replayed = obs::DefaultRegistry().GetCounter(
      "condensa_checkpoint_recovery_replayed_records_total");
  obs::Counter& deferred_snapshots = obs::DefaultRegistry().GetCounter(
      "condensa_checkpoint_deferred_snapshots_total");
  obs::Histogram& snapshot_seconds = obs::DefaultRegistry().GetHistogram(
      "condensa_checkpoint_snapshot_seconds");

  static CheckpointMetrics& Get() {
    static CheckpointMetrics metrics;
    return metrics;
  }
};

constexpr char kSnapshotMagic[] = "condensa-snapshot v1";
constexpr char kJournalMagic[] = "condensa-journal v1";
constexpr char kGroupsMagic[] = "condensa-groups v1";

std::string SequenceTag(std::size_t sequence) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%06zu", sequence);
  return buffer;
}

std::string SnapshotName(std::size_t sequence) {
  return "snapshot-" + SequenceTag(sequence) + ".condensa";
}

std::string JournalName(std::size_t sequence) {
  return "journal-" + SequenceTag(sequence) + ".log";
}

// Extracts the sequence number from a checkpoint file name; false when the
// name is not of the given kind.
bool ParseSequence(const std::string& name, const std::string& prefix,
                   const std::string& suffix, std::size_t* sequence) {
  if (!StartsWith(name, prefix) || name.size() <= prefix.size() + suffix.size() ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  int parsed = 0;
  if (!ParseInt(name.substr(prefix.size(),
                            name.size() - prefix.size() - suffix.size()),
                &parsed) ||
      parsed < 0) {
    return false;
  }
  *sequence = static_cast<std::size_t>(parsed);
  return true;
}

std::string JournalHeader(std::size_t sequence) {
  return std::string(kJournalMagic) + " base " + std::to_string(sequence) +
         "\n";
}

void AppendDouble(std::string& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

// One journal entry: "<op> v0 ... vd-1 .\n". The trailing "." marks a
// complete entry; a line missing it (or its newline) is a torn write.
std::string JournalLine(char op, const linalg::Vector& record) {
  std::string line(1, op);
  for (std::size_t j = 0; j < record.dim(); ++j) {
    line += ' ';
    AppendDouble(line, record[j]);
  }
  line += " .\n";
  return line;
}

bool ParseJournalLine(const std::string& line, std::size_t dim, char* op,
                      linalg::Vector* record) {
  std::istringstream stream(line);
  std::string token;
  if (!(stream >> token) || token.size() != 1 ||
      (token[0] != 'i' && token[0] != 'r')) {
    return false;
  }
  *op = token[0];
  for (std::size_t j = 0; j < dim; ++j) {
    if (!(stream >> token) || !ParseDouble(token, &(*record)[j])) {
      return false;
    }
  }
  // Terminator, then nothing else.
  return (stream >> token) && token == "." && !(stream >> token);
}

}  // namespace

std::string SerializeCondenserState(const DynamicCondenser::State& state,
                                    std::size_t sequence) {
  const bool forming =
      state.forming.has_value() && state.forming->count() > 0;
  std::string out = kSnapshotMagic;
  out += "\nseq ";
  out += std::to_string(sequence);
  out += " records ";
  out += std::to_string(state.records_seen);
  out += " splits ";
  out += std::to_string(state.split_count);
  out += " merges ";
  out += std::to_string(state.merge_count);
  out += " bootstrapped ";
  out += state.bootstrapped ? '1' : '0';
  out += " forming ";
  out += forming ? '1' : '0';
  out += '\n';
  out += SerializeGroupSet(state.groups);
  if (forming) {
    // The forming buffer rides along as a one-group set of the same k.
    CondensedGroupSet wrapper(state.groups.dim(),
                              state.groups.indistinguishability_level());
    wrapper.SetBackend(state.groups.backend_id(),
                       state.groups.backend_version());
    wrapper.AddGroup(*state.forming);
    out += SerializeGroupSet(wrapper);
  }
  out += "end\n";
  return out;
}

StatusOr<DynamicCondenser::State> DeserializeCondenserState(
    const std::string& text, std::size_t* sequence_out) {
  std::istringstream stream(text);
  std::string line;
  if (!std::getline(stream, line) || StripWhitespace(line) != kSnapshotMagic) {
    return InvalidArgumentError("missing condensa-snapshot v1 header");
  }

  std::string keyword;
  int seq = 0, records = 0, splits = 0, merges = 0, bootstrapped = 0,
      forming = 0;
  std::string token;
  auto next_int = [&stream, &token](int* value) {
    return static_cast<bool>(stream >> token) && ParseInt(token, value) &&
           *value >= 0;
  };
  if (!(stream >> keyword) || keyword != "seq" || !next_int(&seq) ||
      !(stream >> keyword) || keyword != "records" || !next_int(&records) ||
      !(stream >> keyword) || keyword != "splits" || !next_int(&splits) ||
      !(stream >> keyword) || keyword != "merges" || !next_int(&merges) ||
      !(stream >> keyword) || keyword != "bootstrapped" ||
      !next_int(&bootstrapped) || bootstrapped > 1 ||
      !(stream >> keyword) || keyword != "forming" || !next_int(&forming) ||
      forming > 1) {
    return DataLossError("malformed snapshot header line");
  }

  // The remainder is one or two embedded group-set sections plus a
  // trailing "end" marker that proves the snapshot was written fully.
  std::size_t body_begin = text.find(kGroupsMagic);
  if (body_begin == std::string::npos) {
    return DataLossError("snapshot missing group-set section");
  }
  std::string_view remainder(text);
  remainder.remove_prefix(body_begin);
  std::size_t end_marker = remainder.rfind("\nend");
  if (end_marker == std::string_view::npos ||
      StripWhitespace(remainder.substr(end_marker)) != "end") {
    return DataLossError("snapshot missing end marker (truncated write?)");
  }
  remainder = remainder.substr(0, end_marker + 1);  // keep final newline

  std::size_t forming_begin =
      remainder.find(kGroupsMagic, std::strlen(kGroupsMagic));
  if ((forming == 1) != (forming_begin != std::string::npos)) {
    return DataLossError("snapshot forming flag disagrees with body");
  }

  DynamicCondenser::State state;
  if (forming == 1) {
    CONDENSA_ASSIGN_OR_RETURN(
        state.groups,
        DeserializeGroupSet(std::string(remainder.substr(0, forming_begin))));
    CONDENSA_ASSIGN_OR_RETURN(
        CondensedGroupSet wrapper,
        DeserializeGroupSet(std::string(remainder.substr(forming_begin))));
    if (wrapper.num_groups() != 1) {
      return DataLossError("snapshot forming section must hold one group");
    }
    if (wrapper.backend_id() != state.groups.backend_id()) {
      return DataLossError(
          "snapshot forming section's backend disagrees with the body");
    }
    state.forming = wrapper.group(0);
  } else {
    CONDENSA_ASSIGN_OR_RETURN(state.groups,
                              DeserializeGroupSet(std::string(remainder)));
  }
  state.records_seen = static_cast<std::size_t>(records);
  state.split_count = static_cast<std::size_t>(splits);
  state.merge_count = static_cast<std::size_t>(merges);
  state.bootstrapped = bootstrapped == 1;
  if (sequence_out != nullptr) {
    *sequence_out = static_cast<std::size_t>(seq);
  }
  return state;
}

StatusOr<DurableCondenser> DurableCondenser::Create(
    std::size_t dim, DynamicCondenserOptions options,
    DurabilityOptions durability, const std::string& dir) {
  if (dim == 0) {
    return InvalidArgumentError("record dimension must be positive");
  }
  if (durability.snapshot_interval == 0) {
    return InvalidArgumentError("snapshot_interval must be >= 1");
  }
  CONDENSA_RETURN_IF_ERROR(CreateDirectories(dir));
  CONDENSA_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                            ListDirectory(dir));
  for (const std::string& name : entries) {
    std::size_t ignored = 0;
    if (ParseSequence(name, "snapshot-", ".condensa", &ignored) ||
        ParseSequence(name, "journal-", ".log", &ignored)) {
      return FailedPreconditionError(
          dir + " already holds checkpoint state; use Recover or Open");
    }
  }

  DurableCondenser durable(DynamicCondenser(dim, options), durability, dir);
  CONDENSA_RETURN_IF_ERROR(durable.WriteSnapshot());
  return durable;
}

StatusOr<DurableCondenser> DurableCondenser::Recover(
    const std::string& dir, DynamicCondenserOptions options,
    DurabilityOptions durability) {
  if (durability.snapshot_interval == 0) {
    return InvalidArgumentError("snapshot_interval must be >= 1");
  }
  CONDENSA_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                            ListDirectory(dir));
  std::vector<std::size_t> snapshots;
  bool any_state = false;
  for (const std::string& name : entries) {
    std::size_t sequence = 0;
    if (ParseSequence(name, "snapshot-", ".condensa", &sequence)) {
      snapshots.push_back(sequence);
      any_state = true;
    } else if (ParseSequence(name, "journal-", ".log", &sequence)) {
      any_state = true;
    }
  }
  if (!any_state) {
    return NotFoundError(dir + " holds no checkpoint state");
  }
  if (snapshots.empty()) {
    return DataLossError(dir + " has journals but no snapshot");
  }
  std::sort(snapshots.rbegin(), snapshots.rend());

  // Walk snapshots newest-first until one parses cleanly.
  DynamicCondenser::State state;
  std::size_t chosen = 0;
  bool found = false;
  for (std::size_t sequence : snapshots) {
    auto text = ReadFileToString(dir + "/" + SnapshotName(sequence));
    if (!text.ok()) continue;
    std::size_t embedded = 0;
    auto parsed = DeserializeCondenserState(*text, &embedded);
    if (!parsed.ok() || embedded != sequence) continue;
    state = std::move(parsed).value();
    chosen = sequence;
    found = true;
    break;
  }
  if (!found) {
    return DataLossError(dir + " has no recoverable snapshot");
  }

  CONDENSA_ASSIGN_OR_RETURN(DynamicCondenser condenser,
                            DynamicCondenser::FromState(std::move(state),
                                                        options));
  DurableCondenser durable(std::move(condenser), durability, dir);
  durable.sequence_ = chosen;

  // Replay the journal of the chosen generation onto the snapshot,
  // stopping at (and truncating) the first torn or malformed entry.
  const std::string journal_path = dir + "/" + JournalName(chosen);
  const std::string header = JournalHeader(chosen);
  std::string content;
  if (auto read = ReadFileToString(journal_path); read.ok()) {
    content = std::move(read).value();
  }
  std::size_t valid_offset = 0;
  std::size_t replayed = 0;
  if (StartsWith(content, header)) {
    valid_offset = header.size();
    const std::size_t dim = durable.condenser_.dim();
    linalg::Vector record(dim);
    while (valid_offset < content.size()) {
      std::size_t line_end = content.find('\n', valid_offset);
      if (line_end == std::string::npos) {
        break;  // torn tail: entry never got its newline
      }
      std::string line =
          content.substr(valid_offset, line_end - valid_offset);
      char op = 0;
      if (!ParseJournalLine(line, dim, &op, &record)) {
        break;  // malformed entry: truncate from here
      }
      Status applied = op == 'i' ? durable.condenser_.Insert(record)
                                 : durable.condenser_.Remove(record);
      if (!applied.ok()) {
        // A well-formed entry that fails to apply is NOT a crash
        // artifact — the bytes are fine, the condenser (or an injected
        // fault) refused the operation. Truncating here would destroy
        // acknowledged records, so recovery fails and the caller
        // retries instead.
        return Status(applied.code(),
                      "journal replay failed at entry " +
                          std::to_string(replayed) + ": " +
                          applied.message());
      }
      valid_offset = line_end + 1;
      ++replayed;
    }
  }

  // Re-open the journal for appending, repairing the torn tail (or a
  // missing/corrupt header) in place.
  CONDENSA_ASSIGN_OR_RETURN(durable.journal_, AppendFile::Open(journal_path));
  if (valid_offset != content.size() || valid_offset == 0) {
    CONDENSA_RETURN_IF_ERROR(durable.journal_.Truncate(valid_offset));
    if (valid_offset == 0) {
      CONDENSA_RETURN_IF_ERROR(durable.journal_.Append(header));
      valid_offset = header.size();
    }
    CONDENSA_RETURN_IF_ERROR(durable.journal_.Sync());
  }
  durable.journal_bytes_ = valid_offset;
  durable.appends_ = replayed;
  CheckpointMetrics& metrics = CheckpointMetrics::Get();
  metrics.recoveries.Increment();
  metrics.recovery_replayed.Increment(replayed);

  // Prune stale generations and leftover temp files (best effort). Only
  // generations OLDER than the chosen one are stale. A NEWER generation
  // exists when recovery fell back past a corrupt snapshot-(N+1) — and
  // journal-(N+1) may then hold acknowledged records. Deleting those
  // files would destroy that evidence and make the first recovery
  // destructive (a second run would see different state); instead newer
  // journals are set aside under a ".orphan" suffix, which keeps their
  // bytes on disk but hides them from sequence scanning (so a later
  // snapshot roll cannot truncate them either). Running Recover again on
  // the resulting directory is a no-op.
  for (const std::string& name : entries) {
    std::size_t sequence = 0;
    const bool temp = name.find(".tmp.") != std::string::npos;
    const bool old_snapshot =
        ParseSequence(name, "snapshot-", ".condensa", &sequence) &&
        sequence < chosen;
    const bool old_journal =
        ParseSequence(name, "journal-", ".log", &sequence) &&
        sequence < chosen;
    if (temp || old_snapshot || old_journal) {
      RemoveFile(dir + "/" + name);
      continue;
    }
    const bool newer_journal =
        ParseSequence(name, "journal-", ".log", &sequence) &&
        sequence > chosen;
    if (newer_journal) {
      std::string target = dir + "/" + name + ".orphan";
      for (int attempt = 1; PathExists(target); ++attempt) {
        target = dir + "/" + name + ".orphan." + std::to_string(attempt);
      }
      std::rename((dir + "/" + name).c_str(), target.c_str());
    }
  }
  return durable;
}

StatusOr<DurableCondenser> DurableCondenser::Open(
    std::size_t dim, DynamicCondenserOptions options,
    DurabilityOptions durability, const std::string& dir) {
  auto recovered = Recover(dir, options, durability);
  if (recovered.ok()) {
    if (recovered->condenser().dim() != dim) {
      return InvalidArgumentError(
          "checkpoint state in " + dir + " has dimension " +
          std::to_string(recovered->condenser().dim()) + ", expected " +
          std::to_string(dim));
    }
    return recovered;
  }
  if (IsNotFound(recovered.status())) {
    return Create(dim, options, durability, dir);
  }
  return recovered.status();
}

Status DurableCondenser::Bootstrap(
    const std::vector<linalg::Vector>& initial, Rng& rng) {
  if (poisoned_) {
    return FailedPreconditionError(
        "durable condenser is unusable after a failed rebuild; Recover");
  }
  Status applied = condenser_.Bootstrap(initial, rng);
  if (!applied.ok()) {
    // A failed static condensation can leave partial in-memory state that
    // no journal entry describes; rebuild from disk before continuing.
    CONDENSA_RETURN_IF_ERROR(ReloadFromDisk());
    return applied;
  }
  // The journal cannot express a static condensation (it is randomized);
  // the bootstrap becomes durable with this snapshot.
  return WriteSnapshot();
}

Status DurableCondenser::AppendJournal(char op,
                                       const linalg::Vector& record) {
  CONDENSA_RETURN_IF_ERROR(FailPoint::Maybe("checkpoint.journal_append"));
  const std::string line = JournalLine(op, record);
  Status status = journal_.Append(line);
  if (status.ok() && durability_.sync_every_append) {
    status = journal_.Sync();
    if (status.ok()) {
      CheckpointMetrics::Get().fsyncs.Increment();
    }
  }
  if (!status.ok()) {
    // The line may be partially (torn write) or even fully (failed sync)
    // on disk. Roll it back so journal_bytes_ stays the exact length of
    // the durable content — otherwise a later apply-failure truncation
    // would chop into entries acknowledged after this orphan (best
    // effort; a crash before the repair is healed by recovery's
    // torn-tail truncation instead).
    journal_.Truncate(journal_bytes_);
    journal_.Sync();
    return status;
  }
  journal_bytes_ += line.size();
  CheckpointMetrics& metrics = CheckpointMetrics::Get();
  metrics.journal_appends.Increment();
  metrics.journal_bytes.Increment(line.size());
  return OkStatus();
}

Status DurableCondenser::ReloadFromDisk() {
  auto reloaded = Recover(dir_, condenser_.options(), durability_);
  if (!reloaded.ok()) {
    // Memory and disk may now disagree; refuse all further durable
    // operations so a later Checkpoint cannot persist the divergence.
    poisoned_ = true;
    journal_.Close();
    return reloaded.status();
  }
  *this = std::move(reloaded).value();
  return OkStatus();
}

Status DurableCondenser::Insert(const linalg::Vector& record) {
  if (poisoned_) {
    return FailedPreconditionError(
        "durable condenser is unusable after a failed rebuild; Recover");
  }
  if (record.dim() != condenser_.dim()) {
    return InvalidArgumentError("record dimension mismatch");
  }
  const std::size_t offset_before = journal_bytes_;
  CONDENSA_RETURN_IF_ERROR(AppendJournal('i', record));
  Status applied = condenser_.Insert(record);
  if (!applied.ok()) {
    // Keep journal == applied state: drop the entry we could not apply,
    // then rebuild memory from disk — the failed apply may have left the
    // structure partially mutated (record added, 2k split aborted).
    journal_.Truncate(offset_before);
    journal_.Sync();
    journal_bytes_ = offset_before;
    CONDENSA_RETURN_IF_ERROR(ReloadFromDisk());
    return applied;
  }
  MaybeSnapshotAfterAppend();
  return OkStatus();
}

Status DurableCondenser::Remove(const linalg::Vector& record) {
  if (poisoned_) {
    return FailedPreconditionError(
        "durable condenser is unusable after a failed rebuild; Recover");
  }
  if (record.dim() != condenser_.dim()) {
    return InvalidArgumentError("record dimension mismatch");
  }
  const std::size_t offset_before = journal_bytes_;
  CONDENSA_RETURN_IF_ERROR(AppendJournal('r', record));
  Status applied = condenser_.Remove(record);
  if (!applied.ok()) {
    // Same hazard as Insert: a failed Remove may have merged groups
    // before its resplit aborted. Roll back the entry and rebuild.
    journal_.Truncate(offset_before);
    journal_.Sync();
    journal_bytes_ = offset_before;
    CONDENSA_RETURN_IF_ERROR(ReloadFromDisk());
    return applied;
  }
  MaybeSnapshotAfterAppend();
  return OkStatus();
}

void DurableCondenser::MaybeSnapshotAfterAppend() {
  if (++appends_ < durability_.snapshot_interval) {
    return;
  }
  Status snapshot = WriteSnapshot();
  if (!snapshot.ok()) {
    // The record that triggered this snapshot is journaled and applied —
    // acknowledging it is correct even though the compaction step failed.
    // Surfacing the error would make callers retry an already-durable
    // record (a duplicate insert). appends_ stays >= the interval, so the
    // next append retries the snapshot; Checkpoint() still reports errors.
    CheckpointMetrics::Get().deferred_snapshots.Increment();
  }
}

Status DurableCondenser::Checkpoint() {
  if (poisoned_) {
    return FailedPreconditionError(
        "durable condenser is unusable after a failed rebuild; Recover");
  }
  return WriteSnapshot();
}

Status DurableCondenser::WriteSnapshot() {
  CONDENSA_RETURN_IF_ERROR(FailPoint::Maybe("checkpoint.snapshot"));
  CheckpointMetrics& metrics = CheckpointMetrics::Get();
  obs::ScopedTimer snapshot_timer(metrics.snapshot_seconds);
  const bool initial = !journal_.is_open();
  const std::size_t next = initial ? sequence_ : sequence_ + 1;
  const std::string snapshot_path = dir_ + "/" + SnapshotName(next);
  const std::string serialized =
      SerializeCondenserState(condenser_.ExportState(), next);
  CONDENSA_RETURN_IF_ERROR(WriteFileAtomic(snapshot_path, serialized));
  metrics.snapshots.Increment();
  metrics.snapshot_bytes.Increment(serialized.size());

  // Roll the journal. If this fails the new snapshot must not stay
  // visible: records acknowledged afterwards would land in the old
  // journal, which recovery (keyed to the newest snapshot) ignores.
  const std::string header = JournalHeader(next);
  auto rolled = AppendFile::Open(dir_ + "/" + JournalName(next),
                                 /*truncate=*/true);
  Status roll_status =
      rolled.ok() ? rolled->Append(header) : rolled.status();
  if (roll_status.ok()) {
    roll_status = rolled->Sync();
  }
  if (!roll_status.ok()) {
    if (!initial) {
      RemoveFile(snapshot_path);
    }
    return roll_status;
  }
  journal_ = std::move(rolled).value();
  journal_bytes_ = header.size();

  if (!initial) {
    // Previous generation is now redundant (best-effort cleanup).
    RemoveFile(dir_ + "/" + SnapshotName(sequence_));
    RemoveFile(dir_ + "/" + JournalName(sequence_));
  }
  sequence_ = next;
  appends_ = 0;
  return OkStatus();
}

}  // namespace condensa::core
