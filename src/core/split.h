// SplitGroupStatistics (paper Figure 3).
//
// Splits one group aggregate M into two aggregates M1, M2 of half the size
// each, using only (Fs, Sc, n) — no raw records exist any more. Under the
// locally-uniform assumption the group is uniform along its largest
// eigenvector e₁ with variance λ₁, i.e. range a = sqrt(12 λ₁); cutting that
// range in half places the two halves' centroids at Y ± (a/4)·e₁ and
// shrinks the variance along e₁ by a factor of 4. All other eigenvectors
// and eigenvalues are unchanged. Second-order sums are re-derived from the
// new covariance and centroids via paper Equation 3.

#ifndef CONDENSA_CORE_SPLIT_H_
#define CONDENSA_CORE_SPLIT_H_

#include <utility>

#include "common/status.h"
#include "core/group_statistics.h"

namespace condensa::core {

struct SplitResult {
  GroupStatistics lower;   // centroid at Y − (sqrt(12 λ₁)/4) e₁
  GroupStatistics upper;   // centroid at Y + (sqrt(12 λ₁)/4) e₁
};

// Which split formula to apply.
enum class SplitRule {
  // Dimensionally consistent derivation (default): the halves' first-
  // order sums are k · (Y ± offset·e₁), so merging the two halves
  // reproduces the parent's moments exactly.
  kMomentConsistent = 0,
  // The paper's Figure 3 pseudocode taken literally: it assigns
  //   Fs(M1) = Fs(M)/n(M) ± e₁·sqrt(12 λ₁)/4
  // i.e. a centroid-scale value is stored into the sum-scale field, and
  // Eq. 3 then mixes the scales. Provided so ablation A10 can reproduce
  // the strong dynamic-μ degradation the paper reports at small group
  // sizes. Do not use in production.
  kPaperVerbatim = 1,
};

// Splits `group` along its largest-eigenvalue direction. Fails with
// InvalidArgument when the group has fewer than 2 records and propagates
// eigensolver failures. A group with zero covariance splits into two
// coincident halves (both centroids equal the group centroid).
StatusOr<SplitResult> SplitGroupStatistics(
    const GroupStatistics& group,
    SplitRule rule = SplitRule::kMomentConsistent);

}  // namespace condensa::core

#endif  // CONDENSA_CORE_SPLIT_H_
