#include "core/serialization.h"

#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>

#include "common/failpoint.h"
#include "common/io.h"
#include "common/string_util.h"

namespace condensa::core {
namespace {

constexpr char kMagic[] = "condensa-groups v1";

void AppendDouble(std::string& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

// Reads the next whitespace-separated token as a double.
bool NextDouble(std::istringstream& stream, double* value) {
  std::string token;
  if (!(stream >> token)) return false;
  return ParseDouble(token, value);
}

bool NextSize(std::istringstream& stream, std::size_t* value) {
  std::string token;
  if (!(stream >> token)) return false;
  int parsed = 0;
  if (!ParseInt(token, &parsed) || parsed < 0) return false;
  *value = static_cast<std::size_t>(parsed);
  return true;
}

}  // namespace

std::string SerializeGroupSet(const CondensedGroupSet& groups) {
  std::string out = kMagic;
  out += "\ndim ";
  out += std::to_string(groups.dim());
  out += " k ";
  out += std::to_string(groups.indistinguishability_level());
  out += " groups ";
  out += std::to_string(groups.num_groups());
  out += '\n';
  // Backend annotation, written only for non-default backends so a
  // default-backend document is byte-identical to the pre-backend v1
  // format (absent = condensation; see docs/backends.md).
  if (groups.backend_id() != CondensedGroupSet::kDefaultBackendId ||
      groups.backend_version() != 1) {
    out += "backend ";
    out += groups.backend_id();
    out += ' ';
    out += std::to_string(groups.backend_version());
    out += '\n';
  }

  const std::size_t d = groups.dim();
  for (const GroupStatistics& group : groups.groups()) {
    out += "group n ";
    out += std::to_string(group.count());
    out += "\nfs";
    for (std::size_t j = 0; j < d; ++j) {
      out += ' ';
      AppendDouble(out, group.first_order()[j]);
    }
    out += "\nsc";
    // Upper triangle including the diagonal; Sc is symmetric.
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i; j < d; ++j) {
        out += ' ';
        AppendDouble(out, group.second_order()(i, j));
      }
    }
    out += '\n';
  }
  return out;
}

StatusOr<CondensedGroupSet> DeserializeGroupSet(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  if (!std::getline(stream, line) || StripWhitespace(line) != kMagic) {
    return InvalidArgumentError("missing condensa-groups v1 header");
  }

  std::string keyword;
  std::size_t dim = 0, k = 0, num_groups = 0;
  if (!(stream >> keyword) || keyword != "dim" || !NextSize(stream, &dim) ||
      !(stream >> keyword) || keyword != "k" || !NextSize(stream, &k) ||
      !(stream >> keyword) || keyword != "groups" ||
      !NextSize(stream, &num_groups)) {
    return DataLossError("malformed group-set header line");
  }
  if (dim == 0) {
    return InvalidArgumentError("group set dimension must be positive");
  }
  // Every group carries at least dim values, so a dim (or group count)
  // larger than the document itself is corruption — reject it before it
  // can drive a giant allocation below.
  if (dim > text.size() || num_groups > text.size()) {
    return DataLossError("group-set header counts exceed document size");
  }

  CondensedGroupSet groups(dim, k);

  // Optional backend annotation between the header and the first group.
  // Default-backend writers omit it, so absence means "condensation".
  {
    const std::istringstream::pos_type mark = stream.tellg();
    std::string maybe;
    if ((stream >> maybe) && maybe == "backend") {
      std::string id;
      std::size_t version = 0;
      if (!(stream >> id) || !NextSize(stream, &version) || version == 0 ||
          version > static_cast<std::size_t>(
                        std::numeric_limits<int>::max())) {
        return DataLossError("malformed backend annotation line");
      }
      groups.SetBackend(id, static_cast<int>(version));
    } else {
      stream.clear();
      stream.seekg(mark);
    }
  }

  for (std::size_t g = 0; g < num_groups; ++g) {
    std::size_t count = 0;
    if (!(stream >> keyword) || keyword != "group" || !(stream >> keyword) ||
        keyword != "n" || !NextSize(stream, &count) || count == 0) {
      return DataLossError("malformed group header in group " +
                           std::to_string(g));
    }

    linalg::Vector fs(dim);
    if (!(stream >> keyword) || keyword != "fs") {
      return DataLossError("missing fs section in group " +
                           std::to_string(g));
    }
    for (std::size_t j = 0; j < dim; ++j) {
      if (!NextDouble(stream, &fs[j])) {
        return DataLossError("truncated fs values in group " +
                             std::to_string(g));
      }
    }

    linalg::Matrix sc(dim, dim);
    if (!(stream >> keyword) || keyword != "sc") {
      return DataLossError("missing sc section in group " +
                           std::to_string(g));
    }
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t j = i; j < dim; ++j) {
        double value = 0.0;
        if (!NextDouble(stream, &value)) {
          return DataLossError("truncated sc values in group " +
                               std::to_string(g));
        }
        sc(i, j) = value;
        sc(j, i) = value;
      }
    }

    // Fs and Sc are the stored representation; reconstitute verbatim so
    // deserialized aggregates are bit-identical to the serialized ones.
    groups.AddGroup(
        GroupStatistics::FromRawSums(count, std::move(fs), std::move(sc)));
  }

  // Reject trailing garbage (ignoring whitespace).
  std::string rest;
  if (stream >> rest) {
    return DataLossError("trailing content after final group");
  }
  return groups;
}

namespace {

constexpr char kPoolsMagic[] = "condensa-pools v1";
constexpr char kPoolHeader[] = "pool label ";

}  // namespace

std::string SerializePools(const CondensedPools& pools) {
  std::string out = kPoolsMagic;
  out += "\ntask ";
  out += std::to_string(static_cast<int>(pools.task));
  out += " feature_dim ";
  out += std::to_string(pools.feature_dim);
  out += " pools ";
  out += std::to_string(pools.pools.size());
  out += '\n';
  for (const CondensedPools::Pool& pool : pools.pools) {
    out += kPoolHeader;
    out += std::to_string(pool.label);
    out += " splits ";
    out += std::to_string(pool.splits);
    out += '\n';
    out += SerializeGroupSet(pool.groups);
  }
  return out;
}

StatusOr<CondensedPools> DeserializePools(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  if (!std::getline(stream, line) || StripWhitespace(line) != kPoolsMagic) {
    return InvalidArgumentError("missing condensa-pools v1 header");
  }
  std::string keyword;
  int task_value = 0;
  std::size_t feature_dim = 0, pool_count = 0;
  std::string token;
  if (!(stream >> keyword) || keyword != "task" || !(stream >> token) ||
      !ParseInt(token, &task_value) || task_value < 0 || task_value > 2 ||
      !(stream >> keyword) || keyword != "feature_dim" ||
      !NextSize(stream, &feature_dim) || !(stream >> keyword) ||
      keyword != "pools" || !NextSize(stream, &pool_count)) {
    return DataLossError("malformed pools header line");
  }
  if (feature_dim == 0) {
    return InvalidArgumentError("feature dimension must be positive");
  }
  // Consume the rest of the header line.
  std::getline(stream, line);

  CondensedPools pools;
  pools.task = static_cast<data::TaskType>(task_value);
  pools.feature_dim = feature_dim;

  // The remainder is `pool label L splits S\n<group set>` repeated; split
  // on the pool header lines and hand each body to DeserializeGroupSet.
  std::string rest;
  if (stream.tellg() != std::istringstream::pos_type(-1)) {
    rest = text.substr(static_cast<std::size_t>(stream.tellg()));
  }
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < pool_count; ++p) {
    std::size_t header_pos = rest.find(kPoolHeader, cursor);
    if (header_pos == std::string::npos) {
      return DataLossError("missing pool " + std::to_string(p));
    }
    std::size_t line_end = rest.find('\n', header_pos);
    if (line_end == std::string::npos) {
      return DataLossError("truncated pool header");
    }
    std::istringstream header(
        rest.substr(header_pos + strlen(kPoolHeader),
                    line_end - header_pos - strlen(kPoolHeader)));
    int label = 0;
    std::size_t splits = 0;
    std::string label_token;
    if (!(header >> label_token) || !ParseInt(label_token, &label) ||
        !(header >> keyword) || keyword != "splits" ||
        !NextSize(header, &splits)) {
      return DataLossError("malformed pool header in pool " +
                           std::to_string(p));
    }
    std::size_t body_begin = line_end + 1;
    std::size_t body_end = rest.find(kPoolHeader, body_begin);
    if (body_end == std::string::npos) {
      body_end = rest.size();
    }
    CONDENSA_ASSIGN_OR_RETURN(
        CondensedGroupSet groups,
        DeserializeGroupSet(rest.substr(body_begin, body_end - body_begin)));
    if (groups.dim() != pools.CondensedDim()) {
      return InvalidArgumentError("pool dimension mismatch in pool " +
                                  std::to_string(p));
    }
    // Every pool of one release is built by one backend; a mixed file is
    // hand-edited or corrupt.
    if (!pools.pools.empty() &&
        (groups.backend_id() != pools.pools.front().groups.backend_id() ||
         groups.backend_version() !=
             pools.pools.front().groups.backend_version())) {
      return InvalidArgumentError(
          "pool " + std::to_string(p) + " was built by backend '" +
          groups.backend_id() + "' but pool 0 by '" +
          pools.pools.front().groups.backend_id() +
          "'; pools of one release must share a backend");
    }
    pools.pools.push_back(
        CondensedPools::Pool{label, splits, std::move(groups)});
    cursor = body_end;
  }
  if (rest.find(kPoolHeader, cursor) != std::string::npos) {
    return DataLossError("more pools than the header declares");
  }
  return pools;
}

// Both Save entry points commit through WriteFileAtomic: a crash (or an
// armed failpoint) mid-save can never corrupt an existing file, and short
// writes surface as kDataLoss naming the path.
Status SavePools(const CondensedPools& pools, const std::string& path) {
  CONDENSA_RETURN_IF_ERROR(FailPoint::Maybe("serialization.write"));
  return WriteFileAtomic(path, SerializePools(pools));
}

StatusOr<CondensedPools> LoadPools(const std::string& path) {
  CONDENSA_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return DeserializePools(text);
}

Status SaveGroupSet(const CondensedGroupSet& groups,
                    const std::string& path) {
  CONDENSA_RETURN_IF_ERROR(FailPoint::Maybe("serialization.write"));
  return WriteFileAtomic(path, SerializeGroupSet(groups));
}

StatusOr<CondensedGroupSet> LoadGroupSet(const std::string& path) {
  CONDENSA_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return DeserializeGroupSet(text);
}

}  // namespace condensa::core
