// Hook seams for pluggable anonymization backends.
//
// The pipeline factors into two strategies (docs/backends.md): group
// construction (partition raw records into groups of >= k) and
// regeneration (synthesize release records from one group's aggregate).
// The implementations other than the paper's condensation live in
// condensa_backend, which depends on this library — so the core config
// structs carry std::function seams instead of linking back. A null hook
// always means the built-in condensation path, byte-for-byte:
// StaticCondenser for construction, the eigendecomposition sampler of
// core/anonymizer.h for regeneration. backend::Registry resolves a
// --backend id into a bound pair of hooks.

#ifndef CONDENSA_CORE_BACKEND_HOOKS_H_
#define CONDENSA_CORE_BACKEND_HOOKS_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/condensed_group_set.h"
#include "core/group_statistics.h"
#include "linalg/vector.h"

namespace condensa::core {

// Partitions `points` into groups of >= k records and returns their
// aggregates, stamped with the backend's identity. Must be deterministic
// for a fixed Rng state, consuming randomness only through `rng`.
using GroupConstructionFn = std::function<StatusOr<CondensedGroupSet>(
    const std::vector<linalg::Vector>& points, std::size_t k, Rng& rng)>;

// Synthesizes `count` release records from one group's aggregate. Must
// draw randomness only from `rng` (the caller splits one substream per
// group, in group order, so releases are reproducible from the seed at
// any thread count).
using GroupSamplerFn = std::function<StatusOr<std::vector<linalg::Vector>>(
    const GroupStatistics& group, std::size_t count, Rng& rng)>;

}  // namespace condensa::core

#endif  // CONDENSA_CORE_BACKEND_HOOKS_H_
