// Crash-safe streaming condensation: snapshot + journal durability.
//
// The paper's deployment model is a server that retains only the condensed
// statistics H and keeps maintaining them over an unbounded stream
// (DynamicGroupMaintenance, Fig. 2). The privacy model forbids retaining
// raw records, so a crash must not force re-reading the stream:
// DurableCondenser makes every acknowledged record recoverable.
//
// Disk layout inside the checkpoint directory:
//
//   snapshot-NNNNNN.condensa   full state: a small header plus the group
//                              set (and forming buffer) in the v1 text
//                              format of core/serialization.h. Written
//                              atomically (temp + fsync + rename).
//   journal-NNNNNN.log         append-only record log since snapshot N;
//                              one fsync'd line per Insert/Remove.
//
// Commit protocol: a record is journaled (and synced) *before* it is
// applied in memory, so `Insert` returning OK means the record survives a
// crash. Every `snapshot_interval` appends the current state is
// snapshotted under the next sequence number, a fresh journal is opened,
// and the previous generation is deleted.
//
// `Recover` walks snapshots newest-first until one parses, replays the
// matching journal onto it, truncates any torn journal tail (a crash
// mid-append), and returns a condenser positioned exactly at the last
// durable record. Replay is deterministic, so the recovered structure is
// bit-identical to the pre-crash in-memory structure at that record.

#ifndef CONDENSA_CORE_CHECKPOINTING_H_
#define CONDENSA_CORE_CHECKPOINTING_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/random.h"
#include "common/status.h"
#include "core/dynamic_condenser.h"

namespace condensa::core {

struct DurabilityOptions {
  // Journal appends between automatic snapshots. Must be >= 1.
  std::size_t snapshot_interval = 1024;
  // fsync the journal before acknowledging each record. Turning this off
  // trades the strict durability guarantee for throughput: a crash may
  // lose records that were acknowledged since the last sync.
  bool sync_every_append = true;
};

// Serialized forms of the full condenser state (the snapshot body).
// Exposed for tests and tooling; production code uses DurableCondenser.
std::string SerializeCondenserState(const DynamicCondenser::State& state,
                                    std::size_t sequence);
StatusOr<DynamicCondenser::State> DeserializeCondenserState(
    const std::string& text, std::size_t* sequence_out);

class DurableCondenser {
 public:
  DurableCondenser(DurableCondenser&&) = default;
  DurableCondenser& operator=(DurableCondenser&&) = default;

  // Starts a fresh durable condenser in `dir` (created when missing) and
  // writes the initial snapshot. Fails with kFailedPrecondition when the
  // directory already holds checkpoint state — use Recover (or Open).
  static StatusOr<DurableCondenser> Create(std::size_t dim,
                                           DynamicCondenserOptions options,
                                           DurabilityOptions durability,
                                           const std::string& dir);

  // Restores from `dir`: loads the newest parseable snapshot, replays its
  // journal, truncates any torn tail, and deletes generations older than
  // the chosen one. Journals newer than the chosen snapshot (possible
  // when recovery fell back past a corrupt snapshot) are preserved under
  // a ".orphan" suffix, never deleted. Recover is idempotent: running it
  // twice against the same directory leaves the second run a no-op.
  // NotFound when the directory holds no checkpoint state at all;
  // kDataLoss when state exists but no snapshot is recoverable.
  static StatusOr<DurableCondenser> Recover(const std::string& dir,
                                            DynamicCondenserOptions options,
                                            DurabilityOptions durability);

  // Recover when `dir` has state, Create otherwise. The entry point for
  // "restart the server and keep going". `dim` must match recovered state.
  static StatusOr<DurableCondenser> Open(std::size_t dim,
                                         DynamicCondenserOptions options,
                                         DurabilityOptions durability,
                                         const std::string& dir);

  // Statically condenses `initial` as the structure's seed (paper's
  // H = CreateCondensedGroups(k, D)), then snapshots. Must come before any
  // Insert, at most once.
  Status Bootstrap(const std::vector<linalg::Vector>& initial, Rng& rng);

  // Journals the record (fsync), then applies it. OK return == durable.
  // A non-OK return means the record is NOT applied (so it is safe to
  // retry): a failed interval snapshot after a successful apply is
  // deferred to the next append, not surfaced — see
  // MaybeSnapshotAfterAppend.
  Status Insert(const linalg::Vector& record);

  // Journals the deletion (fsync), then applies it. Same error contract
  // as Insert.
  Status Remove(const linalg::Vector& record);

  // Forces a snapshot now regardless of the interval.
  Status Checkpoint();

  // The wrapped in-memory condenser (read-only).
  const DynamicCondenser& condenser() const { return condenser_; }
  const CondensedGroupSet& groups() const { return condenser_.groups(); }
  std::size_t records_seen() const { return condenser_.records_seen(); }

  // Current snapshot sequence number and journal appends since it.
  std::size_t snapshot_sequence() const { return sequence_; }
  std::size_t appends_since_snapshot() const { return appends_; }

  const std::string& dir() const { return dir_; }

  // Finalizes the stream and returns the group set (see
  // DynamicCondenser::TakeGroups). Checkpoint files are left on disk.
  CondensedGroupSet TakeGroups() { return condenser_.TakeGroups(); }

 private:
  DurableCondenser(DynamicCondenser condenser, DurabilityOptions durability,
                   std::string dir)
      : condenser_(std::move(condenser)),
        durability_(durability),
        dir_(std::move(dir)) {}

  // Appends one journal line ("<op> v0 ... vd-1 .\n") durably.
  Status AppendJournal(char op, const linalg::Vector& record);

  // Rebuilds the in-memory condenser from the on-disk snapshot + journal.
  // Called after a failed apply, which can leave the in-memory structure
  // partially mutated (e.g. the record added but its 2k split aborted);
  // without the rebuild a later Checkpoint would persist that divergent
  // state. Poisons the instance when the rebuild itself fails.
  Status ReloadFromDisk();

  // Writes snapshot `sequence_ + 1`, rolls the journal, prunes the old
  // generation.
  Status WriteSnapshot();

  // Interval bookkeeping after a successful journaled apply. A snapshot
  // failure here is deferred (counted, retried on the next append) rather
  // than returned: the triggering record is already durable, and failing
  // its Insert/Remove would invite a duplicating retry.
  void MaybeSnapshotAfterAppend();

  DynamicCondenser condenser_;
  DurabilityOptions durability_;
  std::string dir_;
  AppendFile journal_;
  std::size_t sequence_ = 0;
  std::size_t appends_ = 0;
  // Bytes of valid journal content, so a failed apply can truncate the
  // entry it journaled (journal contents always match applied state).
  std::size_t journal_bytes_ = 0;
  // Set when a post-apply-failure rebuild failed too: memory and disk may
  // disagree, so every further durable operation is refused. The caller
  // recovers by constructing a fresh instance via Recover.
  bool poisoned_ = false;
};

}  // namespace condensa::core

#endif  // CONDENSA_CORE_CHECKPOINTING_H_
