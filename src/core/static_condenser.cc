#include "core/static_condenser.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/timing.h"

namespace condensa::core {
namespace {

// The group-build / NN-search timers are sampled 1-in-this so the
// clock reads stay invisible next to the distance scan.
constexpr std::size_t kGroupTimerSampleEvery = 8;

// Handles into the default registry, resolved once per process so the
// per-group cost is relaxed atomic updates (plus the sampled timers).
struct StaticCondenserMetrics {
  obs::Counter& runs =
      obs::DefaultRegistry().GetCounter("condensa_static_runs_total");
  obs::Counter& groups_built =
      obs::DefaultRegistry().GetCounter("condensa_static_groups_built_total");
  obs::Counter& leftover_absorbed = obs::DefaultRegistry().GetCounter(
      "condensa_static_leftover_absorbed_total");
  obs::Histogram& nn_search_seconds = obs::DefaultRegistry().GetHistogram(
      "condensa_static_nn_search_seconds");
  obs::Histogram& group_build_seconds = obs::DefaultRegistry().GetHistogram(
      "condensa_static_group_build_seconds");

  static StaticCondenserMetrics& Get() {
    static StaticCondenserMetrics metrics;
    return metrics;
  }
};

}  // namespace

StatusOr<CondensedGroupSet> StaticCondenser::Condense(
    const std::vector<linalg::Vector>& points, Rng& rng) const {
  const std::size_t k = options_.group_size;
  if (k == 0) {
    return InvalidArgumentError("group size k must be at least 1");
  }
  if (points.empty()) {
    return InvalidArgumentError("cannot condense an empty point set");
  }
  if (points.size() < k) {
    return InvalidArgumentError(
        "fewer records than the requested indistinguishability level");
  }
  const std::size_t dim = points.front().dim();
  for (const linalg::Vector& p : points) {
    if (p.dim() != dim) {
      return InvalidArgumentError("points have inconsistent dimensions");
    }
  }

  StaticCondenserMetrics& metrics = StaticCondenserMetrics::Get();
  metrics.runs.Increment();

  CondensedGroupSet result(dim, k);

  // `alive` holds indices of records still in the database D; removal is
  // O(1) swap-with-last so random sampling stays uniform over survivors.
  std::vector<std::size_t> alive(points.size());
  std::iota(alive.begin(), alive.end(), 0);

  auto remove_alive_at = [&alive](std::size_t pos) {
    alive[pos] = alive.back();
    alive.pop_back();
  };

  std::vector<std::pair<double, std::size_t>> distances;  // (d², alive pos)
  std::size_t group_ordinal = 0;
  while (alive.size() >= k) {
    // Timing every group would cost four clock reads per group, which
    // shows up against the nearest-neighbour scan; sample 1-in-8.
    const bool timed = (group_ordinal++ % kGroupTimerSampleEvery) == 0;
    obs::ScopedTimer group_timer(timed ? &metrics.group_build_seconds
                                       : nullptr);

    // Step 1: sample a random record X from D.
    std::size_t seed_pos = rng.UniformIndex(alive.size());
    const linalg::Vector& seed = points[alive[seed_pos]];

    // Step 2: the (k-1) closest remaining records join X's group.
    {
      obs::ScopedTimer nn_timer(timed ? &metrics.nn_search_seconds : nullptr);
      distances.clear();
      distances.reserve(alive.size() - 1);
      for (std::size_t pos = 0; pos < alive.size(); ++pos) {
        if (pos == seed_pos) continue;
        distances.emplace_back(
            linalg::SquaredDistance(points[alive[pos]], seed), pos);
      }
      std::size_t neighbours = k - 1;
      if (neighbours > 0) {
        std::nth_element(distances.begin(),
                         distances.begin() + (neighbours - 1),
                         distances.end());
      }
    }
    const std::size_t neighbours = k - 1;

    GroupStatistics group(dim);
    group.Add(seed);
    // Collect the alive positions to delete (seed + neighbours), largest
    // first so swap-removal does not invalidate pending positions.
    std::vector<std::size_t> to_remove;
    to_remove.reserve(k);
    to_remove.push_back(seed_pos);
    for (std::size_t i = 0; i < neighbours; ++i) {
      group.Add(points[alive[distances[i].second]]);
      to_remove.push_back(distances[i].second);
    }
    std::sort(to_remove.begin(), to_remove.end(), std::greater<>());
    for (std::size_t pos : to_remove) {
      remove_alive_at(pos);
    }

    result.AddGroup(std::move(group));
  }
  metrics.groups_built.Increment(result.num_groups());

  // Step 3: between 0 and k-1 leftovers join their nearest group.
  metrics.leftover_absorbed.Increment(alive.size());
  for (std::size_t pos = 0; pos < alive.size(); ++pos) {
    const linalg::Vector& point = points[alive[pos]];
    std::size_t nearest = result.NearestGroup(point);
    result.mutable_group(nearest).Add(point);
  }

  return result;
}

}  // namespace condensa::core
