#include "core/static_condenser.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <utility>

#include "common/check.h"
#include "core/centroid_index.h"
#include "index/deletion_aware.h"
#include "obs/metrics.h"
#include "obs/timing.h"
#include "simd/arena.h"
#include "simd/distance.h"
#include "simd/record_block.h"

namespace condensa::core {
namespace {

// The group-build / NN-search timers are sampled 1-in-this so the
// clock reads stay invisible next to the distance scan.
constexpr std::size_t kGroupTimerSampleEvery = 8;

// Handles into the default registry, resolved once per process so the
// per-group cost is relaxed atomic updates (plus the sampled timers).
struct StaticCondenserMetrics {
  obs::Counter& runs =
      obs::DefaultRegistry().GetCounter("condensa_static_runs_total");
  obs::Counter& groups_built =
      obs::DefaultRegistry().GetCounter("condensa_static_groups_built_total");
  obs::Counter& leftover_absorbed = obs::DefaultRegistry().GetCounter(
      "condensa_static_leftover_absorbed_total");
  obs::Counter& index_runs = obs::DefaultRegistry().GetCounter(
      "condensa_static_index_runs_total");
  obs::Counter& index_fallbacks = obs::DefaultRegistry().GetCounter(
      "condensa_static_index_fallbacks_total");
  obs::Histogram& nn_search_seconds = obs::DefaultRegistry().GetHistogram(
      "condensa_static_nn_search_seconds");
  obs::Histogram& group_build_seconds = obs::DefaultRegistry().GetHistogram(
      "condensa_static_group_build_seconds");

  static StaticCondenserMetrics& Get() {
    static StaticCondenserMetrics metrics;
    return metrics;
  }
};

}  // namespace

StatusOr<CondensedGroupSet> StaticCondenser::Condense(
    const std::vector<linalg::Vector>& points, Rng& rng) const {
  const std::size_t k = options_.group_size;
  if (k == 0) {
    return InvalidArgumentError("group size k must be at least 1");
  }
  if (points.empty()) {
    return InvalidArgumentError("cannot condense an empty point set");
  }
  if (points.size() < k) {
    return InvalidArgumentError(
        "fewer records than the requested indistinguishability level");
  }
  const std::size_t dim = points.front().dim();
  for (const linalg::Vector& p : points) {
    if (p.dim() != dim) {
      return InvalidArgumentError("points have inconsistent dimensions");
    }
  }

  StaticCondenserMetrics& metrics = StaticCondenserMetrics::Get();
  metrics.runs.Increment();

  // Neighbour-search strategy: the deletion-aware index pays for its
  // build above the threshold, the scan wins below it. Both return the
  // same neighbour sets, so this is purely a speed decision.
  const bool want_index =
      options_.neighbour_search == NeighbourSearch::kKdTree ||
      (options_.neighbour_search == NeighbourSearch::kAuto &&
       points.size() >= options_.index_threshold);
  std::optional<index::DeletionAwareKdTree> nn_index;
  if (want_index) {
    StatusOr<index::DeletionAwareKdTree> built =
        index::DeletionAwareKdTree::Build(points);
    // Build only fails on inputs the validation above already rejected;
    // degrade to the scan rather than failing the run.
    if (built.ok()) {
      nn_index.emplace(std::move(*built));
      metrics.index_runs.Increment();
    } else {
      metrics.index_fallbacks.Increment();
    }
  }

  CondensedGroupSet result(dim, k);

  // `alive` holds indices of records still in the database D; removal is
  // O(1) swap-with-last so random sampling stays uniform over survivors.
  // `alive_pos[orig]` tracks each survivor's slot so both search paths
  // delete identically (the layout feeds the next seed draw).
  std::vector<std::size_t> alive(points.size());
  std::iota(alive.begin(), alive.end(), 0);
  std::vector<std::size_t> alive_pos(points.size());
  std::iota(alive_pos.begin(), alive_pos.end(), 0);

  // The scan path keeps a blocked-SoA copy of the survivors, compacted
  // with the same swap-with-last moves as `alive` (slot s holds record
  // alive[s]), so each group's neighbour scan is one vectorized
  // batch-distance call instead of a per-record pointer chase. Group
  // scratch comes from a bump arena recycled per group — no per-
  // candidate heap churn.
  simd::RecordBlock survivors(0);
  const bool use_soa = !nn_index.has_value();
  if (use_soa) {
    survivors = simd::RecordBlock::FromVectors(points);
  }
  simd::Arena arena;

  auto remove_original = [&](std::size_t orig) {
    std::size_t pos = alive_pos[orig];
    if (use_soa) {
      survivors.CopyRecord(alive.size() - 1, pos);
      survivors.Truncate(alive.size() - 1);
    }
    alive[pos] = alive.back();
    alive_pos[alive[pos]] = pos;
    alive.pop_back();
  };

  // (d², original index): the selection key on both paths, so distance
  // ties resolve by the stable original index, never by survivor-array
  // position (which depends on removal history).
  std::vector<std::pair<double, std::size_t>> selected;
  std::size_t group_ordinal = 0;
  while (alive.size() >= k) {
    // Timing every group would cost four clock reads per group, which
    // shows up against the nearest-neighbour search; sample 1-in-8.
    const bool timed = (group_ordinal++ % kGroupTimerSampleEvery) == 0;
    obs::ScopedTimer group_timer(timed ? &metrics.group_build_seconds
                                       : nullptr);

    // Step 1: sample a random record X from D.
    const std::size_t seed_orig = alive[rng.UniformIndex(alive.size())];
    const linalg::Vector& seed = points[seed_orig];
    const std::size_t neighbours = k - 1;

    // Step 2: the (k-1) closest remaining records join X's group.
    {
      obs::ScopedTimer nn_timer(timed ? &metrics.nn_search_seconds : nullptr);
      if (nn_index.has_value()) {
        nn_index->Erase(seed_orig);  // the seed is not its own neighbour
        selected = nn_index->KNearestAlive(seed, neighbours);
      } else {
        selected.clear();
        selected.reserve(alive.size() - 1);
        // One batch-distance call over the compacted survivor store.
        // Slot s of `survivors` is record alive[s] and the kernel sums
        // each record in dimension order, so (distance, index) pairs are
        // bit-identical to the per-record linalg::SquaredDistance loop.
        arena.Reset();
        double* dist = arena.AllocDoubles(alive.size());
        simd::SquaredDistanceBatch(survivors, seed.data(), dist);
        for (std::size_t slot = 0; slot < alive.size(); ++slot) {
          const std::size_t orig = alive[slot];
          if (orig == seed_orig) continue;
          selected.emplace_back(dist[slot], orig);
        }
        if (neighbours > 0) {
          std::nth_element(selected.begin(),
                           selected.begin() + (neighbours - 1),
                           selected.end());
        }
        selected.resize(neighbours);
        // Full (d², index) order within the group: members are folded
        // into the aggregate in this order, so the sums are bit-identical
        // to the index path's.
        std::sort(selected.begin(), selected.end());
      }
    }

    GroupStatistics group(dim);
    group.Add(seed);
    remove_original(seed_orig);
    for (const auto& [distance_sq, orig] : selected) {
      group.Add(points[orig]);
      if (nn_index.has_value()) {
        nn_index->Erase(orig);
      }
      remove_original(orig);
    }
    result.AddGroup(std::move(group));
  }
  metrics.groups_built.Increment(result.num_groups());

  // Step 3: between 0 and k-1 leftovers join their nearest group. The
  // centroid index answers exactly like CondensedGroupSet::NearestGroup,
  // absorbing one leftover only dirties that group's snapshot entry.
  metrics.leftover_absorbed.Increment(alive.size());
  CentroidIndex centroid_index;
  for (std::size_t orig : alive) {
    const linalg::Vector& point = points[orig];
    std::size_t nearest = centroid_index.NearestGroup(result, point);
    result.mutable_group(nearest).Add(point);
    centroid_index.NoteGroupUpdated(nearest);
  }

  return result;
}

}  // namespace condensa::core
