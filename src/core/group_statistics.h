// Condensed-group aggregate statistics (the paper's Section 2 storage model).
//
// For a group G of d-dimensional records {X_1..X_n} the server keeps only:
//   Fs_j(G)  = Σ_t x_t^j           (first-order sums,  d values)
//   Sc_ij(G) = Σ_t x_t^i x_t^j     (second-order sums, d(d+1)/2 values)
//   n(G)                           (record count)
// From these the group mean and covariance are exact (Observations 1 and 2):
//   mean_j = Fs_j / n
//   cov_ij = Sc_ij / n − Fs_i Fs_j / n²
// The aggregate is additive: records can be added, removed, and whole
// groups merged, without ever retaining the raw records — which is what
// makes the dynamic (stream) setting possible.

#ifndef CONDENSA_CORE_GROUP_STATISTICS_H_
#define CONDENSA_CORE_GROUP_STATISTICS_H_

#include <cstddef>
#include <cstdint>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace condensa::core {

class GroupStatistics {
 public:
  // Creates an empty aggregate for d-dimensional records.
  explicit GroupStatistics(std::size_t dim);

  GroupStatistics(const GroupStatistics&) = default;
  GroupStatistics& operator=(const GroupStatistics&) = default;
  GroupStatistics(GroupStatistics&&) = default;
  GroupStatistics& operator=(GroupStatistics&&) = default;

  // Rebuilds the aggregate that a group with the given size, centroid and
  // covariance would have (the inversion of Observations 1-2 used by the
  // split, paper Equation 3):
  //   Fs    = n · centroid
  //   Sc_ij = n · C_ij + Fs_i · Fs_j / n
  // `count` must be positive; `covariance` must be dim x dim.
  static GroupStatistics FromMoments(std::size_t count,
                                     const linalg::Vector& centroid,
                                     const linalg::Matrix& covariance);

  // Reconstitutes an aggregate from its stored representation verbatim
  // (used by deserialization, where bit-exactness matters). `count` must
  // be positive; `second_order` must be symmetric and dim-consistent.
  static GroupStatistics FromRawSums(std::size_t count,
                                     linalg::Vector first_order,
                                     linalg::Matrix second_order);

  std::size_t dim() const { return first_order_.dim(); }
  // n(G).
  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Fs(G).
  const linalg::Vector& first_order() const { return first_order_; }
  // Sc(G) as a full symmetric matrix.
  const linalg::Matrix& second_order() const { return second_order_; }

  // Folds one record into the aggregate. Dim must match.
  void Add(const linalg::Vector& record);
  // Removes one previously added record. Requires count() > 0.
  void Remove(const linalg::Vector& record);
  // Folds a whole other aggregate in. Dims must match.
  void Merge(const GroupStatistics& other);

  // Group mean, Fs/n (Observation 1). Requires count() > 0.
  linalg::Vector Centroid() const;

  // Group covariance (Observation 2). Round-off can make diagonal entries
  // slightly negative for near-degenerate groups; they are clamped at 0.
  // Requires count() > 0.
  linalg::Matrix Covariance() const;

  // Squared Euclidean distance from `point` to the centroid.
  double SquaredDistanceToCentroid(const linalg::Vector& point) const;

  // A process-globally-unique stamp for the current moment values.
  // Every construction and every mutation (Add/Remove/Merge) draws a
  // fresh stamp from a global counter, so two observations of the same
  // version() are guaranteed to have seen identical (n, Fs, Sc) — the
  // key contract behind the query plane's version-keyed
  // eigendecomposition cache (src/query/eigen_cache.h). Copies share
  // the source's stamp, which is safe: the copy holds the same values.
  std::uint64_t version() const { return version_; }

  // Draws a fresh stamp without changing the moments. Containers use
  // this for conservative invalidation when a group's identity changes
  // (e.g. CondensedGroupSet::Absorb moving groups between sets); a
  // spurious restamp merely costs the cache one miss.
  void BumpVersion();

 private:
  static std::uint64_t NextVersion();

  std::size_t count_ = 0;
  linalg::Vector first_order_;
  linalg::Matrix second_order_;
  std::uint64_t version_ = 0;
};

}  // namespace condensa::core

#endif  // CONDENSA_CORE_GROUP_STATISTICS_H_
