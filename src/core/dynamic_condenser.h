// Dynamic condensation: DynamicGroupMaintenance (paper Figure 2).
//
// Records arrive one at a time. Each joins the group whose centroid is
// nearest; when a group reaches 2k records its aggregate is split into two
// k-sized aggregates with SplitGroupStatistics. Group sizes therefore stay
// in [k, 2k] in the steady state (groups created before the structure
// warms up can be smaller until they fill).
//
// The paper's procedure starts from a static database D condensed with
// CreateCondensedGroups and then consumes the stream S; `Bootstrap`
// provides that. Pure streaming from nothing is also supported: the first
// k records accumulate in a forming group that becomes a real group once
// it reaches size k.

#ifndef CONDENSA_CORE_DYNAMIC_CONDENSER_H_
#define CONDENSA_CORE_DYNAMIC_CONDENSER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/backend_hooks.h"
#include "core/centroid_index.h"
#include "core/condensed_group_set.h"
#include "core/group_statistics.h"
#include "core/split.h"
#include "linalg/vector.h"

namespace condensa::core {

struct DynamicCondenserOptions {
  // The indistinguishability level k. Groups split on reaching 2k. Must be
  // >= 1.
  std::size_t group_size = 10;
  // Split formula (see core/split.h). kPaperVerbatim exists only for
  // ablation A10.
  SplitRule split_rule = SplitRule::kMomentConsistent;
  // Anonymization backend this structure is built and maintained under
  // (docs/backends.md). Stamped into the group set — and therefore into
  // every checkpoint snapshot — so FromState (and
  // DurableCondenser::Recover) refuses state written by a different
  // backend instead of silently maintaining it.
  std::string backend = CondensedGroupSet::kDefaultBackendId;
  int backend_version = 1;
  // Bootstrap construction hook (core/backend_hooks.h): when set,
  // Bootstrap builds the initial group structure with it instead of the
  // built-in StaticCondenser. Null = paper-verbatim static condensation.
  GroupConstructionFn bootstrap_construction;
};

class DynamicCondenser {
 public:
  // The complete mutable state of a condenser — everything a durability
  // layer must persist to reconstruct it exactly (see core/checkpointing.h).
  struct State {
    CondensedGroupSet groups{0, 0};
    // Pure-stream warm-up buffer, when one is open.
    std::optional<GroupStatistics> forming;
    std::size_t split_count = 0;
    std::size_t merge_count = 0;
    std::size_t records_seen = 0;
    bool bootstrapped = false;
  };

  // Creates a condenser for d-dimensional records.
  DynamicCondenser(std::size_t dim, DynamicCondenserOptions options);

  // Copies out the full state (checkpointing).
  State ExportState() const;

  // Rebuilds a condenser from a previously exported state. Fails when the
  // forming buffer's dimension disagrees with the group set's.
  static StatusOr<DynamicCondenser> FromState(State state,
                                              DynamicCondenserOptions options);

  std::size_t dim() const { return groups_.dim(); }
  const DynamicCondenserOptions& options() const { return options_; }

  // Initializes the group structure by statically condensing `initial`
  // (the paper's `H = CreateCondensedGroups(k, D)`). Must be called before
  // any Insert, at most once, with at least k records.
  Status Bootstrap(const std::vector<linalg::Vector>& initial, Rng& rng);

  // Streams one record in: nearest-centroid assignment, split at 2k.
  // Fails (propagating eigensolver errors) only on pathological input.
  Status Insert(const linalg::Vector& record);

  // Removes a previously inserted record from the structure. Because the
  // server keeps only aggregates, the record is removed from the group
  // whose centroid is nearest (which is where Insert put it for data that
  // has not drifted). If that group falls below k, its remaining
  // aggregate is merged into the nearest other group so the
  // k-indistinguishability floor is restored. Fails when the structure is
  // empty or the record dimension mismatches. This extends the paper's
  // stream setting to deletions (turnover / right-to-erasure workloads).
  Status Remove(const linalg::Vector& record);

  // Number of splits performed so far.
  std::size_t split_count() const { return split_count_; }

  // Number of group merges triggered by Remove so far.
  std::size_t merge_count() const { return merge_count_; }

  // Records consumed so far (bootstrap + stream).
  std::size_t records_seen() const { return records_seen_; }

  // Read-only view of the current group aggregates. The forming group (if
  // a pure-stream condenser has seen fewer than k records) is excluded.
  const CondensedGroupSet& groups() const { return groups_; }

  // Finalizes and returns the group set. If a forming group is still open
  // its records are merged into the nearest full group (or emitted as an
  // undersized group when no full group exists). The condenser is left
  // empty.
  CondensedGroupSet TakeGroups();

 private:
  DynamicCondenserOptions options_;
  CondensedGroupSet groups_;
  // Accelerates the per-record nearest-centroid lookup; derived state
  // (never checkpointed), invalidated on group churn, and guaranteed to
  // answer exactly like groups_.NearestGroup.
  CentroidIndex centroid_index_;
  // Pure-stream warm-up buffer: fewer than k records, not yet a group.
  std::optional<GroupStatistics> forming_;
  std::size_t split_count_ = 0;
  std::size_t merge_count_ = 0;
  std::size_t records_seen_ = 0;
  bool bootstrapped_ = false;
};

}  // namespace condensa::core

#endif  // CONDENSA_CORE_DYNAMIC_CONDENSER_H_
