#include "core/dynamic_condenser.h"

#include <utility>

#include "common/failpoint.h"
#include "core/split.h"
#include "core/static_condenser.h"
#include "obs/metrics.h"
#include "obs/timing.h"

namespace condensa::core {
namespace {

// Latency histograms are sampled 1-in-kLatencySampleEvery so the clock
// reads stay invisible next to the nearest-centroid scan; counters are
// exact.
constexpr std::size_t kLatencySampleEvery = 16;

struct DynamicCondenserMetrics {
  obs::Counter& inserts =
      obs::DefaultRegistry().GetCounter("condensa_dynamic_inserts_total");
  obs::Counter& removes =
      obs::DefaultRegistry().GetCounter("condensa_dynamic_removes_total");
  obs::Counter& splits =
      obs::DefaultRegistry().GetCounter("condensa_dynamic_splits_total");
  obs::Counter& merges =
      obs::DefaultRegistry().GetCounter("condensa_dynamic_merges_total");
  obs::Histogram& insert_seconds = obs::DefaultRegistry().GetHistogram(
      "condensa_dynamic_insert_seconds");
  obs::Histogram& remove_seconds = obs::DefaultRegistry().GetHistogram(
      "condensa_dynamic_remove_seconds");

  static DynamicCondenserMetrics& Get() {
    static DynamicCondenserMetrics metrics;
    return metrics;
  }
};

}  // namespace

DynamicCondenser::DynamicCondenser(std::size_t dim,
                                   DynamicCondenserOptions options)
    : options_(std::move(options)), groups_(dim, options_.group_size) {
  CONDENSA_CHECK_GE(options_.group_size, 1u);
  groups_.SetBackend(options_.backend, options_.backend_version);
}

DynamicCondenser::State DynamicCondenser::ExportState() const {
  State state;
  state.groups = groups_;
  state.forming = forming_;
  state.split_count = split_count_;
  state.merge_count = merge_count_;
  state.records_seen = records_seen_;
  state.bootstrapped = bootstrapped_;
  return state;
}

StatusOr<DynamicCondenser> DynamicCondenser::FromState(
    State state, DynamicCondenserOptions options) {
  if (state.forming.has_value() &&
      state.forming->dim() != state.groups.dim()) {
    return InvalidArgumentError(
        "forming-buffer dimension disagrees with the group set");
  }
  // A structure built by one backend cannot be maintained under another:
  // the group shapes (and the regeneration they feed) would silently
  // disagree with what the operator asked for.
  if (state.groups.backend_id() != options.backend) {
    return FailedPreconditionError(
        "state was written by backend '" + state.groups.backend_id() +
        "' but this condenser is configured for '" + options.backend +
        "'; rerun with the matching --backend");
  }
  if (state.groups.backend_version() != options.backend_version) {
    return FailedPreconditionError(
        "state was written by backend '" + state.groups.backend_id() +
        "' version " + std::to_string(state.groups.backend_version()) +
        " but this build provides version " +
        std::to_string(options.backend_version));
  }
  DynamicCondenser condenser(state.groups.dim(), options);
  condenser.groups_ = std::move(state.groups);
  condenser.forming_ = std::move(state.forming);
  condenser.split_count_ = state.split_count;
  condenser.merge_count_ = state.merge_count;
  condenser.records_seen_ = state.records_seen;
  condenser.bootstrapped_ = state.bootstrapped;
  return condenser;
}

Status DynamicCondenser::Bootstrap(
    const std::vector<linalg::Vector>& initial, Rng& rng) {
  if (bootstrapped_ || records_seen_ > 0) {
    return FailedPreconditionError(
        "Bootstrap must be called once, before any Insert");
  }
  CondensedGroupSet initial_groups(dim(), options_.group_size);
  if (options_.bootstrap_construction) {
    CONDENSA_ASSIGN_OR_RETURN(
        initial_groups,
        options_.bootstrap_construction(initial, options_.group_size, rng));
  } else {
    StaticCondenser condenser(
        StaticCondenserOptions{.group_size = options_.group_size});
    CONDENSA_ASSIGN_OR_RETURN(initial_groups, condenser.Condense(initial, rng));
  }
  groups_ = std::move(initial_groups);
  groups_.SetBackend(options_.backend, options_.backend_version);
  centroid_index_.Invalidate();
  records_seen_ = initial.size();
  bootstrapped_ = true;
  return OkStatus();
}

Status DynamicCondenser::Insert(const linalg::Vector& record) {
  if (record.dim() != dim()) {
    return InvalidArgumentError("record dimension mismatch");
  }
  CONDENSA_RETURN_IF_ERROR(FailPoint::Maybe("dynamic.insert"));
  DynamicCondenserMetrics& metrics = DynamicCondenserMetrics::Get();
  metrics.inserts.Increment();
  obs::ScopedTimer latency(records_seen_ % kLatencySampleEvery == 0
                               ? &metrics.insert_seconds
                               : nullptr);
  ++records_seen_;

  // Pure-stream warm-up: no full group exists yet.
  if (groups_.empty()) {
    if (!forming_.has_value()) {
      forming_.emplace(dim());
    }
    forming_->Add(record);
    if (forming_->count() >= options_.group_size) {
      groups_.AddGroup(std::move(*forming_));
      centroid_index_.Invalidate();
      forming_.reset();
    }
    return OkStatus();
  }

  // Paper Fig. 2: add to the nearest centroid's aggregate; split at 2k.
  std::size_t nearest = centroid_index_.NearestGroup(groups_, record);
  GroupStatistics& target = groups_.mutable_group(nearest);
  target.Add(record);
  centroid_index_.NoteGroupUpdated(nearest);
  if (target.count() >= 2 * options_.group_size) {
    CONDENSA_ASSIGN_OR_RETURN(
        SplitResult split,
        SplitGroupStatistics(target, options_.split_rule));
    groups_.RemoveGroup(nearest);
    groups_.AddGroup(std::move(split.lower));
    groups_.AddGroup(std::move(split.upper));
    centroid_index_.Invalidate();
    ++split_count_;
    metrics.splits.Increment();
  }
  return OkStatus();
}

Status DynamicCondenser::Remove(const linalg::Vector& record) {
  if (record.dim() != dim()) {
    return InvalidArgumentError("record dimension mismatch");
  }
  DynamicCondenserMetrics& metrics = DynamicCondenserMetrics::Get();
  metrics.removes.Increment();
  obs::ScopedTimer latency(records_seen_ % kLatencySampleEvery == 0
                               ? &metrics.remove_seconds
                               : nullptr);
  if (groups_.empty()) {
    // The record can only live in the forming buffer.
    if (!forming_.has_value() || forming_->count() == 0) {
      return FailedPreconditionError("structure holds no records");
    }
    forming_->Remove(record);
    if (forming_->count() == 0) {
      forming_.reset();
    }
    --records_seen_;
    return OkStatus();
  }

  std::size_t nearest = centroid_index_.NearestGroup(groups_, record);
  GroupStatistics& target = groups_.mutable_group(nearest);
  target.Remove(record);
  centroid_index_.NoteGroupUpdated(nearest);
  --records_seen_;

  if (target.count() == 0) {
    groups_.RemoveGroup(nearest);
    centroid_index_.Invalidate();
    return OkStatus();
  }
  if (target.count() < options_.group_size && groups_.num_groups() > 1) {
    // Restore the privacy floor: fold the undersized aggregate into the
    // group with the nearest centroid.
    GroupStatistics undersized = std::move(target);
    groups_.RemoveGroup(nearest);
    centroid_index_.Invalidate();
    std::size_t merge_into =
        centroid_index_.NearestGroup(groups_, undersized.Centroid());
    groups_.mutable_group(merge_into).Merge(undersized);
    centroid_index_.NoteGroupUpdated(merge_into);
    ++merge_count_;
    metrics.merges.Increment();
    // The merged group may have reached 2k; split it like an insert would.
    GroupStatistics& merged = groups_.mutable_group(merge_into);
    if (merged.count() >= 2 * options_.group_size) {
      CONDENSA_ASSIGN_OR_RETURN(SplitResult split,
                                SplitGroupStatistics(merged,
                                                     options_.split_rule));
      groups_.RemoveGroup(merge_into);
      groups_.AddGroup(std::move(split.lower));
      groups_.AddGroup(std::move(split.upper));
      centroid_index_.Invalidate();
      ++split_count_;
      metrics.splits.Increment();
    }
  }
  return OkStatus();
}

CondensedGroupSet DynamicCondenser::TakeGroups() {
  if (forming_.has_value() && forming_->count() > 0) {
    if (groups_.empty()) {
      // Nothing else to merge into; emit the undersized group as-is so the
      // records are not lost (caller can inspect Summary().min_group_size).
      groups_.AddGroup(std::move(*forming_));
    } else {
      std::size_t nearest = groups_.NearestGroup(forming_->Centroid());
      groups_.mutable_group(nearest).Merge(*forming_);
    }
    forming_.reset();
  }
  CondensedGroupSet out = std::move(groups_);
  groups_ = CondensedGroupSet(out.dim(), options_.group_size);
  centroid_index_.Invalidate();
  records_seen_ = 0;
  split_count_ = 0;
  merge_count_ = 0;
  bootstrapped_ = false;
  return out;
}

}  // namespace condensa::core
