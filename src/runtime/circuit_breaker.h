// Circuit breaker guarding the condenser + checkpoint I/O path.
//
// When the durable condenser keeps failing (disk gone, fsyncs hanging,
// eigensolver stuck on pathological data) there is no point pushing every
// record through the same failing call: each one burns its full retry
// schedule and the queue backs up. The breaker watches consecutive
// failures and switches the pipeline into degraded (buffer-and-checkpoint
// -only) mode instead:
//
//   kClosed    normal operation; failures are counted, `failure_threshold`
//              consecutive ones trip the breaker.
//   kOpen      requests are refused outright for `open_duration_ms`
//              (records are spooled durably, not lost).
//   kHalfOpen  after the cooldown, probe requests are let through one at
//              a time; `probe_successes_to_close` consecutive successes
//              re-close the breaker (and the pipeline drains its spool),
//              a single failure re-opens it.
//
// The clock is injectable so state transitions are testable without real
// waiting. Thread-safe; the watchdog trips it from outside via ForceTrip.

#ifndef CONDENSA_RUNTIME_CIRCUIT_BREAKER_H_
#define CONDENSA_RUNTIME_CIRCUIT_BREAKER_H_

#include <cstddef>
#include <functional>
#include <mutex>

namespace condensa::runtime {

struct CircuitBreakerOptions {
  // Consecutive failures that trip kClosed -> kOpen. Must be >= 1.
  std::size_t failure_threshold = 5;
  // Cooldown before probes are allowed through.
  double open_duration_ms = 250.0;
  // Consecutive probe successes that close the breaker from kHalfOpen.
  std::size_t probe_successes_to_close = 2;
};

class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  // Monotonic now() in milliseconds; the default reads steady_clock.
  using ClockFn = std::function<double()>;

  explicit CircuitBreaker(CircuitBreakerOptions options,
                          ClockFn clock = nullptr);

  // True when a request may be attempted now. In kOpen this flips the
  // breaker to kHalfOpen once the cooldown has passed (admitting the
  // caller as the probe); in kHalfOpen only one in-flight probe is
  // admitted at a time.
  bool AllowRequest();

  // Reports the outcome of an admitted request.
  void RecordSuccess();
  void RecordFailure();

  // Trips straight to kOpen regardless of counts (watchdog stall).
  void ForceTrip();

  State state() const;
  std::size_t trip_count() const;

  static const char* StateName(State state);

 private:
  void TripLocked();

  const CircuitBreakerOptions options_;
  const ClockFn clock_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  std::size_t consecutive_failures_ = 0;
  std::size_t probe_successes_ = 0;
  bool probe_in_flight_ = false;
  double opened_at_ms_ = 0.0;
  std::size_t trip_count_ = 0;
};

}  // namespace condensa::runtime

#endif  // CONDENSA_RUNTIME_CIRCUIT_BREAKER_H_
