#include "runtime/circuit_breaker.h"

#include <chrono>
#include <utility>

#include "common/check.h"

namespace condensa::runtime {
namespace {

double SteadyNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options, ClockFn clock)
    : options_(options), clock_(clock ? std::move(clock) : SteadyNowMs) {
  CONDENSA_CHECK_GE(options_.failure_threshold, 1u);
  CONDENSA_CHECK_GE(options_.probe_successes_to_close, 1u);
}

bool CircuitBreaker::AllowRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (clock_() - opened_at_ms_ < options_.open_duration_ms) {
        return false;
      }
      state_ = State::kHalfOpen;
      probe_successes_ = 0;
      probe_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      if (probe_in_flight_) {
        return false;
      }
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    probe_in_flight_ = false;
    if (++probe_successes_ >= options_.probe_successes_to_close) {
      state_ = State::kClosed;
    }
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    probe_in_flight_ = false;
    TripLocked();
    return;
  }
  if (state_ == State::kClosed &&
      ++consecutive_failures_ >= options_.failure_threshold) {
    TripLocked();
  }
}

void CircuitBreaker::ForceTrip() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != State::kOpen) {
    TripLocked();
  } else {
    // Already open: restart the cooldown (the stall is ongoing).
    opened_at_ms_ = clock_();
  }
}

void CircuitBreaker::TripLocked() {
  state_ = State::kOpen;
  opened_at_ms_ = clock_();
  consecutive_failures_ = 0;
  probe_successes_ = 0;
  probe_in_flight_ = false;
  ++trip_count_;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::size_t CircuitBreaker::trip_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trip_count_;
}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace condensa::runtime
