#include "runtime/pipeline.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace condensa::runtime {
namespace {

double SteadyNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendDouble(std::string& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

// One spool entry: "s v0 ... vd-1 .\n" — the journal's line discipline
// (trailing "." marks a complete record) so torn tails are detectable.
std::string SpoolLine(const linalg::Vector& record) {
  std::string line(1, 's');
  for (std::size_t j = 0; j < record.dim(); ++j) {
    line += ' ';
    AppendDouble(line, record[j]);
  }
  line += " .\n";
  return line;
}

bool ParseSpoolLine(const std::string& line, std::size_t dim,
                    linalg::Vector* record) {
  std::istringstream stream(line);
  std::string token;
  if (!(stream >> token) || token != "s") {
    return false;
  }
  for (std::size_t j = 0; j < dim; ++j) {
    if (!(stream >> token) || !ParseDouble(token, &(*record)[j])) {
      return false;
    }
  }
  return (stream >> token) && token == "." && !(stream >> token);
}

struct RuntimeMetrics {
  obs::Counter& submitted;
  obs::Counter& accepted;
  obs::Counter& applied;
  obs::Counter& rejected;
  obs::Counter& dropped;
  obs::Counter& retries;
  obs::Counter& spooled;
  obs::Counter& spool_replayed;
  obs::Counter& breaker_trips;
  obs::Counter& watchdog_stalls;
  obs::Counter& condenser_reopens;
  obs::Counter* quarantined[kQuarantineReasonCount];
  obs::Gauge& queue_depth;
  obs::Gauge& queue_high_water;
  obs::Gauge& degraded;
  obs::Histogram& batch_seconds;

  static RuntimeMetrics& Get() {
    static RuntimeMetrics* metrics = new RuntimeMetrics();
    return *metrics;
  }

 private:
  RuntimeMetrics()
      : submitted(obs::DefaultRegistry().GetCounter(
            "condensa_runtime_submitted_total")),
        accepted(obs::DefaultRegistry().GetCounter(
            "condensa_runtime_accepted_total")),
        applied(obs::DefaultRegistry().GetCounter(
            "condensa_runtime_applied_total")),
        rejected(obs::DefaultRegistry().GetCounter(
            "condensa_runtime_rejected_total")),
        dropped(obs::DefaultRegistry().GetCounter(
            "condensa_runtime_dropped_total")),
        retries(obs::DefaultRegistry().GetCounter(
            "condensa_runtime_retries_total")),
        spooled(obs::DefaultRegistry().GetCounter(
            "condensa_runtime_spooled_total")),
        spool_replayed(obs::DefaultRegistry().GetCounter(
            "condensa_runtime_spool_replayed_total")),
        breaker_trips(obs::DefaultRegistry().GetCounter(
            "condensa_runtime_breaker_trips_total")),
        watchdog_stalls(obs::DefaultRegistry().GetCounter(
            "condensa_runtime_watchdog_stalls_total")),
        condenser_reopens(obs::DefaultRegistry().GetCounter(
            "condensa_runtime_condenser_reopens_total")),
        queue_depth(
            obs::DefaultRegistry().GetGauge("condensa_runtime_queue_depth")),
        queue_high_water(obs::DefaultRegistry().GetGauge(
            "condensa_runtime_queue_high_water")),
        degraded(obs::DefaultRegistry().GetGauge("condensa_runtime_degraded")),
        batch_seconds(obs::DefaultRegistry().GetHistogram(
            "condensa_runtime_batch_seconds")) {
    for (std::size_t i = 0; i < kQuarantineReasonCount; ++i) {
      quarantined[i] = &obs::DefaultRegistry().GetCounter(
          "condensa_runtime_quarantined_total",
          {{"reason",
            QuarantineReasonName(static_cast<QuarantineReason>(i))}});
    }
  }
};

}  // namespace

Status StreamPipelineConfig::Validate() const {
  if (dim < 1) {
    return InvalidArgumentError("dim must be >= 1");
  }
  if (group_size < 2) {
    return InvalidArgumentError(
        "group_size (k) must be >= 2: a stream served with k = 1 releases "
        "every record as its own group, i.e. no indistinguishability");
  }
  if (checkpoint_dir.empty()) {
    return InvalidArgumentError("checkpoint_dir is required");
  }
  if (backend.empty()) {
    return InvalidArgumentError("backend id must be non-empty");
  }
  if (snapshot_interval < 1) {
    return InvalidArgumentError("snapshot_interval must be >= 1");
  }
  if (queue_capacity < 1) {
    return InvalidArgumentError("queue_capacity must be >= 1");
  }
  if (batch_size < 1) {
    return InvalidArgumentError("batch_size must be >= 1");
  }
  if (!(batch_deadline_ms > 0.0)) {
    return InvalidArgumentError("batch_deadline_ms must be > 0");
  }
  if (!(watchdog_poll_ms > 0.0)) {
    return InvalidArgumentError("watchdog_poll_ms must be > 0");
  }
  if (retry.max_attempts < 1) {
    return InvalidArgumentError("retry.max_attempts must be >= 1");
  }
  if (retry.backoff_multiplier < 1.0) {
    return InvalidArgumentError("retry.backoff_multiplier must be >= 1");
  }
  if (retry.initial_backoff_ms < 0.0 ||
      retry.max_backoff_ms < retry.initial_backoff_ms) {
    return InvalidArgumentError(
        "retry backoff must satisfy 0 <= initial_backoff_ms <= "
        "max_backoff_ms");
  }
  if (retry.jitter_fraction < 0.0 || retry.jitter_fraction > 1.0) {
    return InvalidArgumentError("retry.jitter_fraction must be in [0, 1]");
  }
  if (breaker.failure_threshold < 1) {
    return InvalidArgumentError("breaker.failure_threshold must be >= 1");
  }
  if (!(breaker.open_duration_ms > 0.0)) {
    return InvalidArgumentError("breaker.open_duration_ms must be > 0");
  }
  if (breaker.probe_successes_to_close < 1) {
    return InvalidArgumentError(
        "breaker.probe_successes_to_close must be >= 1");
  }
  if (finish_drain_deadline_ms < 0.0) {
    return InvalidArgumentError("finish_drain_deadline_ms must be >= 0");
  }
  return OkStatus();
}

std::string StreamPipelineStats::ToString() const {
  std::ostringstream out;
  out << "submitted " << submitted << ", accepted " << accepted
      << ", applied " << applied << ", quarantined " << quarantined
      << " (dimension " << quarantined_dimension << ", non-finite "
      << quarantined_non_finite << ", failure " << quarantined_failure
      << "), rejected " << rejected << ", dropped " << dropped << ", spooled "
      << spooled << " (replayed " << spool_replayed << ", recovered "
      << spool_recovered << ", remaining " << spool_remaining << ")"
      << ", retries " << retries << ", breaker trips " << breaker_trips
      << ", watchdog stalls " << watchdog_stalls << ", condenser reopens "
      << condenser_reopens << ", queue high water " << queue_high_water;
  if (quarantine_write_failures > 0 || spool_write_failures > 0) {
    out << ", WRITE FAILURES (quarantine " << quarantine_write_failures
        << ", spool " << spool_write_failures << ")";
  }
  out << ", ledger " << (Balanced() ? "balanced" : "UNBALANCED");
  return out.str();
}

StreamPipeline::StreamPipeline(StreamPipelineConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_capacity, config_.backpressure),
      breaker_(config_.breaker),
      budget_(config_.retry_budget),
      rng_(config_.seed) {}

StatusOr<std::unique_ptr<StreamPipeline>> StreamPipeline::Start(
    StreamPipelineConfig config) {
  CONDENSA_RETURN_IF_ERROR(config.Validate());
  if (config.quarantine_path.empty()) {
    config.quarantine_path = config.checkpoint_dir + "/quarantine.log";
  }
  if (config.spool_path.empty()) {
    config.spool_path = config.checkpoint_dir + "/spool.log";
  }
  CONDENSA_RETURN_IF_ERROR(CreateDirectories(config.checkpoint_dir));

  std::unique_ptr<StreamPipeline> pipeline(
      new StreamPipeline(std::move(config)));
  const StreamPipelineConfig& cfg = pipeline->config_;

  core::DynamicCondenserOptions options;
  options.group_size = cfg.group_size;
  options.split_rule = cfg.split_rule;
  options.backend = cfg.backend;
  options.backend_version = cfg.backend_version;
  core::DurabilityOptions durability;
  durability.snapshot_interval = cfg.snapshot_interval;
  durability.sync_every_append = cfg.sync_every_append;
  CONDENSA_ASSIGN_OR_RETURN(
      core::DurableCondenser durable,
      core::DurableCondenser::Open(cfg.dim, options, durability,
                                   cfg.checkpoint_dir));
  pipeline->durable_.emplace(std::move(durable));

  CONDENSA_ASSIGN_OR_RETURN(
      QuarantineWriter quarantine,
      QuarantineWriter::Open(cfg.quarantine_path, cfg.dim));
  pipeline->quarantine_.emplace(std::move(quarantine));

  // A non-empty spool is the backlog of a previous run that crashed (or
  // hit its Finish drain deadline) while degraded: reload it so those
  // acknowledged records eventually reach the condenser.
  std::size_t valid_bytes = 0;
  bool torn_tail = false;
  if (PathExists(cfg.spool_path)) {
    CONDENSA_ASSIGN_OR_RETURN(std::string content,
                              ReadFileToString(cfg.spool_path));
    std::size_t pos = 0;
    while (pos < content.size()) {
      const std::size_t newline = content.find('\n', pos);
      if (newline == std::string::npos) {
        break;
      }
      linalg::Vector record(cfg.dim);
      if (!ParseSpoolLine(content.substr(pos, newline - pos), cfg.dim,
                          &record)) {
        break;
      }
      pipeline->spool_.push_back(std::move(record));
      pos = newline + 1;
      valid_bytes = pos;
    }
    torn_tail = valid_bytes != content.size();
    pipeline->spool_recovered_ = pipeline->spool_.size();
    pipeline->spool_pending_ = pipeline->spool_.size();
  }
  CONDENSA_ASSIGN_OR_RETURN(AppendFile spool_file,
                            AppendFile::Open(cfg.spool_path));
  pipeline->spool_file_ = std::move(spool_file);
  if (torn_tail) {
    // A crash mid-append left a partial line; cut back to the last whole
    // record so new appends start on a line boundary.
    CONDENSA_RETURN_IF_ERROR(pipeline->spool_file_.Truncate(valid_bytes));
  }

  pipeline->worker_ = std::thread(&StreamPipeline::WorkerLoop, pipeline.get());
  pipeline->watchdog_ =
      std::thread(&StreamPipeline::WatchdogLoop, pipeline.get());
  return pipeline;
}

StreamPipeline::~StreamPipeline() {
  queue_.Close();
  shutdown_.store(true, std::memory_order_relaxed);
  if (worker_.joinable()) {
    worker_.join();
  }
  if (watchdog_.joinable()) {
    watchdog_.join();
  }
}

Status StreamPipeline::Submit(const linalg::Vector& record) {
  RuntimeMetrics& metrics = RuntimeMetrics::Get();
  if (finished_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("pipeline is finished");
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  metrics.submitted.Increment();
  if (record.dim() != config_.dim) {
    QuarantineRecord(record, QuarantineReason::kDimensionMismatch,
                     "expected dim " + std::to_string(config_.dim) +
                         ", got " + std::to_string(record.dim()));
    return OkStatus();
  }
  for (std::size_t j = 0; j < record.dim(); ++j) {
    if (!std::isfinite(record[j])) {
      QuarantineRecord(record, QuarantineReason::kNonFinite,
                       "attribute " + std::to_string(j) + " is not finite");
      return OkStatus();
    }
  }
  BoundedQueue<linalg::Vector>::PushResult result = queue_.Push(record);
  if (!result.status.ok()) {
    if (IsResourceExhausted(result.status)) {
      metrics.rejected.Increment();
    }
    return result.status;
  }
  if (result.evicted.has_value()) {
    metrics.dropped.Increment();
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  metrics.accepted.Increment();
  metrics.queue_depth.Set(static_cast<double>(queue_.size()));
  return OkStatus();
}

void StreamPipeline::QuarantineRecord(const linalg::Vector& record,
                                      QuarantineReason reason,
                                      const std::string& detail) {
  // The quarantine is the pipeline's last resort, so its own writes retry
  // harder than regular I/O: unbudgeted, and with extra attempts — losing
  // the quarantine trail to the same chaos that poisoned the record would
  // defeat its purpose. rng_ belongs to the worker thread and this runs on
  // producers too, so jitter comes from a per-call salted stream.
  RetryPolicy policy = config_.retry;
  policy.max_attempts = policy.max_attempts * 2 + 4;
  Rng jitter(config_.seed ^
             (0x9E3779B97F4A7C15ull +
              quarantine_rng_salt_.fetch_add(1, std::memory_order_relaxed)));
  Status status = RetryWithBackoff(
      policy, nullptr, jitter,
      [&] { return quarantine_->Write(record, reason, detail); });
  if (!status.ok()) {
    quarantine_write_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  quarantined_count_[static_cast<std::size_t>(reason)].fetch_add(
      1, std::memory_order_relaxed);
  RuntimeMetrics::Get()
      .quarantined[static_cast<std::size_t>(reason)]
      ->Increment();
}

Status StreamPipeline::ReopenDurable() {
  core::DynamicCondenserOptions options;
  options.group_size = config_.group_size;
  options.split_rule = config_.split_rule;
  options.backend = config_.backend;
  options.backend_version = config_.backend_version;
  core::DurabilityOptions durability;
  durability.snapshot_interval = config_.snapshot_interval;
  durability.sync_every_append = config_.sync_every_append;
  StatusOr<core::DurableCondenser> recovered =
      core::DurableCondenser::Recover(config_.checkpoint_dir, options,
                                      durability);
  if (!recovered.ok()) {
    return recovered.status();
  }
  durable_.emplace(std::move(recovered).value());
  condenser_reopens_.fetch_add(1, std::memory_order_relaxed);
  RuntimeMetrics::Get().condenser_reopens.Increment();
  return OkStatus();
}

Status StreamPipeline::ApplyRecord(const linalg::Vector& record) {
  std::size_t retries = 0;
  Status status = RetryWithBackoff(
      config_.retry, &budget_, rng_,
      [&]() -> Status {
        if (!durable_.has_value()) {
          CONDENSA_RETURN_IF_ERROR(ReopenDurable());
        }
        Status applied = durable_->Insert(record);
        if (IsFailedPrecondition(applied)) {
          // The instance poisoned itself (post-apply-failure rebuild
          // failed): memory and disk may disagree, so rebuild from disk
          // and give this attempt one more try.
          durable_.reset();
          CONDENSA_RETURN_IF_ERROR(ReopenDurable());
          applied = durable_->Insert(record);
        }
        return applied;
      },
      nullptr, &retries);
  if (retries > 0) {
    retries_.fetch_add(retries, std::memory_order_relaxed);
    RuntimeMetrics::Get().retries.Increment(retries);
  }
  return status;
}

void StreamPipeline::SpoolRecord(const linalg::Vector& record) {
  RuntimeMetrics& metrics = RuntimeMetrics::Get();
  const std::string line = SpoolLine(record);
  // Unbudgeted like the quarantine: the spool is what keeps degraded mode
  // lossless, so it must not be starved by a spent retry budget.
  Status status = RetryWithBackoff(config_.retry, nullptr, rng_, [&] {
    CONDENSA_RETURN_IF_ERROR(spool_file_.Append(line));
    return spool_file_.Sync();
  });
  if (!status.ok()) {
    // The in-memory copy below still feeds the ledger and the eventual
    // replay; what is lost is this record's crash durability.
    spool_write_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  spool_.push_back(record);
  spool_pending_.fetch_add(1, std::memory_order_relaxed);
  spooled_.fetch_add(1, std::memory_order_relaxed);
  metrics.spooled.Increment();
}

void StreamPipeline::MaybeDrainSpool() {
  if (spool_.empty()) {
    return;
  }
  RuntimeMetrics& metrics = RuntimeMetrics::Get();
  while (!spool_.empty()) {
    if (!breaker_.AllowRequest()) {
      return;
    }
    const linalg::Vector& record = spool_.front();
    Status status = ApplyRecord(record);
    if (status.ok()) {
      breaker_.RecordSuccess();
      spool_.pop_front();
      spool_pending_.fetch_sub(1, std::memory_order_relaxed);
      applied_.fetch_add(1, std::memory_order_relaxed);
      spool_replayed_.fetch_add(1, std::memory_order_relaxed);
      metrics.applied.Increment();
      metrics.spool_replayed.Increment();
      continue;
    }
    if (IsRetryable(status)) {
      breaker_.RecordFailure();
      return;
    }
    // Poison in the spool (e.g. a backlog recovered from an older run):
    // quarantine it instead of blocking the drain forever. The condenser
    // answered deterministically, so the probe counts as a success.
    breaker_.RecordSuccess();
    QuarantineRecord(record, QuarantineReason::kRepeatedFailure,
                     status.ToString());
    spool_.pop_front();
    spool_pending_.fetch_sub(1, std::memory_order_relaxed);
  }
  // Fully drained: reset the durable mirror. Best effort — a failed
  // truncate only means a crash right now would replay already-applied
  // records (spool replay is at-least-once across crashes).
  Status truncated = spool_file_.Truncate(0);
  (void)truncated;
}

void StreamPipeline::ProcessRecord(const linalg::Vector& record) {
  RuntimeMetrics& metrics = RuntimeMetrics::Get();
  if (deadline_exceeded_.load(std::memory_order_relaxed) ||
      !breaker_.AllowRequest()) {
    // Degraded (or mid-stall): buffer durably, condense later.
    SpoolRecord(record);
    return;
  }
  Status status = ApplyRecord(record);
  if (status.ok()) {
    breaker_.RecordSuccess();
    applied_.fetch_add(1, std::memory_order_relaxed);
    metrics.applied.Increment();
    return;
  }
  if (IsRetryable(status)) {
    // Transient failure that outlived its retries: an environment
    // problem, not the record's fault — keep the record (spool) and let
    // the breaker decide whether to degrade.
    breaker_.RecordFailure();
    SpoolRecord(record);
    return;
  }
  // Deterministic rejection: the condenser is healthy, the record is not.
  // Close out the admitted request as a success so a half-open probe does
  // not re-trip on poison, and divert the record.
  breaker_.RecordSuccess();
  QuarantineRecord(record, QuarantineReason::kRepeatedFailure,
                   status.ToString());
}

void StreamPipeline::PublishGauges() {
  RuntimeMetrics& metrics = RuntimeMetrics::Get();
  metrics.queue_depth.Set(static_cast<double>(queue_.size()));
  metrics.queue_high_water.Set(static_cast<double>(queue_.high_water()));
  metrics.degraded.Set(
      breaker_.state() == CircuitBreaker::State::kClosed ? 0.0 : 1.0);
  const std::size_t trips = breaker_.trip_count();
  if (trips > published_trips_) {
    metrics.breaker_trips.Increment(trips - published_trips_);
    published_trips_ = trips;
  }
}

void StreamPipeline::WorkerLoop() {
  RuntimeMetrics& metrics = RuntimeMetrics::Get();
  std::vector<linalg::Vector> batch;
  while (true) {
    batch.clear();
    const std::size_t popped = queue_.PopBatch(&batch, config_.batch_size,
                                               std::chrono::milliseconds(50));
    if (popped == 0) {
      if (queue_.closed() && queue_.size() == 0) {
        break;
      }
      // Idle tick: use it as a health probe / spool drain opportunity.
      MaybeDrainSpool();
      PublishGauges();
      continue;
    }
    const double start_ms = SteadyNowMs();
    deadline_exceeded_.store(false, std::memory_order_relaxed);
    batch_start_ms_.store(start_ms, std::memory_order_relaxed);
    in_batch_.store(true, std::memory_order_release);
    for (const linalg::Vector& record : batch) {
      ProcessRecord(record);
    }
    in_batch_.store(false, std::memory_order_release);
    drained_.fetch_add(popped, std::memory_order_release);
    metrics.batch_seconds.Observe((SteadyNowMs() - start_ms) / 1000.0);
    MaybeDrainSpool();
    PublishGauges();
    // durable_ can be transiently absent after a failed ReopenDurable;
    // the observer simply misses that beat.
    if (config_.group_observer && durable_.has_value()) {
      config_.group_observer(durable_->groups(), durable_->records_seen());
    }
  }
  PublishGauges();
}

void StreamPipeline::WatchdogLoop() {
  const auto poll =
      std::chrono::duration<double, std::milli>(config_.watchdog_poll_ms);
  while (!shutdown_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(poll);
    if (!in_batch_.load(std::memory_order_acquire)) {
      continue;
    }
    const double start = batch_start_ms_.load(std::memory_order_relaxed);
    if (SteadyNowMs() - start <= config_.batch_deadline_ms) {
      continue;
    }
    // One trip per stalled batch: the flag makes the worker spool the
    // rest of the batch instead of pushing more records into whatever is
    // stalling, and the breaker keeps new work out until probes pass.
    if (!deadline_exceeded_.exchange(true, std::memory_order_relaxed)) {
      watchdog_stalls_.fetch_add(1, std::memory_order_relaxed);
      RuntimeMetrics::Get().watchdog_stalls.Increment();
      breaker_.ForceTrip();
    }
  }
}

Status StreamPipeline::Flush(double timeout_ms) {
  const double deadline = SteadyNowMs() + timeout_ms;
  while (true) {
    // A record accepted into the queue either gets popped and processed
    // (drained_) or evicted by a producer under kDropOldest (dropped);
    // both are terminal custody states, so the barrier is their sum
    // catching up with accepted_. Comparing counters instead of probing
    // queue-empty + !in_batch_ avoids the window between PopBatch
    // emptying the queue and the worker raising in_batch_.
    const std::size_t accepted = accepted_.load(std::memory_order_acquire);
    const std::size_t settled = drained_.load(std::memory_order_acquire) +
                                queue_.dropped();
    if (settled >= accepted) {
      return OkStatus();
    }
    if (finished_.load(std::memory_order_acquire)) {
      return FailedPreconditionError("Flush after Finish");
    }
    if (SteadyNowMs() >= deadline) {
      return UnavailableError(
          "Flush timed out with " + std::to_string(accepted - settled) +
          " records still in flight after " + std::to_string(timeout_ms) +
          " ms");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

StatusOr<StreamPipelineStats> StreamPipeline::Finish() {
  if (finished_.exchange(true, std::memory_order_acq_rel)) {
    return FailedPreconditionError("Finish was already called");
  }
  queue_.Close();
  if (worker_.joinable()) {
    worker_.join();
  }
  shutdown_.store(true, std::memory_order_relaxed);
  if (watchdog_.joinable()) {
    watchdog_.join();
  }

  // Final drain, bounded by the configured deadline: the breaker may be
  // cooling down, so poll rather than give up on the first refusal.
  // Whatever cannot be drained stays durably in the spool file for the
  // next run to recover.
  const double deadline = SteadyNowMs() + config_.finish_drain_deadline_ms;
  while (!spool_.empty()) {
    MaybeDrainSpool();
    if (spool_.empty() || SteadyNowMs() >= deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Final checkpoint: one snapshot generation holding every applied
  // record, so restart does not need the journal.
  Status checkpoint = OkStatus();
  if (durable_.has_value()) {
    std::size_t retries = 0;
    checkpoint = RetryWithBackoff(
        config_.retry, nullptr, rng_, [&] { return durable_->Checkpoint(); },
        nullptr, &retries);
    if (retries > 0) {
      retries_.fetch_add(retries, std::memory_order_relaxed);
      RuntimeMetrics::Get().retries.Increment(retries);
    }
  }
  PublishGauges();
  CONDENSA_RETURN_IF_ERROR(checkpoint);
  return stats();
}

StreamPipelineStats StreamPipeline::stats() const {
  StreamPipelineStats out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.rejected = queue_.rejected();
  out.dropped = queue_.dropped();
  out.applied = applied_.load(std::memory_order_relaxed);
  out.quarantined_dimension =
      quarantined_count_[static_cast<std::size_t>(
                             QuarantineReason::kDimensionMismatch)]
          .load(std::memory_order_relaxed);
  out.quarantined_non_finite =
      quarantined_count_[static_cast<std::size_t>(QuarantineReason::kNonFinite)]
          .load(std::memory_order_relaxed);
  out.quarantined_failure =
      quarantined_count_[static_cast<std::size_t>(
                             QuarantineReason::kRepeatedFailure)]
          .load(std::memory_order_relaxed);
  out.quarantined = out.quarantined_dimension + out.quarantined_non_finite +
                    out.quarantined_failure;
  out.spooled = spooled_.load(std::memory_order_relaxed);
  out.spool_replayed = spool_replayed_.load(std::memory_order_relaxed);
  out.spool_remaining = spool_pending_.load(std::memory_order_relaxed);
  out.spool_recovered = spool_recovered_.load(std::memory_order_relaxed);
  out.retries = retries_.load(std::memory_order_relaxed);
  out.breaker_trips = breaker_.trip_count();
  out.watchdog_stalls = watchdog_stalls_.load(std::memory_order_relaxed);
  out.condenser_reopens = condenser_reopens_.load(std::memory_order_relaxed);
  out.queue_high_water = queue_.high_water();
  out.quarantine_write_failures =
      quarantine_write_failures_.load(std::memory_order_relaxed);
  out.spool_write_failures =
      spool_write_failures_.load(std::memory_order_relaxed);
  return out;
}

const core::CondensedGroupSet& StreamPipeline::groups() const {
  CONDENSA_CHECK(durable_.has_value());
  return durable_->groups();
}

StatusOr<core::CondensedGroupSet> StreamPipeline::TakeGroups() {
  if (!finished_.load(std::memory_order_acquire)) {
    return FailedPreconditionError(
        "TakeGroups requires Finish() first: the worker still owns the "
        "condenser");
  }
  CONDENSA_CHECK(durable_.has_value());
  return durable_->TakeGroups();
}

std::size_t StreamPipeline::records_seen() const {
  CONDENSA_CHECK(durable_.has_value());
  return durable_->records_seen();
}

}  // namespace condensa::runtime
