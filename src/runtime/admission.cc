#include "runtime/admission.h"

namespace condensa::runtime {

std::optional<AdmissionGate::Ticket> AdmissionGate::TryEnter() {
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ >= capacity_) {
    ++rejected_;
    return std::nullopt;
  }
  ++inflight_;
  if (inflight_ > high_water_) {
    high_water_ = inflight_;
  }
  return Ticket(this);
}

void AdmissionGate::Exit() {
  std::lock_guard<std::mutex> lock(mu_);
  CONDENSA_CHECK_GE(inflight_, 1u);
  --inflight_;
}

std::size_t AdmissionGate::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

std::size_t AdmissionGate::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

std::uint64_t AdmissionGate::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

}  // namespace condensa::runtime
