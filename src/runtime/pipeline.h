// Supervised streaming ingest runtime.
//
// The paper's dynamic regime (DynamicGroupMaintenance) assumes records
// arrive one at a time forever — which in production means the ingest
// path must survive everything a long-running collector sees: malformed
// tuples, flaky disks, stalled fsyncs, slow eigendecompositions. A bare
// DurableCondenser loop dies (or wedges) on the first of those.
// StreamPipeline wraps it in the supervision machinery:
//
//   producers ──► BoundedQueue (backpressure) ──► worker thread
//                                                   │ validate → quarantine
//                                                   │ apply w/ retry+backoff
//                                                   │ breaker open → spool
//                                                   ▼
//                                          DurableCondenser (journal+snapshot)
//                     watchdog thread ── batch deadline → trip breaker
//
//   * Bounded MPSC queue: queue memory is capped; a producer hitting the
//     cap blocks, sheds load, or evicts the oldest record per the
//     configured BackpressurePolicy. Evictions/rejections are counted.
//   * Poison quarantine: records failing validation (dimension, NaN/Inf)
//     or failing the condenser deterministically are appended to a
//     quarantine file with a reason code; the stream keeps flowing.
//   * Retry with exponential backoff + jitter around checkpoint/journal
//     I/O, bounded by a run-wide RetryBudget.
//   * Circuit breaker + graceful degradation: repeated transient failures
//     (or a watchdog-detected stall) flip the pipeline into
//     buffer-and-checkpoint-only mode — records are appended durably to a
//     spool file instead of being condensed — and health probes drain the
//     spool back through the condenser once the fault clears.
//   * Watchdog: a supervisor thread enforces a per-batch wall-clock
//     deadline; a stalled batch trips the breaker so the rest of the
//     batch degrades to the spool instead of wedging the queue.
//
// Accounting invariant (asserted by the chaos soak test): every record
// Submit() accepted is, by Finish(), exactly one of applied | quarantined
// | dropped-by-policy | still-in-spool. Nothing is silently lost.
//
// All health signals are exported through obs::DefaultRegistry() under
// condensa_runtime_* (see docs/resilience.md).

#ifndef CONDENSA_RUNTIME_PIPELINE_H_
#define CONDENSA_RUNTIME_PIPELINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/checkpointing.h"
#include "core/split.h"
#include "linalg/vector.h"
#include "runtime/bounded_queue.h"
#include "runtime/circuit_breaker.h"
#include "runtime/quarantine.h"
#include "runtime/retry.h"

namespace condensa::runtime {

struct StreamPipelineConfig {
  // Record dimension. Must be >= 1.
  std::size_t dim = 0;
  // Indistinguishability level k. Must be >= 2 — a runtime serving real
  // traffic with k = 1 releases every record as its own group, i.e. no
  // privacy at all (the k = 1 identity setting exists only for offline
  // ablations through CondensationEngine).
  std::size_t group_size = 10;
  core::SplitRule split_rule = core::SplitRule::kMomentConsistent;

  // Anonymization backend identity the stream maintains its structure
  // under (docs/backends.md). Stamped into every checkpoint; recovery
  // refuses checkpoints written under a different backend. The stream
  // path itself is backend-independent (pure nearest-centroid
  // maintenance, no bootstrap), so no hook is needed here.
  std::string backend = core::CondensedGroupSet::kDefaultBackendId;
  int backend_version = 1;

  // Durability: where snapshots/journals live (required), how often to
  // snapshot (>= 1), whether to fsync every journal append.
  std::string checkpoint_dir;
  std::size_t snapshot_interval = 256;
  bool sync_every_append = true;

  // Queue: capacity bound (>= 1) and what happens at the bound.
  std::size_t queue_capacity = 1024;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;

  // Worker: records per batch (>= 1) and the watchdog-enforced wall-clock
  // deadline per batch.
  std::size_t batch_size = 32;
  double batch_deadline_ms = 1000.0;
  double watchdog_poll_ms = 20.0;

  // Retry schedule for transient condenser/checkpoint failures, plus the
  // run-wide cap on total retries.
  RetryPolicy retry;
  std::size_t retry_budget = 10000;

  CircuitBreakerOptions breaker;

  // How long Finish() keeps trying to drain the degraded-mode spool
  // before leaving the remainder durably on disk.
  double finish_drain_deadline_ms = 5000.0;

  // Defaults: <checkpoint_dir>/quarantine.log, <checkpoint_dir>/spool.log.
  std::string quarantine_path;
  std::string spool_path;

  // Seeds retry jitter.
  std::uint64_t seed = 42;

  // Read-side hook: when set, the worker thread calls this after every
  // completed batch with the condenser's current group set and total
  // records seen. The reference is only valid during the call — the
  // observer copies what it wants to keep (typically into a
  // query::SnapshotStore so a QueryServer can answer against a stable
  // snapshot while ingest keeps mutating the live structure underneath).
  // Runs on the worker thread: keep it cheap, never block on the
  // pipeline's own API from inside it.
  std::function<void(const core::CondensedGroupSet& groups,
                     std::size_t records_seen)>
      group_observer;

  // Full construction-time validation; Start() refuses invalid configs
  // with the returned Status instead of misbehaving later.
  Status Validate() const;
};

struct StreamPipelineStats {
  std::size_t submitted = 0;
  // Records taken into custody (queued).
  std::size_t accepted = 0;
  // Push refusals under kReject.
  std::size_t rejected = 0;
  // Evictions under kDropOldest (policy-sanctioned, counted loss).
  std::size_t dropped = 0;
  // Records applied to the durable condenser (includes spool replays).
  std::size_t applied = 0;
  // Quarantine entries, total and by reason.
  std::size_t quarantined = 0;
  std::size_t quarantined_dimension = 0;
  std::size_t quarantined_non_finite = 0;
  std::size_t quarantined_failure = 0;
  // Records diverted to the degraded-mode spool, how many of those were
  // replayed into the condenser, and how many remain spooled (durable on
  // disk) at Finish.
  std::size_t spooled = 0;
  std::size_t spool_replayed = 0;
  std::size_t spool_remaining = 0;
  // Spool records inherited from a previous crashed run.
  std::size_t spool_recovered = 0;
  std::size_t retries = 0;
  std::size_t breaker_trips = 0;
  std::size_t watchdog_stalls = 0;
  // Times the durable condenser was rebuilt via Recover after poisoning.
  std::size_t condenser_reopens = 0;
  std::size_t queue_high_water = 0;
  // Writes to the quarantine/spool files that failed even after retrying.
  // The records are still accounted (in-memory ledger) but their durable
  // trail is incomplete — nonzero values mean the disk is truly gone.
  std::size_t quarantine_write_failures = 0;
  std::size_t spool_write_failures = 0;

  // The zero-silent-loss ledger: accepted (+ recovered spool backlog)
  // must equal applied + worker-quarantined + dropped + spool_remaining.
  bool Balanced() const {
    return accepted + spool_recovered ==
           applied + quarantined_failure + dropped + spool_remaining;
  }

  std::string ToString() const;
};

class StreamPipeline {
 public:
  // Validates `config`, opens (or recovers) the durable condenser and the
  // quarantine/spool files, preloads any spool backlog left by a crashed
  // run, and starts the worker + watchdog threads.
  static StatusOr<std::unique_ptr<StreamPipeline>> Start(
      StreamPipelineConfig config);

  StreamPipeline(const StreamPipeline&) = delete;
  StreamPipeline& operator=(const StreamPipeline&) = delete;

  // Joins the threads (drains nothing beyond what Finish already did).
  ~StreamPipeline();

  // Producer API; safe from any number of threads. A record failing
  // validation is quarantined and Submit still returns OK — the record's
  // fate is recorded, the stream continues (that is the point of the
  // quarantine). Non-OK returns: kFailedPrecondition after Finish/Close,
  // kResourceExhausted under the kReject policy.
  Status Submit(const linalg::Vector& record);

  // Blocks until every record accepted so far has been processed by the
  // worker thread — applied to the durable condenser, quarantined, or
  // spooled — or `timeout_ms` elapses (kUnavailable). The pipeline keeps
  // running; Submit stays legal afterwards. This is the custody barrier
  // the networked shard fabric acks behind: once Flush returns OK, a
  // kill -9 loses nothing, because each record's durable trail (journal,
  // quarantine log, or spool) was already written. Call from a producer
  // that has stopped submitting; records submitted concurrently extend
  // the wait.
  Status Flush(double timeout_ms);

  // Closes intake, drains the queue and (deadline-bounded) the spool,
  // writes a final checkpoint, joins the threads, and returns the final
  // ledger. Callable once.
  StatusOr<StreamPipelineStats> Finish();

  // Live counters (also exported via obs metrics).
  StreamPipelineStats stats() const;

  CircuitBreaker::State breaker_state() const { return breaker_.state(); }

  // The condensed structure; stable only after Finish(). A pure stream
  // shorter than k records lives entirely in the condenser's forming
  // buffer and is NOT visible here — use TakeGroups for an accounting-
  // complete view.
  const core::CondensedGroupSet& groups() const;
  std::size_t records_seen() const;

  // Finalizes and extracts the condensed structure, folding any forming
  // remainder in (or emitting it as one sub-k group when nothing else
  // exists) so every applied record is represented — what the scatter/
  // gather coordinator consumes (see shard/coordinator.h). Only legal
  // after Finish(); the in-memory condenser is left empty, while the
  // on-disk checkpoint keeps the pre-take state for the next run.
  StatusOr<core::CondensedGroupSet> TakeGroups();

  const StreamPipelineConfig& config() const { return config_; }

 private:
  explicit StreamPipeline(StreamPipelineConfig config);

  void WorkerLoop();
  void WatchdogLoop();
  // One record through validate → breaker → retry → quarantine/spool.
  void ProcessRecord(const linalg::Vector& record);
  // Applies through the durable condenser with retry/backoff, rebuilding
  // a poisoned condenser via Recover.
  Status ApplyRecord(const linalg::Vector& record);
  Status ReopenDurable();
  // Durable append to the degraded-mode spool (memory fallback on error).
  void SpoolRecord(const linalg::Vector& record);
  // Replays spooled records while the breaker admits requests.
  void MaybeDrainSpool();
  void QuarantineRecord(const linalg::Vector& record,
                        QuarantineReason reason, const std::string& detail);
  void PublishGauges();

  StreamPipelineConfig config_;
  BoundedQueue<linalg::Vector> queue_;
  std::optional<core::DurableCondenser> durable_;
  std::optional<QuarantineWriter> quarantine_;
  AppendFile spool_file_;
  // Degraded-mode backlog, in arrival order; mirrors spool_file_.
  std::deque<linalg::Vector> spool_;
  CircuitBreaker breaker_;
  RetryBudget budget_;
  Rng rng_;  // worker-thread only

  std::thread worker_;
  std::thread watchdog_;

  // Watchdog handshake.
  std::atomic<bool> in_batch_{false};
  std::atomic<double> batch_start_ms_{0.0};
  std::atomic<bool> deadline_exceeded_{false};
  std::atomic<bool> shutdown_{false};

  std::atomic<std::size_t> submitted_{0};
  std::atomic<std::size_t> accepted_{0};
  // Records the worker thread has fully processed (batch completed);
  // Flush waits for drained_ + dropped to catch up with accepted_.
  std::atomic<std::size_t> drained_{0};
  std::atomic<std::size_t> applied_{0};
  std::atomic<std::size_t> spooled_{0};
  std::atomic<std::size_t> spool_replayed_{0};
  std::atomic<std::size_t> spool_recovered_{0};
  // Mirrors spool_.size() for lock-free stats() reads.
  std::atomic<std::size_t> spool_pending_{0};
  std::atomic<std::size_t> retries_{0};
  std::atomic<std::size_t> watchdog_stalls_{0};
  std::atomic<std::size_t> condenser_reopens_{0};
  std::atomic<std::size_t> quarantined_count_[kQuarantineReasonCount] = {};
  std::atomic<std::size_t> quarantine_write_failures_{0};
  std::atomic<std::size_t> spool_write_failures_{0};
  // Salts per-call jitter RNGs on the producer-side quarantine path
  // (rng_ belongs to the worker thread).
  std::atomic<std::uint64_t> quarantine_rng_salt_{0};
  std::atomic<bool> finished_{false};
  // Breaker trips already exported to the metrics counter (worker thread
  // and post-join Finish only).
  std::size_t published_trips_ = 0;
};

}  // namespace condensa::runtime

#endif  // CONDENSA_RUNTIME_PIPELINE_H_
