#include "runtime/quarantine.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "common/string_util.h"

namespace condensa::runtime {
namespace {

constexpr char kMagic[] = "# condensa-quarantine v1";

std::string Sanitize(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') {
      c = ' ';
    }
  }
  return out;
}

bool ParseReason(const std::string& name, QuarantineReason* reason) {
  for (std::size_t i = 0; i < kQuarantineReasonCount; ++i) {
    QuarantineReason candidate = static_cast<QuarantineReason>(i);
    if (name == QuarantineReasonName(candidate)) {
      *reason = candidate;
      return true;
    }
  }
  return false;
}

}  // namespace

const char* QuarantineReasonName(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kDimensionMismatch:
      return "dimension-mismatch";
    case QuarantineReason::kNonFinite:
      return "non-finite";
    case QuarantineReason::kRepeatedFailure:
      return "repeated-failure";
  }
  return "unknown";
}

StatusOr<QuarantineWriter> QuarantineWriter::Open(const std::string& path,
                                                  std::size_t dim) {
  const bool fresh = !PathExists(path);
  CONDENSA_ASSIGN_OR_RETURN(AppendFile file, AppendFile::Open(path));
  QuarantineWriter writer(std::move(file), path);
  if (fresh) {
    std::string header = kMagic;
    header += " dim ";
    header += std::to_string(dim);
    header += '\n';
    CONDENSA_RETURN_IF_ERROR(writer.file_.Append(header));
    CONDENSA_RETURN_IF_ERROR(writer.file_.Sync());
  }
  return writer;
}

Status QuarantineWriter::Write(const linalg::Vector& record,
                               QuarantineReason reason,
                               const std::string& detail) {
  std::string line = QuarantineReasonName(reason);
  line += '\t';
  line += Sanitize(detail);
  line += '\t';
  for (std::size_t j = 0; j < record.dim(); ++j) {
    if (j > 0) line += ',';
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", record[j]);
    line += buffer;
  }
  line += '\n';
  std::lock_guard<std::mutex> lock(*mu_);
  CONDENSA_RETURN_IF_ERROR(file_.Append(line));
  CONDENSA_RETURN_IF_ERROR(file_.Sync());
  ++counts_[static_cast<std::size_t>(reason)];
  return OkStatus();
}

std::size_t QuarantineWriter::count() const {
  std::lock_guard<std::mutex> lock(*mu_);
  std::size_t total = 0;
  for (std::size_t c : counts_) total += c;
  return total;
}

std::size_t QuarantineWriter::count(QuarantineReason reason) const {
  std::lock_guard<std::mutex> lock(*mu_);
  return counts_[static_cast<std::size_t>(reason)];
}

StatusOr<std::vector<QuarantineWriter::Entry>> QuarantineWriter::ReadAll(
    const std::string& path) {
  CONDENSA_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  std::istringstream stream(content);
  std::string line;
  if (!std::getline(stream, line) || !StartsWith(line, kMagic)) {
    return DataLossError(path + " is not a condensa-quarantine v1 file");
  }
  std::vector<Entry> entries;
  std::size_t line_number = 1;
  while (std::getline(stream, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::size_t tab1 = line.find('\t');
    const std::size_t tab2 =
        tab1 == std::string::npos ? std::string::npos
                                  : line.find('\t', tab1 + 1);
    if (tab2 == std::string::npos) {
      return DataLossError(path + ": malformed entry at line " +
                           std::to_string(line_number));
    }
    Entry entry;
    if (!ParseReason(line.substr(0, tab1), &entry.reason)) {
      return DataLossError(path + ": unknown reason at line " +
                           std::to_string(line_number));
    }
    entry.detail = line.substr(tab1 + 1, tab2 - tab1 - 1);
    std::string values = line.substr(tab2 + 1);
    std::istringstream value_stream(values);
    std::string token;
    while (std::getline(value_stream, token, ',')) {
      double value = 0.0;
      if (!ParseDouble(token, &value)) {
        return DataLossError(path + ": bad value at line " +
                             std::to_string(line_number));
      }
      entry.values.push_back(value);
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace condensa::runtime
