// Bounded multi-producer / single-consumer record queue.
//
// The ingest pipeline decouples producers (request handlers, CSV readers)
// from the single condenser worker with this queue. Capacity is a hard
// bound — queue memory cannot grow past it no matter how far the worker
// falls behind — and what happens to a producer hitting the bound is the
// configured backpressure policy:
//
//   kBlock       producer waits until the worker frees a slot (lossless,
//                the default; callers absorb the latency).
//   kDropOldest  the oldest queued record is evicted to admit the new one
//                (freshness over completeness; drops are counted and the
//                evicted record is handed back to the caller so it can be
//                accounted — e.g. spooled or quarantined, never silent).
//   kReject      Push fails with kResourceExhausted and the caller decides
//                (load shedding at the edge).
//
// One mutex, two condition variables; every operation is O(1) apart from
// the wait. Safe for any number of producers; Pop/PopBatch must be called
// from one consumer thread at a time.

#ifndef CONDENSA_RUNTIME_BOUNDED_QUEUE_H_
#define CONDENSA_RUNTIME_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace condensa::runtime {

enum class BackpressurePolicy {
  kBlock = 0,
  kDropOldest = 1,
  kReject = 2,
};

const char* BackpressurePolicyName(BackpressurePolicy policy);

// Parses "block" / "drop-oldest" / "reject"; false on anything else.
bool ParseBackpressurePolicy(const std::string& text,
                             BackpressurePolicy* policy);

template <typename T>
class BoundedQueue {
 public:
  // What Push did with the record (all outcomes except the error return
  // mean the new record is in the queue).
  struct PushResult {
    Status status;
    // kDropOldest only: the record evicted to make room, handed back so
    // the producer can account for it.
    std::optional<T> evicted;
  };

  BoundedQueue(std::size_t capacity, BackpressurePolicy policy)
      : capacity_(capacity), policy_(policy) {
    CONDENSA_CHECK_GE(capacity_, 1u);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Enqueues `value` under the backpressure policy. Fails with
  // kFailedPrecondition after Close, kResourceExhausted when full under
  // kReject.
  PushResult Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    PushResult result;
    if (closed_) {
      result.status = FailedPreconditionError("queue is closed");
      return result;
    }
    if (items_.size() >= capacity_) {
      switch (policy_) {
        case BackpressurePolicy::kBlock:
          not_full_.wait(lock, [this] {
            return items_.size() < capacity_ || closed_;
          });
          if (closed_) {
            result.status = FailedPreconditionError("queue is closed");
            return result;
          }
          break;
        case BackpressurePolicy::kDropOldest:
          result.evicted = std::move(items_.front());
          items_.pop_front();
          ++dropped_;
          break;
        case BackpressurePolicy::kReject:
          ++rejected_;
          result.status =
              ResourceExhaustedError("queue is full (reject policy)");
          return result;
      }
    }
    items_.push_back(std::move(value));
    if (items_.size() > high_water_) {
      high_water_ = items_.size();
    }
    lock.unlock();
    not_empty_.notify_one();
    return result;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    return PopLocked(lock);
  }

  // Pops up to `max_items` into `out`, waiting at most `wait` for the
  // first one (later ones are taken only if already queued). Returns the
  // number popped — 0 on timeout or when closed and drained.
  std::size_t PopBatch(std::vector<T>* out, std::size_t max_items,
                       std::chrono::milliseconds wait) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, wait,
                        [this] { return !items_.empty() || closed_; });
    std::size_t popped = 0;
    while (popped < max_items) {
      std::optional<T> item = PopLocked(lock);
      if (!item.has_value()) break;
      out->push_back(std::move(*item));
      ++popped;
    }
    return popped;
  }

  // Marks the queue closed: Push fails from now on, queued items remain
  // poppable, blocked producers and the consumer wake up.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  // Deepest the queue has ever been (bounded-memory evidence: never
  // exceeds capacity()).
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

  // Records evicted under kDropOldest.
  std::size_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }

  // Pushes refused under kReject.
  std::size_t rejected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_;
  }

 private:
  std::optional<T> PopLocked(std::unique_lock<std::mutex>& lock) {
    if (items_.empty()) {
      return std::nullopt;
    }
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    lock.lock();
    return value;
  }

  const std::size_t capacity_;
  const BackpressurePolicy policy_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  std::size_t high_water_ = 0;
  std::size_t dropped_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace condensa::runtime

#endif  // CONDENSA_RUNTIME_BOUNDED_QUEUE_H_
