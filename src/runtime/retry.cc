#include "runtime/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace condensa::runtime {

bool IsRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDataLoss:
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

double BackoffDelayMs(const RetryPolicy& policy, std::size_t failures,
                      Rng& rng) {
  if (failures == 0) return 0.0;
  double delay = policy.initial_backoff_ms *
                 std::pow(policy.backoff_multiplier,
                          static_cast<double>(failures - 1));
  delay = std::min(delay, policy.max_backoff_ms);
  if (policy.jitter_fraction > 0.0) {
    delay *= 1.0 + rng.Uniform(-policy.jitter_fraction,
                               policy.jitter_fraction);
  }
  return std::max(delay, 0.0);
}

Status RetryWithBackoff(const RetryPolicy& policy, RetryBudget* budget,
                        Rng& rng, const std::function<Status()>& op,
                        const SleepFn& sleep, std::size_t* retries_out) {
  Status status = op();
  std::size_t failures = 0;
  while (!status.ok() && IsRetryable(status)) {
    ++failures;
    if (failures + 1 > policy.max_attempts) break;
    if (budget != nullptr && !budget->TryAcquire()) break;
    const double delay_ms = BackoffDelayMs(policy, failures, rng);
    if (sleep) {
      sleep(delay_ms);
    } else if (delay_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }
    if (retries_out != nullptr) ++*retries_out;
    status = op();
  }
  return status;
}

}  // namespace condensa::runtime
