// Poison-record quarantine.
//
// A malformed record must cost the stream exactly one record: instead of
// aborting the run (or silently dropping the tuple — microaggregation
// pipelines show how one bad value poisons a whole group's statistics),
// the pipeline diverts it to an append-only quarantine file with a reason
// code and keeps going. The file is human-readable, one record per line:
//
//   # condensa-quarantine v1 dim 4
//   non-finite	record 17 attribute 2 is not finite	0.5,nan,1.25,-3
//   repeated-failure	INTERNAL: eigensolver diverged	9e300,...
//
// (tab-separated: reason, detail, comma-joined values). ReadAll parses it
// back so tests — and operators doing post-mortems — can account for
// every quarantined record exactly.

#ifndef CONDENSA_RUNTIME_QUARANTINE_H_
#define CONDENSA_RUNTIME_QUARANTINE_H_

#include <array>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/status.h"
#include "linalg/vector.h"

namespace condensa::runtime {

enum class QuarantineReason {
  // Record dimension disagrees with the pipeline's.
  kDimensionMismatch = 0,
  // A value is NaN or infinite.
  kNonFinite = 1,
  // The condenser rejected the record deterministically, or it kept
  // failing after the full retry schedule.
  kRepeatedFailure = 2,
};
inline constexpr std::size_t kQuarantineReasonCount = 3;

const char* QuarantineReasonName(QuarantineReason reason);

class QuarantineWriter {
 public:
  struct Entry {
    QuarantineReason reason = QuarantineReason::kRepeatedFailure;
    std::string detail;
    std::vector<double> values;
  };

  // Opens (or creates) the quarantine file at `path`, appending to any
  // existing entries. `dim` is recorded in the header for readers.
  static StatusOr<QuarantineWriter> Open(const std::string& path,
                                         std::size_t dim);

  QuarantineWriter(QuarantineWriter&&) = default;
  QuarantineWriter& operator=(QuarantineWriter&&) = default;

  // Appends one record durably. Thread-safe. `detail` is sanitized (tabs
  // and newlines become spaces).
  Status Write(const linalg::Vector& record, QuarantineReason reason,
               const std::string& detail);

  // Entries written through this writer (not pre-existing ones).
  std::size_t count() const;
  std::size_t count(QuarantineReason reason) const;

  const std::string& path() const { return path_; }

  // Parses a quarantine file (header plus all entries).
  static StatusOr<std::vector<Entry>> ReadAll(const std::string& path);

 private:
  QuarantineWriter(AppendFile file, std::string path)
      : file_(std::move(file)),
        path_(std::move(path)),
        mu_(new std::mutex) {}

  AppendFile file_;
  std::string path_;
  // Guards file_ and counts_; Write is called from producer and worker
  // threads. Heap-allocated so the writer stays movable.
  std::unique_ptr<std::mutex> mu_;
  std::array<std::size_t, kQuarantineReasonCount> counts_{};
};

}  // namespace condensa::runtime

#endif  // CONDENSA_RUNTIME_QUARANTINE_H_
