// Retry with exponential backoff, jitter, and a shared retry budget.
//
// Checkpoint and journal I/O fail transiently (full fsync queues, flaky
// network filesystems, injected chaos); the pipeline wraps those calls in
// RetryWithBackoff instead of failing the record on first error. Delays
// grow exponentially from `initial_backoff_ms`, are capped at
// `max_backoff_ms`, and carry uniform ±`jitter_fraction` noise so a fleet
// of stalled workers does not retry in lockstep.
//
// The RetryBudget bounds the *total* number of retries a run may spend
// across all records: once exhausted, operations get their first attempt
// only. This turns "the disk is down" from an unbounded retry storm into
// a quick, observable degradation (the circuit breaker takes over).
//
// Only transient failures are retried: kDataLoss / kUnavailable /
// kResourceExhausted. Deterministic failures (kInvalidArgument, kInternal
// eigensolver divergence, ...) would fail identically every attempt and
// are returned immediately — the pipeline treats those as poison.

#ifndef CONDENSA_RUNTIME_RETRY_H_
#define CONDENSA_RUNTIME_RETRY_H_

#include <atomic>
#include <cstddef>
#include <functional>

#include "common/random.h"
#include "common/status.h"

namespace condensa::runtime {

struct RetryPolicy {
  // Total attempts, including the first. 1 disables retrying.
  std::size_t max_attempts = 4;
  double initial_backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 100.0;
  // Uniform multiplicative jitter: delay *= 1 + U(-f, +f).
  double jitter_fraction = 0.2;
};

// True for status codes worth a second attempt.
bool IsRetryable(const Status& status);

// Delay before the attempt following the `failures`-th failure (1-based),
// in milliseconds: min(initial * multiplier^(failures-1), max), jittered.
double BackoffDelayMs(const RetryPolicy& policy, std::size_t failures,
                      Rng& rng);

// Process- or run-wide cap on retries. Thread-safe.
class RetryBudget {
 public:
  explicit RetryBudget(std::size_t total) : remaining_(total), total_(total) {}

  // Claims one retry; false when the budget is spent.
  bool TryAcquire() {
    std::size_t current = remaining_.load(std::memory_order_relaxed);
    while (current > 0) {
      if (remaining_.compare_exchange_weak(current, current - 1,
                                           std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  std::size_t remaining() const {
    return remaining_.load(std::memory_order_relaxed);
  }
  std::size_t total() const { return total_; }
  std::size_t spent() const { return total_ - remaining(); }

 private:
  std::atomic<std::size_t> remaining_;
  const std::size_t total_;
};

// Sleep hook so tests can count delays instead of waiting them out.
using SleepFn = std::function<void(double ms)>;

// Runs `op` until it succeeds, returns a non-retryable error, exhausts
// `policy.max_attempts`, or drains `budget` (nullptr = unlimited). Sleeps
// `sleep` (nullptr = real sleep) between attempts; bumps `retries_out`
// (nullable) once per re-attempt. Returns the last status.
Status RetryWithBackoff(const RetryPolicy& policy, RetryBudget* budget,
                        Rng& rng, const std::function<Status()>& op,
                        const SleepFn& sleep = nullptr,
                        std::size_t* retries_out = nullptr);

}  // namespace condensa::runtime

#endif  // CONDENSA_RUNTIME_RETRY_H_
