#include "runtime/bounded_queue.h"

#include <string>

namespace condensa::runtime {

const char* BackpressurePolicyName(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock:
      return "block";
    case BackpressurePolicy::kDropOldest:
      return "drop-oldest";
    case BackpressurePolicy::kReject:
      return "reject";
  }
  return "unknown";
}

bool ParseBackpressurePolicy(const std::string& text,
                             BackpressurePolicy* policy) {
  if (text == "block") {
    *policy = BackpressurePolicy::kBlock;
  } else if (text == "drop-oldest") {
    *policy = BackpressurePolicy::kDropOldest;
  } else if (text == "reject") {
    *policy = BackpressurePolicy::kReject;
  } else {
    return false;
  }
  return true;
}

}  // namespace condensa::runtime
