// Bounded admission gate for request-serving paths.
//
// The write path bounds in-flight work with BoundedQueue; read-side
// servers need the same discipline without a consumer thread: a request
// either takes one of `capacity` in-flight slots for its whole lifetime
// or is rejected immediately so the caller can shed it in-band
// (kUnavailable + retry hint) instead of queueing unbounded work behind
// a slow eigendecomposition. Slots are RAII tickets — early returns and
// exceptions release them — and the gate keeps the same accounting the
// queue does (high water, rejected count) so overload is observable.
//
// Thread-safe; TryEnter/exit are O(1) under one mutex.

#ifndef CONDENSA_RUNTIME_ADMISSION_H_
#define CONDENSA_RUNTIME_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>

#include "common/check.h"

namespace condensa::runtime {

class AdmissionGate {
 public:
  // Releases its slot on destruction. Move-only.
  class Ticket {
   public:
    Ticket() = default;
    explicit Ticket(AdmissionGate* gate) : gate_(gate) {}
    Ticket(Ticket&& other) noexcept
        : gate_(std::exchange(other.gate_, nullptr)) {}
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        gate_ = std::exchange(other.gate_, nullptr);
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

   private:
    void Release() {
      if (gate_ != nullptr) {
        gate_->Exit();
        gate_ = nullptr;
      }
    }
    AdmissionGate* gate_ = nullptr;
  };

  explicit AdmissionGate(std::size_t capacity) : capacity_(capacity) {
    CONDENSA_CHECK_GE(capacity_, 1u);
  }

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  // Claims an in-flight slot, or nullopt (counted in rejected()) when
  // all `capacity` slots are taken.
  std::optional<Ticket> TryEnter();

  std::size_t capacity() const { return capacity_; }
  std::size_t inflight() const;
  // Deepest concurrent admission seen (never exceeds capacity()).
  std::size_t high_water() const;
  // Admissions refused because the gate was full.
  std::uint64_t rejected() const;

 private:
  friend class Ticket;
  void Exit();

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::size_t inflight_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace condensa::runtime

#endif  // CONDENSA_RUNTIME_ADMISSION_H_
