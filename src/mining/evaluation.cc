#include "mining/evaluation.h"

#include <cmath>

#include "data/split.h"

namespace condensa::mining {

StatusOr<double> EvaluateAccuracy(const Classifier& classifier,
                                  const data::Dataset& test) {
  if (test.task() != data::TaskType::kClassification) {
    return InvalidArgumentError("accuracy needs classification data");
  }
  if (test.empty()) {
    return InvalidArgumentError("cannot evaluate on an empty test set");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (classifier.Predict(test.record(i)) == test.label(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

StatusOr<double> EvaluateWithinTolerance(const Regressor& regressor,
                                         const data::Dataset& test,
                                         double tolerance) {
  if (test.task() != data::TaskType::kRegression) {
    return InvalidArgumentError("tolerance accuracy needs regression data");
  }
  if (test.empty()) {
    return InvalidArgumentError("cannot evaluate on an empty test set");
  }
  if (tolerance < 0.0) {
    return InvalidArgumentError("tolerance must be non-negative");
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    double prediction = regressor.Predict(test.record(i));
    if (std::abs(prediction - test.target(i)) <= tolerance) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(test.size());
}

StatusOr<double> EvaluateMeanAbsoluteError(const Regressor& regressor,
                                           const data::Dataset& test) {
  if (test.task() != data::TaskType::kRegression) {
    return InvalidArgumentError("MAE needs regression data");
  }
  if (test.empty()) {
    return InvalidArgumentError("cannot evaluate on an empty test set");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    total += std::abs(regressor.Predict(test.record(i)) - test.target(i));
  }
  return total / static_cast<double>(test.size());
}

StatusOr<std::map<int, std::map<int, std::size_t>>> ConfusionMatrix(
    const Classifier& classifier, const data::Dataset& test) {
  if (test.task() != data::TaskType::kClassification) {
    return InvalidArgumentError("confusion matrix needs classification data");
  }
  if (test.empty()) {
    return InvalidArgumentError("cannot evaluate on an empty test set");
  }
  std::map<int, std::map<int, std::size_t>> matrix;
  for (std::size_t i = 0; i < test.size(); ++i) {
    ++matrix[test.label(i)][classifier.Predict(test.record(i))];
  }
  return matrix;
}

StatusOr<double> CrossValidateAccuracy(Classifier& classifier,
                                       const data::Dataset& dataset,
                                       std::size_t folds, Rng& rng) {
  CONDENSA_ASSIGN_OR_RETURN(std::vector<std::vector<std::size_t>> fold_sets,
                            data::MakeFolds(dataset, folds, rng));
  double total_accuracy = 0.0;
  std::size_t evaluated_folds = 0;
  for (std::size_t f = 0; f < fold_sets.size(); ++f) {
    std::vector<std::size_t> train_indices;
    for (std::size_t g = 0; g < fold_sets.size(); ++g) {
      if (g == f) continue;
      train_indices.insert(train_indices.end(), fold_sets[g].begin(),
                           fold_sets[g].end());
    }
    if (fold_sets[f].empty() || train_indices.empty()) continue;
    data::Dataset train = dataset.Select(train_indices);
    data::Dataset test = dataset.Select(fold_sets[f]);
    CONDENSA_RETURN_IF_ERROR(classifier.Fit(train));
    CONDENSA_ASSIGN_OR_RETURN(double accuracy,
                              EvaluateAccuracy(classifier, test));
    total_accuracy += accuracy;
    ++evaluated_folds;
  }
  if (evaluated_folds == 0) {
    return FailedPreconditionError("no evaluable folds");
  }
  return total_accuracy / static_cast<double>(evaluated_folds);
}

}  // namespace condensa::mining
