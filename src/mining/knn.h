// k-nearest-neighbour classification and regression.
//
// The paper's demonstration algorithm: a nearest-neighbour classifier
// cannot be adapted to the perturbation approach (which only reconstructs
// per-dimension distributions) but runs unchanged on condensed data.

#ifndef CONDENSA_MINING_KNN_H_
#define CONDENSA_MINING_KNN_H_

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "index/kdtree.h"
#include "mining/model.h"
#include "simd/record_block.h"

namespace condensa::mining {

// How neighbour queries are answered.
enum class SearchStrategy {
  // Pick per training set: k-d tree for low-dimensional data where it
  // wins, linear scan otherwise.
  kAuto = 0,
  kBruteForce = 1,
  kKdTree = 2,
};

struct KnnOptions {
  // Number of neighbours consulted. Must be >= 1.
  std::size_t k = 1;
  SearchStrategy strategy = SearchStrategy::kAuto;
};

// Majority vote among the k nearest training records (Euclidean metric);
// ties break toward the nearer neighbour set (lowest total distance, then
// smaller label for determinism).
class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(KnnOptions options = {}) : options_(options) {}

  // Not copyable or movable: the optional k-d tree references the stored
  // training set.
  KnnClassifier(const KnnClassifier&) = delete;
  KnnClassifier& operator=(const KnnClassifier&) = delete;

  Status Fit(const data::Dataset& train) override;
  int Predict(const linalg::Vector& record) const override;

  const KnnOptions& options() const { return options_; }
  // True when neighbour queries use the k-d tree (set after Fit).
  bool uses_index() const { return index_.has_value(); }

 private:
  KnnOptions options_;
  data::Dataset train_ = data::Dataset(0);
  // Blocked-SoA copy of the training records, built once in Fit: the
  // brute-force path answers each Predict with one batch-distance call.
  simd::RecordBlock block_{0};
  std::optional<index::KdTree> index_;
};

// Mean target of the k nearest training records.
class KnnRegressor : public Regressor {
 public:
  explicit KnnRegressor(KnnOptions options = {}) : options_(options) {}

  // Not copyable or movable: the optional k-d tree references the stored
  // training set.
  KnnRegressor(const KnnRegressor&) = delete;
  KnnRegressor& operator=(const KnnRegressor&) = delete;

  Status Fit(const data::Dataset& train) override;
  double Predict(const linalg::Vector& record) const override;

  const KnnOptions& options() const { return options_; }
  bool uses_index() const { return index_.has_value(); }

 private:
  KnnOptions options_;
  data::Dataset train_ = data::Dataset(0);
  simd::RecordBlock block_{0};  // see KnnClassifier::block_
  std::optional<index::KdTree> index_;
};

// Shared helper: indices of the k nearest records of `dataset` to `query`
// in increasing distance order (k clamped to dataset size).
std::vector<std::size_t> NearestNeighbors(const data::Dataset& dataset,
                                          const linalg::Vector& query,
                                          std::size_t k);

// Same selection with the squared distances kept: one batch-kernel call
// over pre-blocked records, returning the k nearest as (squared distance,
// record index) sorted ascending — ties on distance break toward the
// smaller index, exactly the order NearestNeighbors' (d², i) sort
// produces. Callers that need both the neighbour set and its distances
// (the k-NN vote) use this instead of recomputing per neighbour.
std::vector<std::pair<double, std::size_t>> NearestNeighborsWithDistances(
    const simd::RecordBlock& records, const linalg::Vector& query,
    std::size_t k);

}  // namespace condensa::mining

#endif  // CONDENSA_MINING_KNN_H_
