// Ordinary least squares / ridge regression.
//
// A second regression family (beyond k-NN) for the condensed-data
// experiments: linear models depend *only* on the first and second moments
// of the joint (features ⊕ target) distribution — exactly what
// condensation preserves — so their coefficients on a condensed release
// should match the raw-data fit closely. Fitting uses the normal
// equations solved via Cholesky with an optional ridge term.

#ifndef CONDENSA_MINING_LINEAR_REGRESSION_H_
#define CONDENSA_MINING_LINEAR_REGRESSION_H_

#include "linalg/vector.h"
#include "mining/model.h"

namespace condensa::mining {

struct LinearRegressionOptions {
  // L2 penalty on the weights (not the intercept). 0 = plain OLS.
  double ridge = 0.0;
};

class LinearRegressor : public Regressor {
 public:
  explicit LinearRegressor(LinearRegressionOptions options = {})
      : options_(options) {}

  Status Fit(const data::Dataset& train) override;
  double Predict(const linalg::Vector& record) const override;

  // Learned weights (dim = feature dim) and intercept. Valid after Fit.
  const linalg::Vector& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 private:
  LinearRegressionOptions options_;
  linalg::Vector weights_;
  double intercept_ = 0.0;
};

}  // namespace condensa::mining

#endif  // CONDENSA_MINING_LINEAR_REGRESSION_H_
