#include "mining/decision_tree.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"

namespace condensa::mining {
namespace {

// Gini impurity of a label multiset given class counts and total.
double Gini(const std::map<int, std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double impurity = 1.0;
  for (const auto& [label, count] : counts) {
    double p = static_cast<double>(count) / static_cast<double>(total);
    impurity -= p * p;
  }
  return impurity;
}

int MajorityLabel(const std::map<int, std::size_t>& counts) {
  int best_label = counts.begin()->first;
  std::size_t best_count = 0;
  for (const auto& [label, count] : counts) {
    if (count > best_count) {
      best_count = count;
      best_label = label;
    }
  }
  return best_label;
}

struct SplitCandidate {
  bool valid = false;
  double impurity = 1e18;  // weighted child Gini
  double threshold = 0.0;
  std::size_t axis = 0;
  linalg::Vector direction;  // empty => axis-parallel
};

// Best threshold for pre-computed projections `values[i]` of the member
// records. Scans sorted unique midpoints.
SplitCandidate BestThresholdSplit(const data::Dataset& train,
                                  const std::vector<std::size_t>& members,
                                  const std::vector<double>& values,
                                  std::size_t min_child) {
  SplitCandidate best;
  std::vector<std::size_t> order(members.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&values](std::size_t a, std::size_t b) {
              return values[a] < values[b];
            });

  std::map<int, std::size_t> left_counts, right_counts;
  for (std::size_t i : members) {
    ++right_counts[train.label(i)];
  }
  const std::size_t total = members.size();

  for (std::size_t pos = 0; pos + 1 < order.size(); ++pos) {
    int label = train.label(members[order[pos]]);
    ++left_counts[label];
    auto it = right_counts.find(label);
    if (--(it->second) == 0) right_counts.erase(it);

    double v = values[order[pos]];
    double next = values[order[pos + 1]];
    if (next <= v) continue;  // no separating threshold here

    std::size_t left_n = pos + 1;
    std::size_t right_n = total - left_n;
    if (left_n < min_child || right_n < min_child) continue;

    double impurity =
        (static_cast<double>(left_n) * Gini(left_counts, left_n) +
         static_cast<double>(right_n) * Gini(right_counts, right_n)) /
        static_cast<double>(total);
    if (impurity < best.impurity) {
      best.valid = true;
      best.impurity = impurity;
      best.threshold = 0.5 * (v + next);
    }
  }
  return best;
}

// Fisher/LDA direction between the two most frequent classes of the node:
// w = (Sw + eps I)^{-1} (mu1 - mu0), solved via Cholesky.
bool FisherDirection(const data::Dataset& train,
                     const std::vector<std::size_t>& members,
                     linalg::Vector* direction) {
  std::map<int, std::vector<std::size_t>> by_label;
  for (std::size_t i : members) {
    by_label[train.label(i)].push_back(i);
  }
  if (by_label.size() < 2) return false;

  // Two largest classes.
  int label_a = 0, label_b = 0;
  std::size_t size_a = 0, size_b = 0;
  for (const auto& [label, indices] : by_label) {
    if (indices.size() > size_a) {
      label_b = label_a;
      size_b = size_a;
      label_a = label;
      size_a = indices.size();
    } else if (indices.size() > size_b) {
      label_b = label;
      size_b = indices.size();
    }
  }
  if (size_b < 2) return false;

  const std::size_t d = train.dim();
  auto class_mean = [&](int label) {
    linalg::Vector mean(d);
    for (std::size_t i : by_label[label]) {
      mean += train.record(i);
    }
    mean /= static_cast<double>(by_label[label].size());
    return mean;
  };
  linalg::Vector mean_a = class_mean(label_a);
  linalg::Vector mean_b = class_mean(label_b);

  // Pooled within-class scatter of the two classes.
  linalg::Matrix scatter(d, d);
  for (int which = 0; which < 2; ++which) {
    int label = which == 0 ? label_a : label_b;
    const linalg::Vector& mean = which == 0 ? mean_a : mean_b;
    for (std::size_t i : by_label[label]) {
      linalg::Vector diff = train.record(i) - mean;
      for (std::size_t r = 0; r < d; ++r) {
        for (std::size_t c = r; c < d; ++c) {
          double v = diff[r] * diff[c];
          scatter(r, c) += v;
          if (c != r) scatter(c, r) += v;
        }
      }
    }
  }
  double ridge = 1e-6 * std::max(1.0, scatter.MaxAbs());
  for (std::size_t j = 0; j < d; ++j) {
    scatter(j, j) += ridge;
  }

  auto factor = linalg::CholeskyFactor(scatter);
  if (!factor.ok()) return false;
  linalg::Vector w = linalg::CholeskySolve(*factor, mean_a - mean_b);
  double norm = w.Norm();
  if (norm <= 0.0) return false;
  *direction = w / norm;
  return true;
}

}  // namespace

Status DecisionTreeClassifier::Fit(const data::Dataset& train) {
  if (train.task() != data::TaskType::kClassification) {
    return InvalidArgumentError(
        "DecisionTreeClassifier requires classification data");
  }
  if (train.empty()) {
    return InvalidArgumentError("cannot fit on an empty dataset");
  }
  nodes_.clear();
  oblique_splits_ = 0;
  std::vector<std::size_t> members(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) members[i] = i;
  root_ = BuildNode(train, members, 0);
  return OkStatus();
}

std::size_t DecisionTreeClassifier::BuildNode(
    const data::Dataset& train, const std::vector<std::size_t>& members,
    std::size_t depth) {
  CONDENSA_DCHECK(!members.empty());
  const std::size_t node_id = nodes_.size();
  nodes_.emplace_back();
  nodes_[node_id].depth = depth;

  std::map<int, std::size_t> counts;
  for (std::size_t i : members) {
    ++counts[train.label(i)];
  }
  nodes_[node_id].label = MajorityLabel(counts);
  double node_impurity = Gini(counts, members.size());

  const bool can_split = depth < options_.max_depth &&
                         members.size() >= options_.min_split_size &&
                         counts.size() > 1;
  if (!can_split) {
    return node_id;
  }

  // Best axis-parallel split.
  SplitCandidate best;
  std::vector<double> values(members.size());
  const std::size_t min_child = 1;
  for (std::size_t axis = 0; axis < train.dim(); ++axis) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      values[i] = train.record(members[i])[axis];
    }
    SplitCandidate candidate =
        BestThresholdSplit(train, members, values, min_child);
    if (candidate.valid && candidate.impurity < best.impurity) {
      best = candidate;
      best.axis = axis;
    }
  }

  // Optional oblique (Fisher-direction) split.
  if (options_.use_oblique_splits) {
    linalg::Vector direction;
    if (FisherDirection(train, members, &direction)) {
      for (std::size_t i = 0; i < members.size(); ++i) {
        values[i] = linalg::Dot(train.record(members[i]), direction);
      }
      SplitCandidate candidate =
          BestThresholdSplit(train, members, values, min_child);
      if (candidate.valid && candidate.impurity < best.impurity) {
        best = candidate;
        best.direction = direction;
      }
    }
  }

  if (!best.valid ||
      node_impurity - best.impurity < options_.min_impurity_decrease) {
    return node_id;
  }

  // Partition members and recurse.
  std::vector<std::size_t> left_members, right_members;
  for (std::size_t i : members) {
    double v = best.direction.empty()
                   ? train.record(i)[best.axis]
                   : linalg::Dot(train.record(i), best.direction);
    (v < best.threshold ? left_members : right_members).push_back(i);
  }
  CONDENSA_DCHECK(!left_members.empty());
  CONDENSA_DCHECK(!right_members.empty());

  if (!best.direction.empty()) {
    ++oblique_splits_;
  }
  std::size_t left = BuildNode(train, left_members, depth + 1);
  std::size_t right = BuildNode(train, right_members, depth + 1);
  Node& node = nodes_[node_id];
  node.is_leaf = false;
  node.axis = best.axis;
  node.direction = best.direction;
  node.threshold = best.threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

int DecisionTreeClassifier::Predict(const linalg::Vector& record) const {
  CONDENSA_CHECK(!nodes_.empty());
  std::size_t node_id = root_;
  while (!nodes_[node_id].is_leaf) {
    const Node& node = nodes_[node_id];
    double v = node.direction.empty()
                   ? record[node.axis]
                   : linalg::Dot(record, node.direction);
    node_id = v < node.threshold ? node.left : node.right;
  }
  return nodes_[node_id].label;
}

std::size_t DecisionTreeClassifier::leaf_count() const {
  std::size_t leaves = 0;
  for (const Node& node : nodes_) {
    if (node.is_leaf) ++leaves;
  }
  return leaves;
}

std::size_t DecisionTreeClassifier::depth() const {
  std::size_t max_depth = 0;
  for (const Node& node : nodes_) {
    max_depth = std::max(max_depth, node.depth);
  }
  return max_depth;
}

std::size_t DecisionTreeClassifier::DepthOf(std::size_t node) const {
  return nodes_[node].depth;
}

}  // namespace condensa::mining
