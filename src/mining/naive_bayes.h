// Gaussian naive Bayes classifier.
//
// Included as a second off-the-shelf algorithm for the condensed data, and
// as the multi-dimensional cousin of the per-dimension distribution model
// that the perturbation baseline is limited to.

#ifndef CONDENSA_MINING_NAIVE_BAYES_H_
#define CONDENSA_MINING_NAIVE_BAYES_H_

#include <map>
#include <vector>

#include "linalg/vector.h"
#include "mining/model.h"

namespace condensa::mining {

// Models each class as a product of per-dimension Gaussians with a class
// prior proportional to the class frequency.
class GaussianNaiveBayes : public Classifier {
 public:
  GaussianNaiveBayes() = default;

  Status Fit(const data::Dataset& train) override;
  int Predict(const linalg::Vector& record) const override;

  // Log of P(class) + Σ_j log N(x_j | mean_cj, var_cj) for each class.
  std::map<int, double> ClassLogLikelihoods(
      const linalg::Vector& record) const;

 private:
  struct ClassModel {
    double log_prior = 0.0;
    linalg::Vector mean;
    linalg::Vector variance;  // floored away from zero
  };
  std::map<int, ClassModel> classes_;
};

}  // namespace condensa::mining

#endif  // CONDENSA_MINING_NAIVE_BAYES_H_
