// FP-growth frequent-itemset mining.
//
// A second, independent frequent-itemset algorithm (Han et al.'s pattern
// tree): it produces exactly the same itemsets as Apriori but without
// candidate generation, so it scales to lower support thresholds. Besides
// being useful on its own, the property tests cross-check FP-growth and
// Apriori against each other — two independent implementations agreeing
// on randomized instances.

#ifndef CONDENSA_MINING_FPGROWTH_H_
#define CONDENSA_MINING_FPGROWTH_H_

#include <vector>

#include "common/status.h"
#include "mining/apriori.h"

namespace condensa::mining {

struct FpGrowthOptions {
  // Minimum fraction of transactions an itemset must appear in.
  double min_support = 0.1;
  // Stop growing itemsets beyond this size (0 = unlimited).
  std::size_t max_itemset_size = 0;
};

// Mines all frequent itemsets of `transactions` (sorted, duplicate-free
// items, as for Apriori). Result itemsets are sorted by (size, items) —
// the same order MineAssociationRules uses — with exact supports.
StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsFpGrowth(
    const std::vector<Transaction>& transactions,
    const FpGrowthOptions& options);

}  // namespace condensa::mining

#endif  // CONDENSA_MINING_FPGROWTH_H_
