#include "mining/linear_regression.h"

#include "common/check.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"

namespace condensa::mining {

Status LinearRegressor::Fit(const data::Dataset& train) {
  if (train.task() != data::TaskType::kRegression) {
    return InvalidArgumentError("LinearRegressor requires regression data");
  }
  if (train.empty()) {
    return InvalidArgumentError("cannot fit on an empty dataset");
  }
  if (options_.ridge < 0.0) {
    return InvalidArgumentError("ridge penalty must be non-negative");
  }

  // Centre features and target; solve (XᵀX + ridge I) w = Xᵀ y on the
  // centred data, then recover the intercept. Centring keeps the ridge
  // penalty off the intercept and improves conditioning.
  const std::size_t d = train.dim();
  const double n = static_cast<double>(train.size());

  linalg::Vector feature_mean = train.Mean();
  double target_mean = 0.0;
  for (std::size_t i = 0; i < train.size(); ++i) {
    target_mean += train.target(i);
  }
  target_mean /= n;

  linalg::Matrix gram(d, d);
  linalg::Vector moment(d);
  for (std::size_t i = 0; i < train.size(); ++i) {
    linalg::Vector x = train.record(i) - feature_mean;
    double y = train.target(i) - target_mean;
    for (std::size_t r = 0; r < d; ++r) {
      moment[r] += x[r] * y;
      for (std::size_t c = r; c < d; ++c) {
        gram(r, c) += x[r] * x[c];
      }
    }
  }
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = r; c < d; ++c) {
      gram(c, r) = gram(r, c);
    }
  }
  // Ridge + a whisper of jitter so collinear features stay solvable.
  double jitter = 1e-10 * std::max(1.0, gram.MaxAbs());
  for (std::size_t j = 0; j < d; ++j) {
    gram(j, j) += options_.ridge + jitter;
  }

  auto factor = linalg::CholeskyFactor(gram);
  if (!factor.ok()) {
    return FailedPreconditionError(
        "normal equations are singular; add a ridge penalty");
  }
  weights_ = linalg::CholeskySolve(*factor, moment);
  intercept_ = target_mean - linalg::Dot(weights_, feature_mean);
  return OkStatus();
}

double LinearRegressor::Predict(const linalg::Vector& record) const {
  CONDENSA_CHECK_EQ(record.dim(), weights_.dim());
  return linalg::Dot(weights_, record) + intercept_;
}

}  // namespace condensa::mining
