#include "mining/fpgrowth.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "common/check.h"

namespace condensa::mining {
namespace {

// FP-tree node. Children keyed by item; nodes of the same item are
// chained through `next_same_item` from the header table.
struct FpNode {
  Item item = -1;
  std::size_t count = 0;
  FpNode* parent = nullptr;
  FpNode* next_same_item = nullptr;
  std::map<Item, std::unique_ptr<FpNode>> children;
};

// Header-table entry for one item.
struct HeaderEntry {
  std::size_t count = 0;
  FpNode* head = nullptr;  // chain of nodes carrying the item
};

class FpTree {
 public:
  FpTree() : root_(std::make_unique<FpNode>()) {}

  // Inserts a transaction (items already filtered to frequent ones and
  // ordered by decreasing global frequency) with multiplicity `count`.
  void Insert(const std::vector<Item>& items, std::size_t count) {
    FpNode* node = root_.get();
    for (Item item : items) {
      auto it = node->children.find(item);
      if (it == node->children.end()) {
        auto child = std::make_unique<FpNode>();
        child->item = item;
        child->parent = node;
        HeaderEntry& header = header_[item];
        child->next_same_item = header.head;
        header.head = child.get();
        it = node->children.emplace(item, std::move(child)).first;
      }
      it->second->count += count;
      header_[item].count += count;
      node = it->second.get();
    }
  }

  bool empty() const { return root_->children.empty(); }
  const std::map<Item, HeaderEntry>& header() const { return header_; }

 private:
  std::unique_ptr<FpNode> root_;
  std::map<Item, HeaderEntry> header_;
};

struct MiningContext {
  std::size_t min_count = 1;
  std::size_t max_size = 0;  // 0 = unlimited
  std::size_t total_transactions = 1;
  std::vector<FrequentItemset>* out = nullptr;
};

// One conditional transaction: a prefix path with a multiplicity.
struct WeightedTransaction {
  std::vector<Item> items;  // ordered by decreasing global frequency
  std::size_t count = 0;
};

void Mine(const std::vector<WeightedTransaction>& database,
          const std::vector<Item>& suffix, const MiningContext& ctx);

// Builds the conditional database for `item` from the tree and recurses.
void MineTree(const FpTree& tree, const std::vector<Item>& suffix,
              const MiningContext& ctx) {
  // Iterate items in increasing frequency order (map order is by item id;
  // frequency order is not required for correctness, only for tree
  // compactness, so plain header order is fine).
  for (const auto& [item, header] : tree.header()) {
    if (header.count < ctx.min_count) continue;

    std::vector<Item> itemset = suffix;
    itemset.push_back(item);
    std::sort(itemset.begin(), itemset.end());
    ctx.out->push_back(
        {itemset, static_cast<double>(header.count) /
                      static_cast<double>(ctx.total_transactions)});

    if (ctx.max_size != 0 && suffix.size() + 1 >= ctx.max_size) continue;

    // Conditional pattern base: prefix paths of every node carrying item.
    std::vector<WeightedTransaction> conditional;
    for (FpNode* node = header.head; node != nullptr;
         node = node->next_same_item) {
      WeightedTransaction path;
      path.count = node->count;
      for (FpNode* up = node->parent; up != nullptr && up->item >= 0;
           up = up->parent) {
        path.items.push_back(up->item);
      }
      if (!path.items.empty()) {
        std::reverse(path.items.begin(), path.items.end());
        conditional.push_back(std::move(path));
      }
    }
    std::vector<Item> next_suffix = suffix;
    next_suffix.push_back(item);
    Mine(conditional, next_suffix, ctx);
  }
}

void Mine(const std::vector<WeightedTransaction>& database,
          const std::vector<Item>& suffix, const MiningContext& ctx) {
  if (database.empty()) return;
  // Filter items below min support in this conditional database.
  std::map<Item, std::size_t> counts;
  for (const WeightedTransaction& t : database) {
    for (Item item : t.items) {
      counts[item] += t.count;
    }
  }
  FpTree tree;
  for (const WeightedTransaction& t : database) {
    std::vector<Item> kept;
    for (Item item : t.items) {
      if (counts[item] >= ctx.min_count) kept.push_back(item);
    }
    if (!kept.empty()) tree.Insert(kept, t.count);
  }
  if (!tree.empty()) {
    MineTree(tree, suffix, ctx);
  }
}

}  // namespace

StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsFpGrowth(
    const std::vector<Transaction>& transactions,
    const FpGrowthOptions& options) {
  if (transactions.empty()) {
    return InvalidArgumentError("no transactions");
  }
  if (!(options.min_support > 0.0 && options.min_support <= 1.0)) {
    return InvalidArgumentError("min_support must be in (0, 1]");
  }
  for (const Transaction& t : transactions) {
    if (!std::is_sorted(t.begin(), t.end()) ||
        std::adjacent_find(t.begin(), t.end()) != t.end()) {
      return InvalidArgumentError(
          "transactions must be sorted and duplicate-free");
    }
    for (Item item : t) {
      if (item < 0) {
        return InvalidArgumentError("items must be non-negative");
      }
    }
  }

  const double n = static_cast<double>(transactions.size());
  const std::size_t min_count = static_cast<std::size_t>(
      std::max(1.0, std::ceil(options.min_support * n - 1e-9)));

  // Global frequencies; order transactions by decreasing frequency (ties
  // by item id) for a compact initial tree.
  std::map<Item, std::size_t> frequency;
  for (const Transaction& t : transactions) {
    for (Item item : t) {
      ++frequency[item];
    }
  }
  auto by_frequency = [&frequency](Item a, Item b) {
    std::size_t fa = frequency[a];
    std::size_t fb = frequency[b];
    if (fa != fb) return fa > fb;
    return a < b;
  };

  FpTree tree;
  for (const Transaction& t : transactions) {
    std::vector<Item> kept;
    for (Item item : t) {
      if (frequency[item] >= min_count) kept.push_back(item);
    }
    std::sort(kept.begin(), kept.end(), by_frequency);
    if (!kept.empty()) tree.Insert(kept, 1);
  }

  std::vector<FrequentItemset> result;
  MiningContext ctx;
  ctx.min_count = min_count;
  ctx.max_size = options.max_itemset_size;
  ctx.total_transactions = transactions.size();
  ctx.out = &result;
  if (!tree.empty()) {
    MineTree(tree, {}, ctx);
  }

  std::sort(result.begin(), result.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
  return result;
}

}  // namespace condensa::mining
