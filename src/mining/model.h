// Interfaces for mining models applied to (anonymized) datasets.
//
// The paper's point is that condensation produces ordinary records, so
// ordinary algorithms run unchanged. These interfaces keep the evaluation
// harness agnostic to which algorithm consumed the anonymized data.

#ifndef CONDENSA_MINING_MODEL_H_
#define CONDENSA_MINING_MODEL_H_

#include "common/status.h"
#include "data/dataset.h"
#include "linalg/vector.h"

namespace condensa::mining {

// A trained classifier: point in, label out.
class Classifier {
 public:
  virtual ~Classifier() = default;

  // Learns from `train` (task must be kClassification, non-empty).
  virtual Status Fit(const data::Dataset& train) = 0;

  // Predicts the label of one record. Requires a successful Fit.
  virtual int Predict(const linalg::Vector& record) const = 0;
};

// A trained regressor: point in, real target out.
class Regressor {
 public:
  virtual ~Regressor() = default;

  // Learns from `train` (task must be kRegression, non-empty).
  virtual Status Fit(const data::Dataset& train) = 0;

  // Predicts the target of one record. Requires a successful Fit.
  virtual double Predict(const linalg::Vector& record) const = 0;
};

}  // namespace condensa::mining

#endif  // CONDENSA_MINING_MODEL_H_
