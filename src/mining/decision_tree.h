// CART-style decision tree classifier, with an optional multivariate
// (oblique) split mode.
//
// Paper Section 1 argues that multi-variate decision tree algorithms
// cannot be adapted to the perturbation model because that model only
// reconstructs per-dimension distributions; condensed data, being ordinary
// records, supports them unchanged. The oblique mode implements exactly
// such a multivariate split: alongside the best axis-parallel cut, each
// node considers a threshold on the projection onto the Fisher (LDA)
// direction of the node's records, and keeps whichever split has the
// lower Gini impurity.

#ifndef CONDENSA_MINING_DECISION_TREE_H_
#define CONDENSA_MINING_DECISION_TREE_H_

#include <cstddef>
#include <vector>

#include "linalg/vector.h"
#include "mining/model.h"

namespace condensa::mining {

struct DecisionTreeOptions {
  std::size_t max_depth = 16;
  // A node with fewer records becomes a leaf.
  std::size_t min_split_size = 8;
  // A split is kept only if it reduces Gini impurity by at least this.
  double min_impurity_decrease = 1e-7;
  // Also consider Fisher-direction (oblique / multivariate) splits.
  bool use_oblique_splits = false;
};

class DecisionTreeClassifier : public Classifier {
 public:
  explicit DecisionTreeClassifier(DecisionTreeOptions options = {})
      : options_(options) {}

  Status Fit(const data::Dataset& train) override;
  int Predict(const linalg::Vector& record) const override;

  const DecisionTreeOptions& options() const { return options_; }
  // Number of nodes in the fitted tree (0 before Fit).
  std::size_t node_count() const { return nodes_.size(); }
  // Number of leaves in the fitted tree.
  std::size_t leaf_count() const;
  // Depth of the fitted tree (root-only tree has depth 0).
  std::size_t depth() const;
  // Number of oblique splits chosen (0 unless use_oblique_splits).
  std::size_t oblique_split_count() const { return oblique_splits_; }

 private:
  struct Node {
    bool is_leaf = true;
    int label = 0;  // majority label (leaves)
    // Internal nodes: go left when Dot(direction, x) < threshold. For
    // axis-parallel splits `direction` is empty and `axis` is used.
    std::size_t axis = 0;
    linalg::Vector direction;  // non-empty only for oblique splits
    double threshold = 0.0;
    std::size_t left = 0;
    std::size_t right = 0;
    std::size_t depth = 0;
  };

  std::size_t BuildNode(const data::Dataset& train,
                        const std::vector<std::size_t>& members,
                        std::size_t depth);
  std::size_t DepthOf(std::size_t node) const;

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
  std::size_t root_ = 0;
  std::size_t oblique_splits_ = 0;
};

}  // namespace condensa::mining

#endif  // CONDENSA_MINING_DECISION_TREE_H_
