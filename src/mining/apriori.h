// Apriori frequent-itemset and association-rule mining.
//
// Association rules are the third mining task the paper's introduction
// names (its references [9], [16] build bespoke perturbation-based
// variants). On condensed data the classic Apriori algorithm runs
// unchanged; `DiscretizeToTransactions` bridges numeric datasets to the
// transactional representation by equal-width binning each attribute.

#ifndef CONDENSA_MINING_APRIORI_H_
#define CONDENSA_MINING_APRIORI_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace condensa::mining {

// An item is an opaque non-negative id. A transaction is a sorted,
// duplicate-free list of items.
using Item = std::int32_t;
using Transaction = std::vector<Item>;

struct FrequentItemset {
  std::vector<Item> items;  // sorted
  // Fraction of transactions containing all items.
  double support = 0.0;
};

struct AssociationRule {
  std::vector<Item> antecedent;  // sorted, non-empty
  std::vector<Item> consequent;  // sorted, non-empty
  double support = 0.0;          // support of antecedent ∪ consequent
  double confidence = 0.0;       // support(A ∪ C) / support(A)
  double lift = 0.0;             // confidence / support(C)
};

struct AprioriOptions {
  // Minimum fraction of transactions an itemset must appear in.
  double min_support = 0.1;
  // Minimum confidence for emitted rules.
  double min_confidence = 0.6;
  // Stop growing itemsets beyond this size (0 = unlimited).
  std::size_t max_itemset_size = 4;
};

struct AprioriResult {
  // All frequent itemsets of size >= 1, sorted by (size, items).
  std::vector<FrequentItemset> itemsets;
  // All rules meeting min_confidence, sorted by decreasing confidence.
  std::vector<AssociationRule> rules;
};

// Mines `transactions`. Items inside each transaction must be sorted and
// unique. Fails on empty input or thresholds outside (0, 1].
StatusOr<AprioriResult> MineAssociationRules(
    const std::vector<Transaction>& transactions,
    const AprioriOptions& options);

// Converts a numeric dataset to transactions: attribute j's value maps to
// item j * bins + bin(value), with equal-width bins over [min_j, max_j].
// Constant attributes map to bin 0. Fails on an empty dataset or bins==0.
StatusOr<std::vector<Transaction>> DiscretizeToTransactions(
    const data::Dataset& dataset, std::size_t bins);

// Same, but with caller-provided per-dimension bounds — use one grid to
// discretize two datasets comparably (values outside the bounds clamp to
// the edge bins). Bounds dims must match the dataset.
StatusOr<std::vector<Transaction>> DiscretizeToTransactions(
    const data::Dataset& dataset, std::size_t bins,
    const linalg::Vector& lower, const linalg::Vector& upper);

}  // namespace condensa::mining

#endif  // CONDENSA_MINING_APRIORI_H_
