// Nearest-centroid (minimum-distance) classifier.
//
// The cheapest multivariate classifier; useful as a sanity baseline and in
// tests because its behaviour on condensed data is easy to reason about
// (it depends only on class means, which condensation preserves exactly).

#ifndef CONDENSA_MINING_NEAREST_CENTROID_H_
#define CONDENSA_MINING_NEAREST_CENTROID_H_

#include <map>

#include "linalg/vector.h"
#include "mining/model.h"

namespace condensa::mining {

class NearestCentroidClassifier : public Classifier {
 public:
  NearestCentroidClassifier() = default;

  Status Fit(const data::Dataset& train) override;
  int Predict(const linalg::Vector& record) const override;

  const std::map<int, linalg::Vector>& centroids() const {
    return centroids_;
  }

 private:
  std::map<int, linalg::Vector> centroids_;
};

}  // namespace condensa::mining

#endif  // CONDENSA_MINING_NEAREST_CENTROID_H_
