#include "mining/nearest_centroid.h"

#include <limits>

#include "common/check.h"

namespace condensa::mining {

Status NearestCentroidClassifier::Fit(const data::Dataset& train) {
  if (train.task() != data::TaskType::kClassification) {
    return InvalidArgumentError(
        "NearestCentroidClassifier requires classification data");
  }
  if (train.empty()) {
    return InvalidArgumentError("cannot fit on an empty dataset");
  }
  centroids_.clear();
  for (const auto& [label, indices] : train.IndicesByLabel()) {
    linalg::Vector centroid(train.dim());
    for (std::size_t i : indices) {
      centroid += train.record(i);
    }
    centroid /= static_cast<double>(indices.size());
    centroids_[label] = std::move(centroid);
  }
  return OkStatus();
}

int NearestCentroidClassifier::Predict(const linalg::Vector& record) const {
  CONDENSA_CHECK(!centroids_.empty());
  // One boundary check: every centroid shares the training dimension, so
  // checking the query against the first covers the whole loop.
  CONDENSA_CHECK_EQ(record.dim(), centroids_.begin()->second.dim());
  int best_label = centroids_.begin()->first;
  double best_distance = std::numeric_limits<double>::infinity();
  for (const auto& [label, centroid] : centroids_) {
    double distance = linalg::SquaredDistanceSpan(centroid.data(),
                                                  record.data(),
                                                  record.dim());
    if (distance < best_distance) {
      best_distance = distance;
      best_label = label;
    }
  }
  return best_label;
}

}  // namespace condensa::mining
