#include "mining/naive_bayes.h"

#include <cmath>

#include "common/check.h"

namespace condensa::mining {
namespace {

constexpr double kVarianceFloor = 1e-9;

}  // namespace

Status GaussianNaiveBayes::Fit(const data::Dataset& train) {
  if (train.task() != data::TaskType::kClassification) {
    return InvalidArgumentError(
        "GaussianNaiveBayes requires classification data");
  }
  if (train.empty()) {
    return InvalidArgumentError("cannot fit on an empty dataset");
  }

  classes_.clear();
  const std::size_t d = train.dim();
  const double total = static_cast<double>(train.size());

  for (const auto& [label, indices] : train.IndicesByLabel()) {
    ClassModel model;
    const double n = static_cast<double>(indices.size());
    model.log_prior = std::log(n / total);
    model.mean = linalg::Vector(d);
    model.variance = linalg::Vector(d);
    for (std::size_t i : indices) {
      model.mean += train.record(i);
    }
    model.mean /= n;
    for (std::size_t i : indices) {
      for (std::size_t j = 0; j < d; ++j) {
        double diff = train.record(i)[j] - model.mean[j];
        model.variance[j] += diff * diff;
      }
    }
    for (std::size_t j = 0; j < d; ++j) {
      model.variance[j] = std::max(model.variance[j] / n, kVarianceFloor);
    }
    classes_[label] = std::move(model);
  }
  return OkStatus();
}

std::map<int, double> GaussianNaiveBayes::ClassLogLikelihoods(
    const linalg::Vector& record) const {
  CONDENSA_CHECK(!classes_.empty());
  std::map<int, double> scores;
  for (const auto& [label, model] : classes_) {
    double score = model.log_prior;
    for (std::size_t j = 0; j < record.dim(); ++j) {
      double diff = record[j] - model.mean[j];
      score += -0.5 * (std::log(2.0 * M_PI * model.variance[j]) +
                       diff * diff / model.variance[j]);
    }
    scores[label] = score;
  }
  return scores;
}

int GaussianNaiveBayes::Predict(const linalg::Vector& record) const {
  std::map<int, double> scores = ClassLogLikelihoods(record);
  int best_label = scores.begin()->first;
  double best_score = scores.begin()->second;
  for (const auto& [label, score] : scores) {
    if (score > best_score) {
      best_label = label;
      best_score = score;
    }
  }
  return best_label;
}

}  // namespace condensa::mining
