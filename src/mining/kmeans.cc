#include "mining/kmeans.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "simd/distance.h"
#include "simd/record_block.h"

namespace condensa::mining {
namespace {

// k-means++ seeding: first centroid uniform, then proportional to squared
// distance from the nearest chosen centroid. `block` holds the same
// points in blocked-SoA form; the kernel's distances are bit-identical
// to linalg::SquaredDistance, so the seeding draws are unchanged.
std::vector<linalg::Vector> SeedCentroids(
    const std::vector<linalg::Vector>& points,
    const simd::RecordBlock& block, std::size_t k, Rng& rng) {
  std::vector<linalg::Vector> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.UniformIndex(points.size())]);

  std::vector<double> dist(points.size());
  std::vector<double> nearest_sq(points.size(),
                                 std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    const linalg::Vector& latest = centroids.back();
    simd::SquaredDistanceBatch(block, latest.data(), dist.data());
    for (std::size_t i = 0; i < points.size(); ++i) {
      nearest_sq[i] = std::min(nearest_sq[i], dist[i]);
    }
    double total = 0.0;
    for (double d : nearest_sq) total += d;
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; duplicate one.
      centroids.push_back(points[rng.UniformIndex(points.size())]);
      continue;
    }
    double target = rng.UniformDouble() * total;
    double cumulative = 0.0;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      cumulative += nearest_sq[i];
      if (target < cumulative) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

StatusOr<KMeansResult> KMeans(const std::vector<linalg::Vector>& points,
                              const KMeansOptions& options, Rng& rng) {
  if (options.num_clusters == 0) {
    return InvalidArgumentError("num_clusters must be at least 1");
  }
  if (points.size() < options.num_clusters) {
    return InvalidArgumentError("fewer points than clusters");
  }
  const std::size_t d = points.front().dim();
  for (const linalg::Vector& p : points) {
    if (p.dim() != d) {
      return InvalidArgumentError("points have inconsistent dimensions");
    }
  }

  const simd::RecordBlock block = simd::RecordBlock::FromVectors(points);

  KMeansResult result;
  result.centroids = SeedCentroids(points, block, options.num_clusters, rng);
  result.assignments.assign(points.size(), 0);

  std::vector<double> dist(points.size());
  std::vector<double> best_distance(points.size());
  std::vector<std::size_t> best(points.size());
  for (result.iterations = 0; result.iterations < options.max_iterations;
       ++result.iterations) {
    bool changed = false;
    // Assignment step: one batch-distance scan per centroid, folded into
    // a running argmin. The fold compares centroids in ascending order
    // with strict <, exactly like the old per-point inner loop, so the
    // first of several equidistant centroids still wins and assignments
    // are bit-identical.
    std::fill(best_distance.begin(), best_distance.end(),
              std::numeric_limits<double>::infinity());
    std::fill(best.begin(), best.end(), std::size_t{0});
    for (std::size_t c = 0; c < result.centroids.size(); ++c) {
      simd::SquaredDistanceBatch(block, result.centroids[c].data(),
                                 dist.data());
      for (std::size_t i = 0; i < points.size(); ++i) {
        if (dist[i] < best_distance[i]) {
          best_distance[i] = dist[i];
          best[i] = c;
        }
      }
    }
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (result.assignments[i] != best[i]) {
        result.assignments[i] = best[i];
        changed = true;
      }
    }
    if (!changed && result.iterations > 0) break;

    // Update step. Empty clusters keep their previous centroid.
    std::vector<linalg::Vector> sums(options.num_clusters,
                                     linalg::Vector(d));
    std::vector<std::size_t> counts(options.num_clusters, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      sums[result.assignments[i]] += points[i];
      ++counts[result.assignments[i]];
    }
    for (std::size_t c = 0; c < options.num_clusters; ++c) {
      if (counts[c] > 0) {
        result.centroids[c] = sums[c] / static_cast<double>(counts[c]);
      }
    }
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.inertia += linalg::SquaredDistance(
        points[i], result.centroids[result.assignments[i]]);
  }
  return result;
}

}  // namespace condensa::mining
