#include "mining/kmeans.h"

#include <limits>

#include "common/check.h"

namespace condensa::mining {
namespace {

// k-means++ seeding: first centroid uniform, then proportional to squared
// distance from the nearest chosen centroid.
std::vector<linalg::Vector> SeedCentroids(
    const std::vector<linalg::Vector>& points, std::size_t k, Rng& rng) {
  std::vector<linalg::Vector> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.UniformIndex(points.size())]);

  std::vector<double> nearest_sq(points.size(),
                                 std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    const linalg::Vector& latest = centroids.back();
    for (std::size_t i = 0; i < points.size(); ++i) {
      nearest_sq[i] = std::min(nearest_sq[i],
                               linalg::SquaredDistance(points[i], latest));
    }
    double total = 0.0;
    for (double d : nearest_sq) total += d;
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; duplicate one.
      centroids.push_back(points[rng.UniformIndex(points.size())]);
      continue;
    }
    double target = rng.UniformDouble() * total;
    double cumulative = 0.0;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      cumulative += nearest_sq[i];
      if (target < cumulative) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

StatusOr<KMeansResult> KMeans(const std::vector<linalg::Vector>& points,
                              const KMeansOptions& options, Rng& rng) {
  if (options.num_clusters == 0) {
    return InvalidArgumentError("num_clusters must be at least 1");
  }
  if (points.size() < options.num_clusters) {
    return InvalidArgumentError("fewer points than clusters");
  }
  const std::size_t d = points.front().dim();
  for (const linalg::Vector& p : points) {
    if (p.dim() != d) {
      return InvalidArgumentError("points have inconsistent dimensions");
    }
  }

  KMeansResult result;
  result.centroids = SeedCentroids(points, options.num_clusters, rng);
  result.assignments.assign(points.size(), 0);

  for (result.iterations = 0; result.iterations < options.max_iterations;
       ++result.iterations) {
    bool changed = false;
    // Assignment step.
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::size_t best = 0;
      double best_distance = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < result.centroids.size(); ++c) {
        double distance =
            linalg::SquaredDistance(points[i], result.centroids[c]);
        if (distance < best_distance) {
          best_distance = distance;
          best = c;
        }
      }
      if (result.assignments[i] != best) {
        result.assignments[i] = best;
        changed = true;
      }
    }
    if (!changed && result.iterations > 0) break;

    // Update step. Empty clusters keep their previous centroid.
    std::vector<linalg::Vector> sums(options.num_clusters,
                                     linalg::Vector(d));
    std::vector<std::size_t> counts(options.num_clusters, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      sums[result.assignments[i]] += points[i];
      ++counts[result.assignments[i]];
    }
    for (std::size_t c = 0; c < options.num_clusters; ++c) {
      if (counts[c] > 0) {
        result.centroids[c] = sums[c] / static_cast<double>(counts[c]);
      }
    }
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.inertia += linalg::SquaredDistance(
        points[i], result.centroids[result.assignments[i]]);
  }
  return result;
}

}  // namespace condensa::mining
