// DBSCAN density-based clustering.
//
// The paper's anomaly discussion cites density-based clustering (its
// reference [10], Hinneburg & Keim) as another mining task sensitive to
// noise. DBSCAN runs unchanged on condensed data and doubles as an
// anomaly detector: its noise points are the low-density records whose
// masking the paper's Section 2.2 calls out as inherently hard.
// Neighbourhood queries run on the k-d tree substrate.

#ifndef CONDENSA_MINING_DBSCAN_H_
#define CONDENSA_MINING_DBSCAN_H_

#include <vector>

#include "common/status.h"
#include "linalg/vector.h"

namespace condensa::mining {

struct DbscanOptions {
  // Neighbourhood radius.
  double epsilon = 0.5;
  // A point with >= min_points neighbours (itself included) is a core
  // point.
  std::size_t min_points = 5;
};

struct DbscanResult {
  // Cluster id per point; kNoise for noise points.
  static constexpr std::size_t kNoise = static_cast<std::size_t>(-1);
  std::vector<std::size_t> assignments;
  std::size_t num_clusters = 0;

  // Number of noise points.
  std::size_t NoiseCount() const;
};

// Clusters `points`. Fails on empty input, non-positive epsilon, or
// min_points == 0.
StatusOr<DbscanResult> Dbscan(const std::vector<linalg::Vector>& points,
                              const DbscanOptions& options);

}  // namespace condensa::mining

#endif  // CONDENSA_MINING_DBSCAN_H_
