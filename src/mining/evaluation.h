// Model evaluation harness.
//
// These helpers compute the two quality measures the paper's figures use:
// classification accuracy and, for Abalone, within-tolerance regression
// accuracy ("the percentage of the time that the age was predicted within
// an accuracy of less than one year").

#ifndef CONDENSA_MINING_EVALUATION_H_
#define CONDENSA_MINING_EVALUATION_H_

#include <map>

#include "common/random.h"
#include "common/status.h"
#include "data/dataset.h"
#include "mining/model.h"

namespace condensa::mining {

// Fraction of `test` records the fitted classifier labels correctly.
// Fails on an empty or non-classification test set.
StatusOr<double> EvaluateAccuracy(const Classifier& classifier,
                                  const data::Dataset& test);

// Fraction of `test` records with |prediction − target| <= tolerance.
StatusOr<double> EvaluateWithinTolerance(const Regressor& regressor,
                                         const data::Dataset& test,
                                         double tolerance);

// Mean absolute error over `test`.
StatusOr<double> EvaluateMeanAbsoluteError(const Regressor& regressor,
                                           const data::Dataset& test);

// Confusion counts: result[true_label][predicted_label].
StatusOr<std::map<int, std::map<int, std::size_t>>> ConfusionMatrix(
    const Classifier& classifier, const data::Dataset& test);

// k-fold cross-validated accuracy: fits `classifier` on each train fold
// and averages accuracy over the held-out folds. The classifier is refit
// in place (its last fit is the final fold's).
StatusOr<double> CrossValidateAccuracy(Classifier& classifier,
                                       const data::Dataset& dataset,
                                       std::size_t folds, Rng& rng);

}  // namespace condensa::mining

#endif  // CONDENSA_MINING_EVALUATION_H_
