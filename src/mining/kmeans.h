// Lloyd's k-means with k-means++ seeding.
//
// Clustering is the second mining task the paper motivates ("it would be
// interesting to study other data mining problems as well"); the benches
// use it to verify that cluster structure survives condensation.

#ifndef CONDENSA_MINING_KMEANS_H_
#define CONDENSA_MINING_KMEANS_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "linalg/vector.h"

namespace condensa::mining {

struct KMeansOptions {
  std::size_t num_clusters = 2;
  std::size_t max_iterations = 100;
  // Converged when no assignment changes in an iteration.
};

struct KMeansResult {
  std::vector<linalg::Vector> centroids;     // num_clusters entries
  std::vector<std::size_t> assignments;      // one per input point
  double inertia = 0.0;                      // Σ ||x - centroid(x)||²
  std::size_t iterations = 0;
};

// Clusters `points`. Fails when points.size() < num_clusters or
// num_clusters == 0.
StatusOr<KMeansResult> KMeans(const std::vector<linalg::Vector>& points,
                              const KMeansOptions& options, Rng& rng);

}  // namespace condensa::mining

#endif  // CONDENSA_MINING_KMEANS_H_
