#include "mining/apriori.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"

namespace condensa::mining {
namespace {

// True when `needle` (sorted) is a subset of `haystack` (sorted).
bool IsSubset(const std::vector<Item>& needle,
              const std::vector<Item>& haystack) {
  return std::includes(haystack.begin(), haystack.end(), needle.begin(),
                       needle.end());
}

// Counts the transactions containing every item of `items`.
std::size_t CountSupport(const std::vector<Transaction>& transactions,
                         const std::vector<Item>& items) {
  std::size_t count = 0;
  for (const Transaction& t : transactions) {
    if (IsSubset(items, t)) ++count;
  }
  return count;
}

// Apriori candidate generation: joins pairs of frequent (k-1)-itemsets
// sharing their first k-2 items, then prunes candidates with an
// infrequent subset.
std::vector<std::vector<Item>> GenerateCandidates(
    const std::vector<std::vector<Item>>& frequent_prev) {
  std::vector<std::vector<Item>> candidates;
  for (std::size_t a = 0; a < frequent_prev.size(); ++a) {
    for (std::size_t b = a + 1; b < frequent_prev.size(); ++b) {
      const std::vector<Item>& x = frequent_prev[a];
      const std::vector<Item>& y = frequent_prev[b];
      if (!std::equal(x.begin(), x.end() - 1, y.begin(), y.end() - 1)) {
        continue;
      }
      std::vector<Item> joined = x;
      joined.push_back(y.back());
      if (joined[joined.size() - 2] > joined.back()) {
        std::swap(joined[joined.size() - 2], joined.back());
      }
      // Prune: every (k-1)-subset must itself be frequent.
      bool all_subsets_frequent = true;
      for (std::size_t skip = 0;
           skip < joined.size() && all_subsets_frequent; ++skip) {
        std::vector<Item> subset;
        subset.reserve(joined.size() - 1);
        for (std::size_t i = 0; i < joined.size(); ++i) {
          if (i != skip) subset.push_back(joined[i]);
        }
        all_subsets_frequent =
            std::binary_search(frequent_prev.begin(), frequent_prev.end(),
                               subset);
      }
      if (all_subsets_frequent) {
        candidates.push_back(std::move(joined));
      }
    }
  }
  return candidates;
}

// Enumerates all non-empty proper subsets of `items` as antecedents.
void EmitRulesFromItemset(const FrequentItemset& itemset,
                          const std::map<std::vector<Item>, double>& supports,
                          const AprioriOptions& options,
                          std::vector<AssociationRule>& rules) {
  const std::size_t n = itemset.items.size();
  if (n < 2) return;
  // Bitmask over itemset members; skip empty and full masks.
  for (std::uint32_t mask = 1; mask + 1 < (1u << n); ++mask) {
    AssociationRule rule;
    for (std::size_t i = 0; i < n; ++i) {
      ((mask >> i) & 1u ? rule.antecedent : rule.consequent)
          .push_back(itemset.items[i]);
    }
    auto antecedent_support = supports.find(rule.antecedent);
    auto consequent_support = supports.find(rule.consequent);
    CONDENSA_DCHECK(antecedent_support != supports.end());
    CONDENSA_DCHECK(consequent_support != supports.end());
    rule.support = itemset.support;
    rule.confidence = itemset.support / antecedent_support->second;
    if (rule.confidence + 1e-12 < options.min_confidence) continue;
    rule.lift = consequent_support->second > 0.0
                    ? rule.confidence / consequent_support->second
                    : 0.0;
    rules.push_back(std::move(rule));
  }
}

}  // namespace

StatusOr<AprioriResult> MineAssociationRules(
    const std::vector<Transaction>& transactions,
    const AprioriOptions& options) {
  if (transactions.empty()) {
    return InvalidArgumentError("no transactions");
  }
  if (!(options.min_support > 0.0 && options.min_support <= 1.0)) {
    return InvalidArgumentError("min_support must be in (0, 1]");
  }
  if (!(options.min_confidence > 0.0 && options.min_confidence <= 1.0)) {
    return InvalidArgumentError("min_confidence must be in (0, 1]");
  }
  for (const Transaction& t : transactions) {
    if (!std::is_sorted(t.begin(), t.end()) ||
        std::adjacent_find(t.begin(), t.end()) != t.end()) {
      return InvalidArgumentError(
          "transactions must be sorted and duplicate-free");
    }
    for (Item item : t) {
      if (item < 0) {
        return InvalidArgumentError("items must be non-negative");
      }
    }
  }

  const double n = static_cast<double>(transactions.size());
  const std::size_t min_count = static_cast<std::size_t>(
      std::max(1.0, std::ceil(options.min_support * n - 1e-9)));

  AprioriResult result;
  std::map<std::vector<Item>, double> supports;

  // Level 1: frequent single items.
  std::map<Item, std::size_t> singles;
  for (const Transaction& t : transactions) {
    for (Item item : t) {
      ++singles[item];
    }
  }
  std::vector<std::vector<Item>> frequent;
  for (const auto& [item, count] : singles) {
    if (count >= min_count) {
      frequent.push_back({item});
      double support = static_cast<double>(count) / n;
      supports[{item}] = support;
      result.itemsets.push_back({{item}, support});
    }
  }

  // Levels 2..max: generate, count, filter.
  std::size_t level = 2;
  while (!frequent.empty() &&
         (options.max_itemset_size == 0 ||
          level <= options.max_itemset_size)) {
    std::vector<std::vector<Item>> candidates = GenerateCandidates(frequent);
    std::vector<std::vector<Item>> next_frequent;
    for (std::vector<Item>& candidate : candidates) {
      std::size_t count = CountSupport(transactions, candidate);
      if (count >= min_count) {
        double support = static_cast<double>(count) / n;
        supports[candidate] = support;
        result.itemsets.push_back({candidate, support});
        next_frequent.push_back(std::move(candidate));
      }
    }
    frequent = std::move(next_frequent);
    ++level;
  }

  // Rules from every frequent itemset of size >= 2.
  for (const FrequentItemset& itemset : result.itemsets) {
    EmitRulesFromItemset(itemset, supports, options, result.rules);
  }
  std::sort(result.rules.begin(), result.rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.support != b.support) return a.support > b.support;
              if (a.antecedent != b.antecedent) {
                return a.antecedent < b.antecedent;
              }
              return a.consequent < b.consequent;
            });
  return result;
}

StatusOr<std::vector<Transaction>> DiscretizeToTransactions(
    const data::Dataset& dataset, std::size_t bins) {
  if (dataset.empty()) {
    return InvalidArgumentError("empty dataset");
  }
  const std::size_t d = dataset.dim();
  linalg::Vector lower = dataset.record(0);
  linalg::Vector upper = dataset.record(0);
  for (const linalg::Vector& record : dataset.records()) {
    for (std::size_t j = 0; j < d; ++j) {
      lower[j] = std::min(lower[j], record[j]);
      upper[j] = std::max(upper[j], record[j]);
    }
  }
  return DiscretizeToTransactions(dataset, bins, lower, upper);
}

StatusOr<std::vector<Transaction>> DiscretizeToTransactions(
    const data::Dataset& dataset, std::size_t bins,
    const linalg::Vector& lower, const linalg::Vector& upper) {
  if (dataset.empty()) {
    return InvalidArgumentError("empty dataset");
  }
  if (bins == 0) {
    return InvalidArgumentError("need at least one bin");
  }
  const std::size_t d = dataset.dim();
  if (lower.dim() != d || upper.dim() != d) {
    return InvalidArgumentError("bounds dimension mismatch");
  }

  std::vector<Transaction> transactions;
  transactions.reserve(dataset.size());
  for (const linalg::Vector& record : dataset.records()) {
    Transaction t;
    t.reserve(d);
    for (std::size_t j = 0; j < d; ++j) {
      double span = upper[j] - lower[j];
      std::size_t bin = 0;
      if (span > 0.0) {
        double normalized =
            std::clamp((record[j] - lower[j]) / span, 0.0, 1.0);
        bin = static_cast<std::size_t>(normalized *
                                       static_cast<double>(bins));
        bin = std::min(bin, bins - 1);
      }
      t.push_back(static_cast<Item>(j * bins + bin));
    }
    transactions.push_back(std::move(t));
  }
  return transactions;
}

}  // namespace condensa::mining
