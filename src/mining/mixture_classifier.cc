#include "mining/mixture_classifier.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "linalg/cholesky.h"

namespace condensa::mining {
namespace {

// log Σ exp(values) computed stably.
double LogSumExp(const std::vector<double>& values) {
  double peak = -std::numeric_limits<double>::infinity();
  for (double v : values) peak = std::max(peak, v);
  if (!std::isfinite(peak)) return peak;
  double total = 0.0;
  for (double v : values) total += std::exp(v - peak);
  return peak + std::log(total);
}

}  // namespace

Status CondensedMixtureClassifier::Fit(const core::CondensedPools& pools) {
  if (pools.task != data::TaskType::kClassification) {
    return InvalidArgumentError(
        "CondensedMixtureClassifier requires classification pools");
  }
  if (pools.pools.empty()) {
    return InvalidArgumentError("no pools to fit from");
  }

  classes_.clear();
  dim_ = pools.feature_dim;
  double total_records = 0.0;
  for (const core::CondensedPools::Pool& pool : pools.pools) {
    total_records += static_cast<double>(pool.groups.TotalRecords());
  }
  if (total_records <= 0.0) {
    return InvalidArgumentError("pools contain no records");
  }

  for (const core::CondensedPools::Pool& pool : pools.pools) {
    const double class_records =
        static_cast<double>(pool.groups.TotalRecords());
    if (class_records <= 0.0) continue;

    ClassModel model;
    model.log_prior = std::log(class_records / total_records);
    for (const core::GroupStatistics& group : pool.groups.groups()) {
      Component component;
      component.log_weight =
          std::log(static_cast<double>(group.count()) / class_records);
      component.mean = group.Centroid();

      linalg::Matrix covariance = group.Covariance();
      // Relative ridge with an absolute floor so an all-zero covariance
      // (identical records) still factorizes.
      double ridge = std::max(options_.relative_ridge * covariance.MaxAbs(),
                              1e-9);
      for (std::size_t j = 0; j < covariance.rows(); ++j) {
        covariance(j, j) += ridge;
      }
      auto factor = linalg::CholeskyFactor(covariance);
      if (!factor.ok()) {
        return FailedPreconditionError(
            "group covariance not factorizable; raise relative_ridge");
      }
      component.log_norm =
          -0.5 * (static_cast<double>(dim_) * std::log(2.0 * M_PI) +
                  linalg::CholeskyLogDet(*factor));
      component.cholesky = std::move(*factor);
      model.components.push_back(std::move(component));
    }
    classes_.emplace(pool.label, std::move(model));
  }
  if (classes_.empty()) {
    return InvalidArgumentError("no non-empty classes");
  }
  return OkStatus();
}

std::map<int, double> CondensedMixtureClassifier::ClassLogScores(
    const linalg::Vector& record) const {
  CONDENSA_CHECK(!classes_.empty());
  CONDENSA_CHECK_EQ(record.dim(), dim_);
  std::map<int, double> scores;
  for (const auto& [label, model] : classes_) {
    std::vector<double> component_scores;
    component_scores.reserve(model.components.size());
    for (const Component& component : model.components) {
      // Mahalanobis term via the Cholesky solve: (x−m)ᵀ C⁻¹ (x−m).
      linalg::Vector diff = record - component.mean;
      linalg::Vector solved = linalg::CholeskySolve(component.cholesky, diff);
      double mahalanobis = linalg::Dot(diff, solved);
      component_scores.push_back(component.log_weight + component.log_norm -
                                 0.5 * mahalanobis);
    }
    scores[label] = model.log_prior + LogSumExp(component_scores);
  }
  return scores;
}

int CondensedMixtureClassifier::Predict(const linalg::Vector& record) const {
  std::map<int, double> scores = ClassLogScores(record);
  int best_label = scores.begin()->first;
  double best_score = scores.begin()->second;
  for (const auto& [label, score] : scores) {
    if (score > best_score) {
      best_score = score;
      best_label = label;
    }
  }
  return best_label;
}

}  // namespace condensa::mining
