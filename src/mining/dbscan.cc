#include "mining/dbscan.h"

#include <deque>

#include "common/check.h"
#include "index/kdtree.h"

namespace condensa::mining {

std::size_t DbscanResult::NoiseCount() const {
  std::size_t noise = 0;
  for (std::size_t a : assignments) {
    if (a == kNoise) ++noise;
  }
  return noise;
}

StatusOr<DbscanResult> Dbscan(const std::vector<linalg::Vector>& points,
                              const DbscanOptions& options) {
  if (points.empty()) {
    return InvalidArgumentError("cannot cluster an empty point set");
  }
  if (options.epsilon <= 0.0) {
    return InvalidArgumentError("epsilon must be positive");
  }
  if (options.min_points == 0) {
    return InvalidArgumentError("min_points must be at least 1");
  }
  CONDENSA_ASSIGN_OR_RETURN(index::KdTree tree, index::KdTree::Build(points));

  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-2);
  DbscanResult result;
  result.assignments.assign(points.size(), kUnvisited);

  for (std::size_t seed = 0; seed < points.size(); ++seed) {
    if (result.assignments[seed] != kUnvisited) continue;
    std::vector<std::size_t> neighbours =
        tree.RadiusSearch(points[seed], options.epsilon);
    if (neighbours.size() < options.min_points) {
      result.assignments[seed] = DbscanResult::kNoise;
      continue;
    }

    // Grow a new cluster from this core point (standard BFS expansion).
    const std::size_t cluster = result.num_clusters++;
    result.assignments[seed] = cluster;
    std::deque<std::size_t> frontier(neighbours.begin(), neighbours.end());
    while (!frontier.empty()) {
      std::size_t current = frontier.front();
      frontier.pop_front();
      if (result.assignments[current] == DbscanResult::kNoise) {
        // Border point previously marked noise: absorb into the cluster.
        result.assignments[current] = cluster;
      }
      if (result.assignments[current] != kUnvisited) continue;
      result.assignments[current] = cluster;
      std::vector<std::size_t> expansion =
          tree.RadiusSearch(points[current], options.epsilon);
      if (expansion.size() >= options.min_points) {
        for (std::size_t next : expansion) {
          if (result.assignments[next] == kUnvisited ||
              result.assignments[next] == DbscanResult::kNoise) {
            frontier.push_back(next);
          }
        }
      }
    }
  }
  return result;
}

}  // namespace condensa::mining
