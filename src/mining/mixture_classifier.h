// Classifier over condensed group statistics — no regenerated data.
//
// The paper's pipeline regenerates records so existing algorithms run
// unchanged. This classifier shows the other option the retained
// statistics enable: model each class directly as a mixture of Gaussians,
// one component per condensed group (weight n(G), mean = centroid,
// covariance = group covariance), and classify by posterior. The server
// can answer classification queries without ever materializing a release.
// Comparing it against k-NN-on-regenerated-data quantifies how little the
// regeneration step loses.

#ifndef CONDENSA_MINING_MIXTURE_CLASSIFIER_H_
#define CONDENSA_MINING_MIXTURE_CLASSIFIER_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace condensa::mining {

struct MixtureClassifierOptions {
  // Ridge added to each group covariance diagonal (relative to its
  // largest entry) so degenerate groups stay invertible.
  double relative_ridge = 1e-4;
};

class CondensedMixtureClassifier {
 public:
  explicit CondensedMixtureClassifier(MixtureClassifierOptions options = {})
      : options_(options) {}

  // Fits from classification pools (core::CondensationEngine::Condense
  // output). Fails for non-classification pools or empty input.
  Status Fit(const core::CondensedPools& pools);

  // Most probable class of `record`. Requires a successful Fit.
  int Predict(const linalg::Vector& record) const;

  // Log of prior(class) · Σ_G w_G N(record; mean_G, cov_G), per class.
  std::map<int, double> ClassLogScores(const linalg::Vector& record) const;

 private:
  struct Component {
    double log_weight = 0.0;       // log(n(G)/n(class))
    linalg::Vector mean;
    linalg::Matrix cholesky;       // factor of (regularized) covariance
    double log_norm = 0.0;         // -½(d log 2π + log|C|)
  };
  struct ClassModel {
    double log_prior = 0.0;
    std::vector<Component> components;
  };

  MixtureClassifierOptions options_;
  std::map<int, ClassModel> classes_;
  std::size_t dim_ = 0;
};

}  // namespace condensa::mining

#endif  // CONDENSA_MINING_MIXTURE_CLASSIFIER_H_
