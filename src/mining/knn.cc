#include "mining/knn.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace condensa::mining {

std::vector<std::size_t> NearestNeighbors(const data::Dataset& dataset,
                                          const linalg::Vector& query,
                                          std::size_t k) {
  CONDENSA_CHECK(!dataset.empty());
  k = std::min(k, dataset.size());

  std::vector<std::pair<double, std::size_t>> distances;
  distances.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    distances.emplace_back(linalg::SquaredDistance(dataset.record(i), query),
                           i);
  }
  std::partial_sort(distances.begin(), distances.begin() + k,
                    distances.end());

  std::vector<std::size_t> indices;
  indices.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    indices.push_back(distances[i].second);
  }
  return indices;
}

namespace {

// Builds a k-d index when the strategy (or heuristic) calls for one.
// Indexing pays off when the training set is large relative to its
// dimension; in very high dimensions pruning stops working and a linear
// scan is faster.
StatusOr<std::optional<index::KdTree>> MaybeBuildIndex(
    const data::Dataset& train, SearchStrategy strategy) {
  bool build = false;
  switch (strategy) {
    case SearchStrategy::kBruteForce:
      build = false;
      break;
    case SearchStrategy::kKdTree:
      build = true;
      break;
    case SearchStrategy::kAuto:
      build = train.size() >= 512 && train.dim() <= 12;
      break;
  }
  if (!build) {
    return std::optional<index::KdTree>();
  }
  CONDENSA_ASSIGN_OR_RETURN(index::KdTree tree,
                            index::KdTree::Build(train.records()));
  return std::optional<index::KdTree>(std::move(tree));
}

}  // namespace

Status KnnClassifier::Fit(const data::Dataset& train) {
  if (options_.k == 0) {
    return InvalidArgumentError("k must be at least 1");
  }
  if (train.task() != data::TaskType::kClassification) {
    return InvalidArgumentError("KnnClassifier requires classification data");
  }
  if (train.empty()) {
    return InvalidArgumentError("cannot fit on an empty dataset");
  }
  index_.reset();  // never reference the previous training set
  train_ = train;
  CONDENSA_ASSIGN_OR_RETURN(index_,
                            MaybeBuildIndex(train_, options_.strategy));
  return OkStatus();
}

int KnnClassifier::Predict(const linalg::Vector& record) const {
  CONDENSA_CHECK(!train_.empty());
  std::vector<std::size_t> neighbours =
      index_.has_value() ? index_->KNearest(record, options_.k)
                         : NearestNeighbors(train_, record, options_.k);

  // Majority vote; break ties by smaller cumulative distance, then by
  // smaller label so prediction is deterministic.
  struct VoteInfo {
    std::size_t votes = 0;
    double total_distance = 0.0;
  };
  std::map<int, VoteInfo> votes;
  for (std::size_t index : neighbours) {
    VoteInfo& info = votes[train_.label(index)];
    ++info.votes;
    info.total_distance +=
        linalg::Distance(train_.record(index), record);
  }
  int best_label = votes.begin()->first;
  VoteInfo best = votes.begin()->second;
  for (const auto& [label, info] : votes) {
    bool better = info.votes > best.votes ||
                  (info.votes == best.votes &&
                   info.total_distance < best.total_distance);
    if (better) {
      best_label = label;
      best = info;
    }
  }
  return best_label;
}

Status KnnRegressor::Fit(const data::Dataset& train) {
  if (options_.k == 0) {
    return InvalidArgumentError("k must be at least 1");
  }
  if (train.task() != data::TaskType::kRegression) {
    return InvalidArgumentError("KnnRegressor requires regression data");
  }
  if (train.empty()) {
    return InvalidArgumentError("cannot fit on an empty dataset");
  }
  index_.reset();  // never reference the previous training set
  train_ = train;
  CONDENSA_ASSIGN_OR_RETURN(index_,
                            MaybeBuildIndex(train_, options_.strategy));
  return OkStatus();
}

double KnnRegressor::Predict(const linalg::Vector& record) const {
  CONDENSA_CHECK(!train_.empty());
  std::vector<std::size_t> neighbours =
      index_.has_value() ? index_->KNearest(record, options_.k)
                         : NearestNeighbors(train_, record, options_.k);
  double total = 0.0;
  for (std::size_t index : neighbours) {
    total += train_.target(index);
  }
  return total / static_cast<double>(neighbours.size());
}

}  // namespace condensa::mining
