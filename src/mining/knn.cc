#include "mining/knn.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "simd/distance.h"

namespace condensa::mining {

std::vector<std::pair<double, std::size_t>> NearestNeighborsWithDistances(
    const simd::RecordBlock& records, const linalg::Vector& query,
    std::size_t k) {
  CONDENSA_CHECK(!records.empty());
  CONDENSA_CHECK_EQ(query.dim(), records.dim());
  k = std::min(k, records.size());

  std::vector<double> dist(records.size());
  simd::SquaredDistanceBatch(records, query.data(), dist.data());
  std::vector<std::pair<double, std::size_t>> distances;
  distances.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    distances.emplace_back(dist[i], i);
  }
  std::partial_sort(distances.begin(), distances.begin() + k,
                    distances.end());
  distances.resize(k);
  return distances;
}

std::vector<std::size_t> NearestNeighbors(const data::Dataset& dataset,
                                          const linalg::Vector& query,
                                          std::size_t k) {
  CONDENSA_CHECK(!dataset.empty());
  const simd::RecordBlock block =
      simd::RecordBlock::FromVectors(dataset.records());
  std::vector<std::pair<double, std::size_t>> nearest =
      NearestNeighborsWithDistances(block, query, k);

  std::vector<std::size_t> indices;
  indices.reserve(nearest.size());
  for (const auto& [distance_sq, index] : nearest) {
    indices.push_back(index);
  }
  return indices;
}

namespace {

// Builds a k-d index when the strategy (or heuristic) calls for one.
// Indexing pays off when the training set is large relative to its
// dimension; in very high dimensions pruning stops working and a linear
// scan is faster.
StatusOr<std::optional<index::KdTree>> MaybeBuildIndex(
    const data::Dataset& train, SearchStrategy strategy) {
  bool build = false;
  switch (strategy) {
    case SearchStrategy::kBruteForce:
      build = false;
      break;
    case SearchStrategy::kKdTree:
      build = true;
      break;
    case SearchStrategy::kAuto:
      build = train.size() >= 512 && train.dim() <= 12;
      break;
  }
  if (!build) {
    return std::optional<index::KdTree>();
  }
  CONDENSA_ASSIGN_OR_RETURN(index::KdTree tree,
                            index::KdTree::Build(train.records()));
  return std::optional<index::KdTree>(std::move(tree));
}

// Both prediction paths return the neighbour set as ascending (squared
// distance, training index) pairs: the brute path from one batch-kernel
// scan over the pre-blocked training set, the index path from a keyed
// k-d traversal with the identity key. The tie-break key is the training
// index on both, so the two strategies select identical neighbour sets
// even on duplicate-heavy data.
std::vector<std::pair<double, std::size_t>> Neighbours(
    const std::optional<index::KdTree>& index, const simd::RecordBlock& block,
    const linalg::Vector& record, std::size_t k) {
  if (index.has_value()) {
    return index->KNearestKeyed(record, k,
                                [](std::size_t i) { return i; });
  }
  return NearestNeighborsWithDistances(block, record, k);
}

}  // namespace

Status KnnClassifier::Fit(const data::Dataset& train) {
  if (options_.k == 0) {
    return InvalidArgumentError("k must be at least 1");
  }
  if (train.task() != data::TaskType::kClassification) {
    return InvalidArgumentError("KnnClassifier requires classification data");
  }
  if (train.empty()) {
    return InvalidArgumentError("cannot fit on an empty dataset");
  }
  index_.reset();  // never reference the previous training set
  train_ = train;
  CONDENSA_ASSIGN_OR_RETURN(index_,
                            MaybeBuildIndex(train_, options_.strategy));
  // The brute path scans the blocked copy; when the index answers
  // queries the copy would sit unused, so skip it.
  block_ = index_.has_value()
               ? simd::RecordBlock(0)
               : simd::RecordBlock::FromVectors(train_.records());
  return OkStatus();
}

int KnnClassifier::Predict(const linalg::Vector& record) const {
  CONDENSA_CHECK(!train_.empty());
  const std::vector<std::pair<double, std::size_t>> neighbours =
      Neighbours(index_, block_, record, options_.k);

  // Majority vote; break ties by smaller cumulative distance, then by
  // smaller label so prediction is deterministic. The scan already
  // produced each neighbour's squared distance; sqrt of it is exactly
  // linalg::Distance, with no second pass over the records.
  struct VoteInfo {
    std::size_t votes = 0;
    double total_distance = 0.0;
  };
  std::map<int, VoteInfo> votes;
  for (const auto& [distance_sq, index] : neighbours) {
    VoteInfo& info = votes[train_.label(index)];
    ++info.votes;
    info.total_distance += std::sqrt(distance_sq);
  }
  int best_label = votes.begin()->first;
  VoteInfo best = votes.begin()->second;
  for (const auto& [label, info] : votes) {
    bool better = info.votes > best.votes ||
                  (info.votes == best.votes &&
                   info.total_distance < best.total_distance);
    if (better) {
      best_label = label;
      best = info;
    }
  }
  return best_label;
}

Status KnnRegressor::Fit(const data::Dataset& train) {
  if (options_.k == 0) {
    return InvalidArgumentError("k must be at least 1");
  }
  if (train.task() != data::TaskType::kRegression) {
    return InvalidArgumentError("KnnRegressor requires regression data");
  }
  if (train.empty()) {
    return InvalidArgumentError("cannot fit on an empty dataset");
  }
  index_.reset();  // never reference the previous training set
  train_ = train;
  CONDENSA_ASSIGN_OR_RETURN(index_,
                            MaybeBuildIndex(train_, options_.strategy));
  block_ = index_.has_value()
               ? simd::RecordBlock(0)
               : simd::RecordBlock::FromVectors(train_.records());
  return OkStatus();
}

double KnnRegressor::Predict(const linalg::Vector& record) const {
  CONDENSA_CHECK(!train_.empty());
  const std::vector<std::pair<double, std::size_t>> neighbours =
      Neighbours(index_, block_, record, options_.k);
  double total = 0.0;
  for (const auto& [distance_sq, index] : neighbours) {
    total += train_.target(index);
  }
  return total / static_cast<double>(neighbours.size());
}

}  // namespace condensa::mining
