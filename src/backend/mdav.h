// MDAV-style microaggregation (Maximum Distance to Average Vector;
// Domingo-Ferrer & Torra's fixed-size heuristic, the workhorse group
// builder of the microaggregation literature — see arXiv:1812.01790 and
// arXiv:1512.02909 for descendants).
//
// Construction (deterministic — the Rng is never drawn from):
//   while >= 3k records remain:
//     take xr, the record farthest from the centroid of the remainder,
//     and group it with its k-1 nearest neighbours; then take xs, the
//     remaining record farthest from xr, and group it likewise.
//   if between 2k and 3k-1 remain: one group of k around the farthest
//     record, the rest (k..2k-1 records) form the final group.
//   else (k..2k-1 remain): they form the final group.
//
// Every group therefore has between k and 2k-1 members (pinned by
// tests/backend/mdav_test.cc). Ties — equidistant records — resolve by
// the smaller original index, matching the repo-wide (distance, index)
// convention, so the partition is a pure function of the input order.
//
// Two registered backends share this construction:
//   "mdav"        centroid-replacement regeneration (each group emits
//                 copies of its centroid — classical microaggregation);
//   "mdav-eigen"  variance-preserving regeneration through the built-in
//                 eigendecomposition sampler of core/anonymizer.h.

#ifndef CONDENSA_BACKEND_MDAV_H_
#define CONDENSA_BACKEND_MDAV_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "backend/backend.h"
#include "common/status.h"
#include "core/condensed_group_set.h"
#include "linalg/vector.h"

namespace condensa::backend {

// The construction step as a free function. When `assignments` is
// non-null it receives, per group, the member indices into `points` in
// the exact order they were folded into the aggregate — so a test can
// re-fold them and compare moments bit-for-bit. Fails on empty input,
// k == 0, fewer than k records, or inconsistent dimensions.
StatusOr<core::CondensedGroupSet> MdavBuildGroups(
    const std::vector<linalg::Vector>& points, std::size_t k,
    std::vector<std::vector<std::size_t>>* assignments = nullptr);

// Backend id "mdav", version 1 (centroid-replacement regeneration).
std::unique_ptr<AnonymizationBackend> MakeMdavBackend();

// Backend id "mdav-eigen", version 1 (eigendecomposition regeneration).
std::unique_ptr<AnonymizationBackend> MakeMdavEigenBackend();

}  // namespace condensa::backend

#endif  // CONDENSA_BACKEND_MDAV_H_
