// Pluggable anonymization backends (docs/backends.md).
//
// Every backend in the group-then-summarize family — the paper's
// condensation, MDAV-style microaggregation, hybrid schemes — factors
// into the same two strategies:
//
//   GroupConstruction  partition raw records into groups of >= k and
//                      return their (Fs, Sc, n) aggregates;
//   Regeneration       synthesize release records from one group's
//                      aggregate.
//
// An AnonymizationBackend is a named pair of the two. The core pipeline
// (engine, dynamic condenser, anonymizer) never links this library; it
// exposes std::function seams (core/backend_hooks.h) that the hooks
// below bind to. A backend whose Regeneration is absent uses the
// built-in eigendecomposition sampler of core/anonymizer.h.
//
// Backends are resolved by string id through backend::Registry
// (src/backend/registry.h), which is what `--backend=` maps onto.

#ifndef CONDENSA_BACKEND_BACKEND_H_
#define CONDENSA_BACKEND_BACKEND_H_

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/backend_hooks.h"
#include "core/condensed_group_set.h"
#include "core/group_statistics.h"
#include "linalg/vector.h"

namespace condensa::backend {

struct BackendInfo {
  // Registry key, recorded in serialized group sets and checkpoints.
  std::string id;
  // Bumped when the backend's output for a fixed seed changes; a
  // checkpoint stamped with another version refuses to load.
  int version = 1;
  // One-line description for --help listings.
  std::string summary;
};

// Strategy 1: how raw records are partitioned into >= k-sized groups.
class GroupConstruction {
 public:
  virtual ~GroupConstruction() = default;

  // Partitions `points` into groups of >= k records and returns their
  // aggregates. Must be deterministic for a fixed Rng state and draw
  // randomness only through `rng` (deterministic backends simply leave
  // it untouched). Fails on empty input, k == 0, fewer than k records,
  // or inconsistent dimensions.
  virtual StatusOr<core::CondensedGroupSet> BuildGroups(
      const std::vector<linalg::Vector>& points, std::size_t k,
      Rng& rng) const = 0;
};

// Strategy 2: how release records are synthesized from one group's
// aggregate. Backends without a bespoke strategy omit this and inherit
// the built-in eigendecomposition sampler (core/anonymizer.h).
class Regeneration {
 public:
  virtual ~Regeneration() = default;

  // Synthesizes `count` records from `group`, drawing randomness only
  // from `rng`.
  virtual StatusOr<std::vector<linalg::Vector>> Sample(
      const core::GroupStatistics& group, std::size_t count,
      Rng& rng) const = 0;
};

// A named (construction, regeneration) pair. Instances live in the
// Registry for the process lifetime, so the hooks below may capture
// `this`.
class AnonymizationBackend {
 public:
  // `regeneration` may be null: the backend then regenerates through the
  // built-in eigendecomposition sampler.
  AnonymizationBackend(BackendInfo info,
                       std::unique_ptr<GroupConstruction> construction,
                       std::unique_ptr<Regeneration> regeneration)
      : info_(std::move(info)),
        construction_(std::move(construction)),
        regeneration_(std::move(regeneration)) {}

  const BackendInfo& info() const { return info_; }
  const GroupConstruction& construction() const { return *construction_; }
  // Null = built-in eigendecomposition regeneration.
  const Regeneration* regeneration() const { return regeneration_.get(); }

  // The construction strategy bound for core config seams
  // (CondensationConfig::group_construction and friends): BuildGroups
  // plus the backend's id/version stamped on the result.
  core::GroupConstructionFn ConstructionHook() const;

  // The regeneration strategy bound for AnonymizerOptions::group_sampler;
  // a null function when this backend uses the built-in sampler.
  core::GroupSamplerFn SamplerHook() const;

 private:
  BackendInfo info_;
  std::unique_ptr<GroupConstruction> construction_;
  std::unique_ptr<Regeneration> regeneration_;
};

}  // namespace condensa::backend

#endif  // CONDENSA_BACKEND_BACKEND_H_
