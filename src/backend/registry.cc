#include "backend/registry.h"

#include <utility>

#include "backend/condensation.h"
#include "backend/mdav.h"
#include "common/check.h"

namespace condensa::backend {

Registry::Registry() {
  Register(MakeCondensationBackend());
  Register(MakeMdavBackend());
  Register(MakeMdavEigenBackend());
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

void Registry::Register(std::unique_ptr<AnonymizationBackend> backend) {
  CONDENSA_CHECK(backend != nullptr);
  const std::string& id = backend->info().id;
  CONDENSA_CHECK(!id.empty());
  auto [it, inserted] = backends_.emplace(id, std::move(backend));
  CONDENSA_CHECK(inserted);
  (void)it;
}

StatusOr<const AnonymizationBackend*> Registry::Get(
    const std::string& id) const {
  auto it = backends_.find(id);
  if (it == backends_.end()) {
    return NotFoundError("unknown backend '" + id + "'; available: " +
                         IdList());
  }
  return it->second.get();
}

std::vector<std::string> Registry::Ids() const {
  std::vector<std::string> ids;
  ids.reserve(backends_.size());
  for (const auto& [id, backend] : backends_) {
    ids.push_back(id);
  }
  return ids;  // std::map iteration is already sorted
}

std::string Registry::IdList() const {
  std::string joined;
  for (const std::string& id : Ids()) {
    if (!joined.empty()) joined += ", ";
    joined += id;
  }
  return joined;
}

Status ApplyBackend(const std::string& id,
                    core::CondensationConfig* config) {
  CONDENSA_CHECK(config != nullptr);
  CONDENSA_ASSIGN_OR_RETURN(const AnonymizationBackend* backend,
                            Registry::Global().Get(id));
  config->backend = backend->info().id;
  config->backend_version = backend->info().version;
  config->group_construction = backend->ConstructionHook();
  config->group_sampler = backend->SamplerHook();
  return OkStatus();
}

}  // namespace condensa::backend
