#include "backend/condensation.h"

#include "core/static_condenser.h"

namespace condensa::backend {
namespace {

class CondensationConstruction final : public GroupConstruction {
 public:
  StatusOr<core::CondensedGroupSet> BuildGroups(
      const std::vector<linalg::Vector>& points, std::size_t k,
      Rng& rng) const override {
    // Default options: the exact configuration the engine uses when no
    // backend is selected, so the rng draw sequence and output match
    // bit-for-bit.
    core::StaticCondenser condenser(
        core::StaticCondenserOptions{.group_size = k});
    return condenser.Condense(points, rng);
  }
};

}  // namespace

std::unique_ptr<AnonymizationBackend> MakeCondensationBackend() {
  return std::make_unique<AnonymizationBackend>(
      BackendInfo{
          .id = core::CondensedGroupSet::kDefaultBackendId,
          .version = 1,
          .summary = "paper condensation: random-seed nearest-neighbour "
                     "groups, eigendecomposition regeneration (default)"},
      std::make_unique<CondensationConstruction>(),
      /*regeneration=*/nullptr);
}

}  // namespace condensa::backend
