// The paper's condensation algorithm, packaged as the default backend.
//
// Construction is exactly core/static_condenser.h with default options —
// the same code path, rng consumption, and tie-breaks as an engine that
// never mentions backends — and regeneration is the built-in
// eigendecomposition sampler. Releases, serialized pools, and
// checkpoints produced through this backend are byte-identical to the
// pre-backend pipeline (pinned by tests/backend/backend_parity_test.cc).

#ifndef CONDENSA_BACKEND_CONDENSATION_H_
#define CONDENSA_BACKEND_CONDENSATION_H_

#include <memory>

#include "backend/backend.h"

namespace condensa::backend {

// Backend id "condensation", version 1.
std::unique_ptr<AnonymizationBackend> MakeCondensationBackend();

}  // namespace condensa::backend

#endif  // CONDENSA_BACKEND_CONDENSATION_H_
