#include "backend/backend.h"

namespace condensa::backend {

core::GroupConstructionFn AnonymizationBackend::ConstructionHook() const {
  return [this](const std::vector<linalg::Vector>& points, std::size_t k,
                Rng& rng) -> StatusOr<core::CondensedGroupSet> {
    CONDENSA_ASSIGN_OR_RETURN(core::CondensedGroupSet groups,
                              construction_->BuildGroups(points, k, rng));
    groups.SetBackend(info_.id, info_.version);
    return groups;
  };
}

core::GroupSamplerFn AnonymizationBackend::SamplerHook() const {
  if (regeneration_ == nullptr) {
    return nullptr;
  }
  return [this](const core::GroupStatistics& group, std::size_t count,
                Rng& rng) { return regeneration_->Sample(group, count, rng); };
}

}  // namespace condensa::backend
