#include "backend/mdav.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/group_statistics.h"
#include "linalg/vector.h"
#include "obs/metrics.h"

namespace condensa::backend {
namespace {

struct MdavMetrics {
  obs::Counter& runs =
      obs::DefaultRegistry().GetCounter("condensa_mdav_runs_total");
  obs::Counter& groups_built =
      obs::DefaultRegistry().GetCounter("condensa_mdav_groups_built_total");

  static MdavMetrics& Get() {
    static MdavMetrics metrics;
    return metrics;
  }
};

// Mean of the records indexed by `alive`, summed in alive order.
linalg::Vector CentroidOf(const std::vector<linalg::Vector>& points,
                          const std::vector<std::size_t>& alive) {
  linalg::Vector centroid(points.front().dim());
  for (std::size_t orig : alive) {
    const linalg::Vector& p = points[orig];
    for (std::size_t j = 0; j < centroid.dim(); ++j) {
      centroid[j] += p[j];
    }
  }
  const double inv = 1.0 / static_cast<double>(alive.size());
  for (std::size_t j = 0; j < centroid.dim(); ++j) {
    centroid[j] *= inv;
  }
  return centroid;
}

// The survivor (by alive position) farthest from `from`. Equidistant
// records resolve to the smaller original index — swap-with-last removal
// scrambles alive order, so the tie-break must not depend on position.
std::size_t FarthestFrom(const std::vector<linalg::Vector>& points,
                         const std::vector<std::size_t>& alive,
                         const linalg::Vector& from) {
  std::size_t best_pos = 0;
  double best_d = -1.0;
  for (std::size_t pos = 0; pos < alive.size(); ++pos) {
    const double d = linalg::SquaredDistance(points[alive[pos]], from);
    if (d > best_d ||
        (d == best_d && alive[pos] < alive[best_pos])) {
      best_d = d;
      best_pos = pos;
    }
  }
  return best_pos;
}

// Builds one group of exactly `size` records: the seed at alive position
// `seed_pos` plus its size-1 nearest survivors in (d², original index)
// order, removing all of them from `alive` (swap-with-last). Appends the
// aggregate to `result` and, when `assignments` is non-null, the member
// indices in fold order.
void TakeGroup(const std::vector<linalg::Vector>& points,
               std::vector<std::size_t>& alive, std::size_t seed_pos,
               std::size_t size, core::CondensedGroupSet& result,
               std::vector<std::vector<std::size_t>>* assignments) {
  const std::size_t seed_orig = alive[seed_pos];
  const linalg::Vector& seed = points[seed_orig];

  // (d², original index): distance ties resolve by the stable original
  // index, never by survivor-array position.
  std::vector<std::pair<double, std::size_t>> selected;
  selected.reserve(alive.size() - 1);
  for (std::size_t pos = 0; pos < alive.size(); ++pos) {
    const std::size_t orig = alive[pos];
    if (orig == seed_orig) continue;
    selected.emplace_back(linalg::SquaredDistance(points[orig], seed), orig);
  }
  const std::size_t neighbours = size - 1;
  if (neighbours > 0 && neighbours < selected.size()) {
    std::nth_element(selected.begin(), selected.begin() + (neighbours - 1),
                     selected.end());
  }
  selected.resize(neighbours);
  std::sort(selected.begin(), selected.end());

  core::GroupStatistics group(points.front().dim());
  std::vector<std::size_t> members;
  members.reserve(size);
  group.Add(seed);
  members.push_back(seed_orig);
  for (const auto& [distance_sq, orig] : selected) {
    group.Add(points[orig]);
    members.push_back(orig);
  }

  // Remove the taken records, O(1) swap-with-last each. Positions shift,
  // so go through original indices via a fresh scan-free lookup: the
  // member list is tiny (<= 2k) next to the alive array, so rebuild the
  // positions by erasing one original index at a time.
  for (std::size_t orig : members) {
    for (std::size_t pos = 0; pos < alive.size(); ++pos) {
      if (alive[pos] == orig) {
        alive[pos] = alive.back();
        alive.pop_back();
        break;
      }
    }
  }

  result.AddGroup(std::move(group));
  if (assignments != nullptr) {
    assignments->push_back(std::move(members));
  }
}

class MdavConstruction final : public GroupConstruction {
 public:
  StatusOr<core::CondensedGroupSet> BuildGroups(
      const std::vector<linalg::Vector>& points, std::size_t k,
      Rng& rng) const override {
    (void)rng;  // MDAV is deterministic; the stream is left untouched.
    return MdavBuildGroups(points, k);
  }
};

// Classical microaggregation release: every member is replaced by its
// group centroid.
class CentroidReplacement final : public Regeneration {
 public:
  StatusOr<std::vector<linalg::Vector>> Sample(
      const core::GroupStatistics& group, std::size_t count,
      Rng& rng) const override {
    (void)rng;
    const linalg::Vector centroid = group.Centroid();
    std::vector<linalg::Vector> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(centroid);
    }
    return out;
  }
};

}  // namespace

StatusOr<core::CondensedGroupSet> MdavBuildGroups(
    const std::vector<linalg::Vector>& points, std::size_t k,
    std::vector<std::vector<std::size_t>>* assignments) {
  if (k == 0) {
    return InvalidArgumentError("group size k must be at least 1");
  }
  if (points.empty()) {
    return InvalidArgumentError("cannot microaggregate an empty point set");
  }
  if (points.size() < k) {
    return InvalidArgumentError(
        "fewer records than the requested indistinguishability level");
  }
  const std::size_t dim = points.front().dim();
  for (const linalg::Vector& p : points) {
    if (p.dim() != dim) {
      return InvalidArgumentError("points have inconsistent dimensions");
    }
  }
  if (assignments != nullptr) {
    assignments->clear();
  }

  MdavMetrics& metrics = MdavMetrics::Get();
  metrics.runs.Increment();

  core::CondensedGroupSet result(dim, k);
  std::vector<std::size_t> alive(points.size());
  std::iota(alive.begin(), alive.end(), 0);

  // Main loop: two k-groups per iteration, seeded by the extreme pair.
  while (alive.size() >= 3 * k) {
    const linalg::Vector centroid = CentroidOf(points, alive);
    const std::size_t xr_pos = FarthestFrom(points, alive, centroid);
    const linalg::Vector xr = points[alive[xr_pos]];
    TakeGroup(points, alive, xr_pos, k, result, assignments);
    const std::size_t xs_pos = FarthestFrom(points, alive, xr);
    TakeGroup(points, alive, xs_pos, k, result, assignments);
  }

  // Endgame: 2k..3k-1 survivors yield one k-group around the farthest
  // record plus a final group of the rest; k..2k-1 survivors form the
  // final group directly. Either way every group size lands in
  // [k, 2k-1].
  if (alive.size() >= 2 * k) {
    const linalg::Vector centroid = CentroidOf(points, alive);
    const std::size_t xr_pos = FarthestFrom(points, alive, centroid);
    TakeGroup(points, alive, xr_pos, k, result, assignments);
  }
  if (!alive.empty()) {
    // Fold the remainder in original-index order for a deterministic,
    // reproducible aggregate.
    std::sort(alive.begin(), alive.end());
    core::GroupStatistics group(dim);
    for (std::size_t orig : alive) {
      group.Add(points[orig]);
    }
    result.AddGroup(std::move(group));
    if (assignments != nullptr) {
      assignments->push_back(std::move(alive));
    }
  }

  metrics.groups_built.Increment(result.num_groups());
  return result;
}

std::unique_ptr<AnonymizationBackend> MakeMdavBackend() {
  return std::make_unique<AnonymizationBackend>(
      BackendInfo{.id = "mdav",
                  .version = 1,
                  .summary = "MDAV microaggregation: farthest-pair groups, "
                             "centroid-replacement regeneration"},
      std::make_unique<MdavConstruction>(),
      std::make_unique<CentroidReplacement>());
}

std::unique_ptr<AnonymizationBackend> MakeMdavEigenBackend() {
  return std::make_unique<AnonymizationBackend>(
      BackendInfo{.id = "mdav-eigen",
                  .version = 1,
                  .summary = "MDAV microaggregation with variance-preserving "
                             "eigendecomposition regeneration"},
      std::make_unique<MdavConstruction>(),
      /*regeneration=*/nullptr);
}

}  // namespace condensa::backend
