// String-keyed registry of anonymization backends — what `--backend=`
// resolves through.
//
// The global registry is constructed on first use with the built-in
// backends ("condensation", "mdav", "mdav-eigen"); additional backends
// may be registered at startup, before any concurrent lookups. Lookups
// of an unknown id fail with a NotFound Status that lists every
// registered id, which the CLI surfaces verbatim (exit 2).

#ifndef CONDENSA_BACKEND_REGISTRY_H_
#define CONDENSA_BACKEND_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "common/status.h"
#include "core/engine.h"

namespace condensa::backend {

class Registry {
 public:
  // The process-wide registry, holding the built-ins. Register() calls
  // must happen before concurrent Get()/Ids() use (no internal locking —
  // registration is a startup activity).
  static Registry& Global();

  // Adds a backend. The id must be non-empty and not yet taken (CHECK).
  void Register(std::unique_ptr<AnonymizationBackend> backend);

  // The backend registered under `id`, valid for the registry's
  // lifetime; NotFound naming the available ids otherwise.
  StatusOr<const AnonymizationBackend*> Get(const std::string& id) const;

  // Registered ids in sorted order.
  std::vector<std::string> Ids() const;

  // The sorted ids joined with ", " — for help text and error messages.
  std::string IdList() const;

 private:
  Registry();

  std::map<std::string, std::unique_ptr<AnonymizationBackend>> backends_;
};

// Resolves `id` against the global registry and binds it into `config`:
// sets backend/backend_version, the construction hook, and the
// regeneration hook (null for backends using the built-in sampler).
// NotFound (listing available ids) on an unknown id.
Status ApplyBackend(const std::string& id, core::CondensationConfig* config);

}  // namespace condensa::backend

#endif  // CONDENSA_BACKEND_REGISTRY_H_
