// Lightweight error model for the condensa library.
//
// Public condensa APIs that can fail return `Status` (or `StatusOr<T>` when
// they also produce a value) instead of throwing exceptions. The model is a
// deliberately small subset of absl::Status: an error code plus a
// human-readable message.
//
// Example:
//   StatusOr<Dataset> ds = ReadCsv("records.csv", options);
//   if (!ds.ok()) {
//     std::cerr << ds.status() << "\n";
//     return ds.status();
//   }
//   UseDataset(*ds);

#ifndef CONDENSA_COMMON_STATUS_H_
#define CONDENSA_COMMON_STATUS_H_

#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace condensa {

// Canonical error space. Mirrors the familiar canonical codes so that
// call sites read naturally (e.g. IsNotFound, IsInvalidArgument).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kDataLoss = 7,
  kResourceExhausted = 8,
  kUnavailable = 9,
};

// Returns the canonical spelling of `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeToString(StatusCode code);

// Value type describing the outcome of an operation.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "CODE: message" (or "OK").
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors, one per canonical error code.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status DataLossError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);

bool IsInvalidArgument(const Status& status);
bool IsNotFound(const Status& status);
bool IsOutOfRange(const Status& status);
bool IsFailedPrecondition(const Status& status);
bool IsInternal(const Status& status);
bool IsDataLoss(const Status& status);
bool IsResourceExhausted(const Status& status);
bool IsUnavailable(const Status& status);

// StatusOr<T> holds either a usable T or a non-OK Status explaining why the
// T could not be produced. Accessing the value of a non-OK StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, so call sites can `return value;` or
  // `return SomeError(...)` directly (mirrors absl::StatusOr).
  StatusOr(const T& value) : status_(OkStatus()), value_(value) {}       // NOLINT
  StatusOr(T&& value) : status_(OkStatus()), value_(std::move(value)) {} // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {                 // NOLINT
    if (status_.ok()) {
      // A StatusOr built from a Status must carry an error.
      status_ = InternalError("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return *value_;
  }
  T& value() & {
    AbortIfNotOk();
    return *value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfNotOk() const {
    if (!status_.ok()) {
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status out of the current function.
#define CONDENSA_RETURN_IF_ERROR(expr)                   \
  do {                                                   \
    ::condensa::Status condensa_status_tmp_ = (expr);    \
    if (!condensa_status_tmp_.ok()) {                    \
      return condensa_status_tmp_;                       \
    }                                                    \
  } while (false)

// Evaluates a StatusOr expression; on error returns the status, otherwise
// assigns the value to `lhs`.
#define CONDENSA_ASSIGN_OR_RETURN(lhs, expr)             \
  CONDENSA_ASSIGN_OR_RETURN_IMPL_(                       \
      CONDENSA_STATUS_CONCAT_(condensa_sor_, __LINE__), lhs, expr)

#define CONDENSA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)  \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) {                                       \
    return tmp.status();                                 \
  }                                                      \
  lhs = std::move(tmp).value()

#define CONDENSA_STATUS_CONCAT_INNER_(a, b) a##b
#define CONDENSA_STATUS_CONCAT_(a, b) CONDENSA_STATUS_CONCAT_INNER_(a, b)

}  // namespace condensa

#endif  // CONDENSA_COMMON_STATUS_H_
