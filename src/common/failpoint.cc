#include "common/failpoint.h"

#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <random>
#include <thread>
#include <utility>

namespace condensa {
namespace {

struct Entry {
  std::size_t hits = 0;
  std::size_t triggers = 0;
  std::optional<FailPointSpec> spec;
  // Trigger stream for probabilistic specs; seeded on Arm.
  std::mt19937_64 rng;
};

std::mutex& Mutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, Entry>& Registry() {
  static std::map<std::string, Entry>* registry =
      new std::map<std::string, Entry>();
  return *registry;
}

Status MakeStatus(const std::string& name, const FailPointSpec& spec) {
  std::string message = spec.message.empty()
                            ? "failpoint " + name + " triggered"
                            : spec.message;
  return Status(spec.code, std::move(message));
}

}  // namespace

void FailPoint::Arm(const std::string& name, FailPointSpec spec) {
  std::lock_guard<std::mutex> lock(Mutex());
  Entry& entry = Registry()[name];
  entry.hits = 0;
  entry.triggers = 0;
  entry.rng.seed(spec.seed);
  entry.spec = std::move(spec);
}

void FailPoint::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(name);
  if (it != Registry().end()) {
    it->second.spec.reset();
  }
}

void FailPoint::Reset() {
  std::lock_guard<std::mutex> lock(Mutex());
  Registry().clear();
}

FailPointDecision FailPoint::Check(const std::string& name) {
  FailPointDecision decision;
  double latency_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(Mutex());
    Entry& entry = Registry()[name];
    ++entry.hits;
    if (!entry.spec.has_value()) {
      return decision;
    }
    const FailPointSpec& spec = *entry.spec;
    if (entry.hits < spec.fail_at) {
      return decision;
    }
    bool triggered;
    if (spec.probability >= 0.0) {
      triggered = std::uniform_real_distribution<double>(0.0, 1.0)(
                      entry.rng) < spec.probability;
    } else {
      triggered = spec.repeat == static_cast<std::size_t>(-1) ||
                  entry.hits < spec.fail_at + spec.repeat;
    }
    if (!triggered) {
      return decision;
    }
    ++entry.triggers;
    decision.mode = spec.mode;
    if (spec.mode != FailPointMode::kLatency) {
      decision.fail = true;
      decision.torn_bytes = spec.torn_bytes;
      decision.status = MakeStatus(name, spec);
    }
    latency_ms = spec.latency_ms;
  }
  // Sleep outside the lock so a delayed probe does not stall every other
  // probe in the process.
  if (latency_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        latency_ms));
  }
  return decision;
}

Status FailPoint::Maybe(const std::string& name) {
  return Check(name).status;
}

std::size_t FailPoint::HitCount(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(name);
  return it == Registry().end() ? 0 : it->second.hits;
}

std::size_t FailPoint::TriggerCount(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(name);
  return it == Registry().end() ? 0 : it->second.triggers;
}

std::vector<std::string> FailPoint::Armed() {
  std::lock_guard<std::mutex> lock(Mutex());
  std::vector<std::string> names;
  for (const auto& [name, entry] : Registry()) {
    if (entry.spec.has_value()) {
      names.push_back(name);
    }
  }
  return names;
}

}  // namespace condensa
