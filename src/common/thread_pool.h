// Fixed-size worker pool for CPU-bound fan-out.
//
// The condensation pipeline parallelizes at coarse grain: one task per
// class pool (engine) or per condensed group (anonymizer). Determinism is
// the caller's contract, not the pool's — callers pre-split an Rng
// substream per task on the submitting thread and write results into
// pre-allocated slots, so output is bit-identical for a fixed seed
// regardless of worker count or scheduling order.
//
// The pool itself is a plain mutex/condvar task queue: Submit enqueues a
// closure, Wait blocks until every submitted closure has finished. Tasks
// must not throw (the library reports failure through Status values).

#ifndef CONDENSA_COMMON_THREAD_POOL_H_
#define CONDENSA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace condensa {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(std::size_t num_threads);
  // Waits for outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  // Enqueues one task. Must not be called after the destructor starts.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has completed.
  void Wait();

  // std::thread::hardware_concurrency(), never 0.
  static std::size_t HardwareThreads();

  // Maps a configured thread count to an actual one: 0 means "use all
  // hardware threads", anything else is taken literally.
  static std::size_t ResolveThreadCount(std::size_t requested);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + running
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

// Runs every task to completion on up to `num_threads` workers. With one
// thread (or one task) the tasks run inline on the calling thread, in
// order — the zero-overhead path the determinism tests compare against.
void ParallelRun(std::size_t num_threads,
                 std::vector<std::function<void()>>& tasks);

}  // namespace condensa

#endif  // CONDENSA_COMMON_THREAD_POOL_H_
