#include "common/io.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <utility>

#include "common/failpoint.h"

namespace condensa {
namespace {

Status ErrnoError(StatusCode code, const std::string& what,
                  const std::string& path) {
  return Status(code, what + " " + path + ": " + std::strerror(errno));
}

// Writes all of `data` to `fd`, honouring an already-taken failpoint
// decision: a torn decision writes only the configured prefix and then
// reports the armed status, leaving the file exactly as a crash would.
Status WriteAllWithDecision(int fd, const std::string& data,
                            const std::string& path,
                            const FailPointDecision& decision) {
  std::string_view payload = data;
  if (decision.fail) {
    if (decision.mode != FailPointMode::kTornWrite) {
      return decision.status;
    }
    std::size_t keep = decision.torn_bytes == static_cast<std::size_t>(-1)
                           ? payload.size() / 2
                           : decision.torn_bytes;
    payload = payload.substr(0, std::min(keep, payload.size()));
  }
  std::size_t written = 0;
  while (written < payload.size()) {
    ssize_t n = ::write(fd, payload.data() + written,
                        payload.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError(StatusCode::kDataLoss, "short write to", path);
    }
    written += static_cast<std::size_t>(n);
  }
  if (decision.fail) {
    return decision.status;  // torn: prefix is on disk, call still fails
  }
  return OkStatus();
}

Status SyncFd(int fd, const std::string& path) {
  CONDENSA_RETURN_IF_ERROR(FailPoint::Maybe("io.sync"));
  if (::fsync(fd) != 0) {
    return ErrnoError(StatusCode::kDataLoss, "fsync of", path);
  }
  return OkStatus();
}

// Directory portion of `path` ("" when there is none).
std::string DirName(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return "";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// fsync on the containing directory makes the rename itself durable.
Status SyncDirectory(const std::string& dir) {
  const std::string target = dir.empty() ? "." : dir;
  int fd = ::open(target.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return ErrnoError(StatusCode::kDataLoss, "cannot open directory", target);
  }
  Status status = SyncFd(fd, target);
  ::close(fd);
  return status;
}

}  // namespace

StatusOr<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return NotFoundError("cannot open " + path);
  }
  std::string content;
  char buffer[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoError(StatusCode::kDataLoss, "read error on", path);
    }
    if (n == 0) break;
    content.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return content;
}

Status WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string temp = path + ".tmp." + std::to_string(::getpid());
  int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return ErrnoError(StatusCode::kInvalidArgument, "cannot open", temp);
  }
  FailPointDecision decision = FailPoint::Check("io.atomic_write");
  Status status = WriteAllWithDecision(fd, content, temp, decision);
  if (status.ok()) {
    status = SyncFd(fd, temp);
  }
  ::close(fd);
  if (!status.ok()) {
    // Leave the previous `path`, if any, untouched; drop the torn temp.
    ::unlink(temp.c_str());
    return status;
  }

  FailPointDecision rename_decision = FailPoint::Check("io.atomic_rename");
  if (rename_decision.fail) {
    ::unlink(temp.c_str());
    return rename_decision.status;
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    Status error = ErrnoError(StatusCode::kDataLoss, "cannot rename", temp);
    ::unlink(temp.c_str());
    return error;
  }
  return SyncDirectory(DirName(path));
}

Status CreateDirectories(const std::string& dir) {
  if (dir.empty() || dir == "/") return OkStatus();
  std::string partial;
  std::size_t start = 0;
  if (dir[0] == '/') partial = "/";
  while (start < dir.size()) {
    std::size_t slash = dir.find('/', start);
    if (slash == std::string::npos) slash = dir.size();
    if (slash > start) {
      if (!partial.empty() && partial.back() != '/') partial += '/';
      partial += dir.substr(start, slash - start);
      if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
        return ErrnoError(StatusCode::kInvalidArgument,
                          "cannot create directory", partial);
      }
    }
    start = slash + 1;
  }
  return OkStatus();
}

bool PathExists(const std::string& path) {
  struct stat info;
  return ::stat(path.c_str(), &info) == 0;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoError(StatusCode::kInternal, "cannot remove", path);
  }
  return OkStatus();
}

StatusOr<std::vector<std::string>> ListDirectory(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return NotFoundError("cannot open directory " + dir);
  }
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(handle)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(handle);
  return names;
}

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

AppendFile::~AppendFile() { Close(); }

StatusOr<AppendFile> AppendFile::Open(const std::string& path,
                                      bool truncate) {
  int flags = O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return ErrnoError(StatusCode::kInvalidArgument, "cannot open", path);
  }
  AppendFile file;
  file.fd_ = fd;
  file.path_ = path;
  return file;
}

Status AppendFile::Append(const std::string& data) {
  if (fd_ < 0) {
    return FailedPreconditionError("append to closed file " + path_);
  }
  FailPointDecision decision = FailPoint::Check("io.append");
  return WriteAllWithDecision(fd_, data, path_, decision);
}

Status AppendFile::Sync() {
  if (fd_ < 0) {
    return FailedPreconditionError("sync of closed file " + path_);
  }
  return SyncFd(fd_, path_);
}

Status AppendFile::Truncate(std::size_t size) {
  if (fd_ < 0) {
    return FailedPreconditionError("truncate of closed file " + path_);
  }
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return ErrnoError(StatusCode::kDataLoss, "cannot truncate", path_);
  }
  return OkStatus();
}

void AppendFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace condensa
