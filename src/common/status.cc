#include "common/status.h"

namespace condensa {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status OkStatus() { return Status(); }

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}

Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}

Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}

Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}

Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}

Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}

Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

bool IsInvalidArgument(const Status& status) {
  return status.code() == StatusCode::kInvalidArgument;
}

bool IsNotFound(const Status& status) {
  return status.code() == StatusCode::kNotFound;
}

bool IsOutOfRange(const Status& status) {
  return status.code() == StatusCode::kOutOfRange;
}

bool IsFailedPrecondition(const Status& status) {
  return status.code() == StatusCode::kFailedPrecondition;
}

bool IsInternal(const Status& status) {
  return status.code() == StatusCode::kInternal;
}

bool IsDataLoss(const Status& status) {
  return status.code() == StatusCode::kDataLoss;
}

bool IsResourceExhausted(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted;
}

bool IsUnavailable(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

}  // namespace condensa
