// Invariant-checking macros.
//
// CONDENSA_CHECK* terminate the process on violation and are always on;
// use them for caller-contract violations that cannot be reported through
// a Status return (constructors, operator[], hot paths).
// CONDENSA_DCHECK* compile away in NDEBUG builds; use them for internal
// invariants that are expensive to test.

#ifndef CONDENSA_COMMON_CHECK_H_
#define CONDENSA_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace condensa::internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::fprintf(stderr, "[condensa] CHECK failed at %s:%d: %s\n", file, line,
               condition);
  std::abort();
}

}  // namespace condensa::internal_check

#define CONDENSA_CHECK(condition)                                          \
  do {                                                                     \
    if (!(condition)) {                                                    \
      ::condensa::internal_check::CheckFailed(__FILE__, __LINE__,          \
                                              #condition);                 \
    }                                                                      \
  } while (false)

#define CONDENSA_CHECK_EQ(a, b) CONDENSA_CHECK((a) == (b))
#define CONDENSA_CHECK_NE(a, b) CONDENSA_CHECK((a) != (b))
#define CONDENSA_CHECK_LT(a, b) CONDENSA_CHECK((a) < (b))
#define CONDENSA_CHECK_LE(a, b) CONDENSA_CHECK((a) <= (b))
#define CONDENSA_CHECK_GT(a, b) CONDENSA_CHECK((a) > (b))
#define CONDENSA_CHECK_GE(a, b) CONDENSA_CHECK((a) >= (b))

#ifdef NDEBUG
#define CONDENSA_DCHECK(condition) \
  do {                             \
  } while (false)
#else
#define CONDENSA_DCHECK(condition) CONDENSA_CHECK(condition)
#endif

#define CONDENSA_DCHECK_EQ(a, b) CONDENSA_DCHECK((a) == (b))
#define CONDENSA_DCHECK_NE(a, b) CONDENSA_DCHECK((a) != (b))
#define CONDENSA_DCHECK_LT(a, b) CONDENSA_DCHECK((a) < (b))
#define CONDENSA_DCHECK_LE(a, b) CONDENSA_DCHECK((a) <= (b))
#define CONDENSA_DCHECK_GT(a, b) CONDENSA_DCHECK((a) > (b))
#define CONDENSA_DCHECK_GE(a, b) CONDENSA_DCHECK((a) >= (b))

#endif  // CONDENSA_COMMON_CHECK_H_
