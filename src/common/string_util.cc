#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>

namespace condensa {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view StripWhitespace(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool ParseDouble(std::string_view text, double* value) {
  std::string_view stripped = StripWhitespace(text);
  if (stripped.empty()) return false;
  std::string buffer(stripped);
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(buffer.c_str(), &end);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) {
    return false;
  }
  *value = parsed;
  return true;
}

bool ParseInt(std::string_view text, int* value) {
  std::string_view stripped = StripWhitespace(text);
  if (stripped.empty()) return false;
  std::string buffer(stripped);
  errno = 0;
  char* end = nullptr;
  long parsed = std::strtol(buffer.c_str(), &end, 10);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) {
    return false;
  }
  if (parsed < INT_MIN || parsed > INT_MAX) {
    return false;
  }
  *value = static_cast<int>(parsed);
  return true;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

}  // namespace condensa
