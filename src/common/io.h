// Crash-safe file I/O primitives.
//
// Everything the durability layer writes goes through this module so the
// commit discipline lives in exactly one place:
//
//   * WriteFileAtomic — temp file in the same directory, full write, fsync,
//     rename over the target, fsync of the directory. A crash at any point
//     leaves either the old file or the new file, never a torn mix.
//   * AppendFile — an append-only log handle whose Append() optionally
//     fsyncs before acknowledging, the primitive under the record journal.
//
// All writes are instrumented with failpoints ("io.atomic_write",
// "io.atomic_rename", "io.append", "io.sync") so tests can inject clean
// errors and torn half-writes at exact call counts (see common/failpoint.h).

#ifndef CONDENSA_COMMON_IO_H_
#define CONDENSA_COMMON_IO_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace condensa {

// Reads the whole file into a string. NotFound when it cannot be opened.
StatusOr<std::string> ReadFileToString(const std::string& path);

// Atomically replaces `path` with `content` (temp + fsync + rename +
// directory fsync). On any failure the previous file, if one existed, is
// left intact; short writes report kDataLoss naming the path.
Status WriteFileAtomic(const std::string& path, const std::string& content);

// Creates `dir` (and missing parents). OK if it already exists.
Status CreateDirectories(const std::string& dir);

// True when `path` names an existing file or directory.
bool PathExists(const std::string& path);

// Removes a file; OK when it does not exist.
Status RemoveFile(const std::string& path);

// Names (not paths) of the entries in `dir`, excluding "." and "..".
StatusOr<std::vector<std::string>> ListDirectory(const std::string& dir);

// Append-only file handle with explicit durability. Not copyable.
class AppendFile {
 public:
  AppendFile() = default;
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  ~AppendFile();

  // Opens `path` for appending, creating it when missing. When `truncate`
  // is set any existing content is discarded first.
  static StatusOr<AppendFile> Open(const std::string& path,
                                   bool truncate = false);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  // Appends `data`; kDataLoss naming the path on a short write.
  Status Append(const std::string& data);

  // Flushes appended data to stable storage (fsync).
  Status Sync();

  // Truncates the file to `size` bytes (journal torn-tail repair).
  Status Truncate(std::size_t size);

  // Closes the handle; further Appends fail. Idempotent.
  void Close();

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace condensa

#endif  // CONDENSA_COMMON_IO_H_
