// Deterministic random number generation for condensa.
//
// Every stochastic component in the library (condensers, samplers, data
// generators) takes an explicit `Rng&` so that experiments are exactly
// reproducible from a seed. The engine is xoshiro256++ seeded through
// SplitMix64; `Split()` derives statistically independent child streams,
// which lets benches fan out per-dataset and per-sweep-point generators
// without correlated draws.

#ifndef CONDENSA_COMMON_RANDOM_H_
#define CONDENSA_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace condensa {

// xoshiro256++ pseudo-random engine with SplitMix64 seeding.
// Not cryptographically secure; statistical quality is more than adequate
// for simulation workloads. Copyable: a copy replays the same stream.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the stream deterministically from `seed`.
  explicit Rng(std::uint64_t seed = 0xC0ACE57ADA7Aull);

  // UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return NextUint64(); }

  // Returns the next 64 raw bits of the stream.
  std::uint64_t NextUint64();

  // Returns an integer uniform in [0, bound). `bound` must be positive.
  // Uses rejection sampling (Lemire) so the result is exactly uniform.
  std::uint64_t UniformUint64(std::uint64_t bound);

  // Returns an integer uniform in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  // Returns an index uniform in [0, size). Requires size > 0.
  std::size_t UniformIndex(std::size_t size);

  // Returns a double uniform in [0, 1) with 53 bits of precision.
  double UniformDouble();

  // Returns a double uniform in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  // Returns a standard normal draw (Marsaglia polar method, cached spare).
  double Gaussian();

  // Returns a normal draw with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  // Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Returns an exponential draw with the given rate (> 0).
  double Exponential(double rate);

  // Returns an index in [0, weights.size()) with probability proportional
  // to weights[i]. Weights must be non-negative with a positive sum.
  std::size_t Categorical(const std::vector<double>& weights);

  // Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    if (values.empty()) return;
    for (std::size_t i = values.size() - 1; i > 0; --i) {
      std::size_t j = UniformIndex(i + 1);
      using std::swap;
      swap(values[i], values[j]);
    }
  }

  // Derives an independent child stream. The parent advances, so repeated
  // Split() calls give distinct children.
  Rng Split();

 private:
  std::uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace condensa

#endif  // CONDENSA_COMMON_RANDOM_H_
