// Wall-clock timing helper used by benches and examples.

#ifndef CONDENSA_COMMON_TIMER_H_
#define CONDENSA_COMMON_TIMER_H_

#include <chrono>

namespace condensa {

// Measures elapsed wall-clock time from construction (or the last Reset).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  // Returns seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Returns milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace condensa

#endif  // CONDENSA_COMMON_TIMER_H_
