#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace condensa {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::UniformUint64(std::uint64_t bound) {
  CONDENSA_CHECK_GT(bound, 0u);
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

int Rng::UniformInt(int lo, int hi) {
  CONDENSA_CHECK_LE(lo, hi);
  std::uint64_t span =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) -
                                 static_cast<std::int64_t>(lo)) +
      1;
  return lo + static_cast<int>(UniformUint64(span));
}

std::size_t Rng::UniformIndex(std::size_t size) {
  CONDENSA_CHECK_GT(size, 0u);
  return static_cast<std::size_t>(UniformUint64(size));
}

double Rng::UniformDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  CONDENSA_CHECK_LE(lo, hi);
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Exponential(double rate) {
  CONDENSA_CHECK_GT(rate, 0.0);
  // -log(U) with U in (0, 1].
  double u = 1.0 - UniformDouble();
  return -std::log(u) / rate;
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  CONDENSA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CONDENSA_CHECK_GE(w, 0.0);
    total += w;
  }
  CONDENSA_CHECK_GT(total, 0.0);
  double target = UniformDouble() * total;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) {
      return i;
    }
  }
  // Floating-point round-off can leave target == total; return the last
  // index with positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Split() {
  // Derive the child seed from fresh parent output so consecutive splits
  // yield unrelated streams.
  std::uint64_t child_seed = NextUint64() ^ 0xA5A5A5A55A5A5A5Aull;
  return Rng(child_seed);
}

}  // namespace condensa
