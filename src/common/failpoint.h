// Named failure-injection points for robustness testing.
//
// Production code sprinkles cheap probes at the places where the real world
// can fail — file writes, fsyncs, renames, eigensolver convergence — and
// tests arm those probes to force the failure at an exact call count:
//
//   FailPoint::Arm("io.append", {.fail_at = 3});     // 3rd append fails
//   ... exercise the code under test ...
//   FailPoint::Reset();
//
// Unarmed probes only bump a hit counter, so tests can first measure how
// many failure boundaries a scenario crosses (HitCount) and then re-run the
// scenario once per boundary with the crash injected there. The registry is
// process-global and mutex-protected; probes cost one mutex acquisition,
// which is irrelevant outside hot loops and the instrumented sites are all
// I/O-bound anyway.
//
// Beyond exact-call-count crashes, probes support the two failure shapes
// chaos tests need (see tests/integration/chaos_soak_test.cc):
//
//   * probabilistic triggering — `probability` in [0, 1] fires each hit
//     independently with that chance from a deterministic per-probe RNG
//     (`seed`), modelling a flaky disk or transport;
//   * injected latency — `latency_ms` delays every triggered hit before
//     the probe returns, and `FailPointMode::kLatency` makes the hit slow
//     but still successful, modelling a stalled fsync or RPC.

#ifndef CONDENSA_COMMON_FAILPOINT_H_
#define CONDENSA_COMMON_FAILPOINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace condensa {

// What an armed probe does when it triggers.
enum class FailPointMode {
  // The instrumented call fails cleanly with the configured status.
  kError = 0,
  // I/O helpers write only `torn_bytes` of the payload before failing —
  // simulating a crash mid-write that leaves a torn file behind.
  kTornWrite = 1,
  // The hit is delayed by `latency_ms` but the instrumented call then
  // proceeds normally — a slow disk, not a broken one.
  kLatency = 2,
};

struct FailPointSpec {
  // 1-based hit index at which the probe starts firing.
  std::size_t fail_at = 1;
  // Number of consecutive hits (from fail_at) that fail; SIZE_MAX = every
  // hit from fail_at on. Ignored when `probability` is armed.
  std::size_t repeat = 1;
  FailPointMode mode = FailPointMode::kError;
  // Bytes of payload written before the simulated crash in kTornWrite
  // mode. SIZE_MAX means "half of the payload".
  std::size_t torn_bytes = static_cast<std::size_t>(-1);
  StatusCode code = StatusCode::kDataLoss;
  // Optional message override; empty -> "failpoint <name> triggered".
  std::string message = {};
  // When >= 0: each hit at or past `fail_at` triggers independently with
  // this chance instead of the deterministic fail_at/repeat window. Drawn
  // from a per-probe RNG seeded with `seed`, so runs are reproducible.
  double probability = -1.0;
  // Seed for the probabilistic trigger stream.
  std::uint64_t seed = 0;
  // Delay imposed on every triggered hit, before the probe returns (all
  // modes). The sleep happens outside the registry lock, so concurrent
  // probes on other threads are not serialized behind it.
  double latency_ms = 0.0;
};

// Result of consulting a probe: whether this hit fails, and how.
struct FailPointDecision {
  bool fail = false;
  FailPointMode mode = FailPointMode::kError;
  std::size_t torn_bytes = 0;
  Status status;  // non-OK iff fail
};

class FailPoint {
 public:
  // Arms `name`; replaces any previous spec and resets its hit count.
  static void Arm(const std::string& name, FailPointSpec spec);

  // Disarms `name` (hit counting continues).
  static void Disarm(const std::string& name);

  // Disarms every probe and zeroes all hit counts.
  static void Reset();

  // The probe call for sites that can only fail cleanly. Increments the
  // hit count; returns the armed status when triggered, OK otherwise.
  static Status Maybe(const std::string& name);

  // The probe call for I/O sites that can also tear writes. Increments the
  // hit count and describes what this hit should do.
  static FailPointDecision Check(const std::string& name);

  // Hits recorded for `name` since the last Reset/Arm (armed or not).
  static std::size_t HitCount(const std::string& name);

  // Hits that actually triggered (failed or were delayed) since the last
  // Reset/Arm. Chaos tests use this to confirm injections really fired.
  static std::size_t TriggerCount(const std::string& name);

  // Names currently armed (for diagnostics).
  static std::vector<std::string> Armed();
};

}  // namespace condensa

#endif  // CONDENSA_COMMON_FAILPOINT_H_
