#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace condensa {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(num_threads, 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with a drained queue
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

std::size_t ThreadPool::HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t ThreadPool::ResolveThreadCount(std::size_t requested) {
  return requested == 0 ? HardwareThreads() : requested;
}

void ParallelRun(std::size_t num_threads,
                 std::vector<std::function<void()>>& tasks) {
  num_threads = std::min(std::max<std::size_t>(num_threads, 1), tasks.size());
  if (num_threads <= 1) {
    for (std::function<void()>& task : tasks) {
      task();
    }
    return;
  }
  ThreadPool pool(num_threads);
  for (std::function<void()>& task : tasks) {
    pool.Submit(std::move(task));
  }
  pool.Wait();
}

}  // namespace condensa
