// Small string helpers shared by the CSV reader and bench table printers.

#ifndef CONDENSA_COMMON_STRING_UTIL_H_
#define CONDENSA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace condensa {

// Splits `text` on `delimiter`, keeping empty fields. "a,,b" -> {"a","","b"}.
std::vector<std::string> Split(std::string_view text, char delimiter);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Parses a double; returns false on malformed or trailing garbage.
bool ParseDouble(std::string_view text, double* value);

// Parses a non-negative integer; returns false on malformed input.
bool ParseInt(std::string_view text, int* value);

// Joins `parts` with `separator`: {"a","b"} + ", " -> "a, b".
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

// Returns true if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

}  // namespace condensa

#endif  // CONDENSA_COMMON_STRING_UTIL_H_
