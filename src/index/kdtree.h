// k-d tree for exact nearest-neighbour queries.
//
// The condensation pipeline is dominated by nearest-neighbour work, and
// this tree backs all of it: the static condenser's neighbour gathering
// goes through index::DeletionAwareKdTree (a tombstone wrapper over this
// tree that rebuilds as tombstones accumulate and falls back to the
// brute-force scan below a size threshold — see deletion_aware.h), the
// leftover-absorption and dynamic-insert nearest-centroid lookups go
// through core::CentroidIndex, and the k-NN classifier queries it
// directly. A k-d tree brings the per-query cost from O(n) to roughly
// O(log n) in the low dimensions typical of the paper's workloads, and
// degrades gracefully (never worse than a full scan) in high dimensions.
//
// The tree stores point indices into a caller-owned point array; points
// are not copied. Build is median-split on the widest-spread dimension.

#ifndef CONDENSA_INDEX_KDTREE_H_
#define CONDENSA_INDEX_KDTREE_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "linalg/vector.h"
#include "simd/distance.h"
#include "simd/record_block.h"

namespace condensa::index {

namespace internal {
// Reusable per-thread distance buffer for leaf scans, so queries never
// heap-allocate per leaf (or per query). Safe because a search never
// re-enters another search on the same thread while a leaf is mid-scan.
std::vector<double>& KdLeafScratch();
}  // namespace internal

class KdTree {
 public:
  // Builds an index over `points` (all the same dimension, non-empty).
  // The returned tree references `points`; the caller must keep the
  // vector alive and unmodified for the tree's lifetime.
  static StatusOr<KdTree> Build(const std::vector<linalg::Vector>& points);

  std::size_t size() const { return points_->size(); }
  std::size_t dim() const { return dim_; }

  // Index of the point nearest to `query` (Euclidean).
  std::size_t Nearest(const linalg::Vector& query) const;

  // Indices of the k nearest points in increasing distance order
  // (k clamped to size()).
  std::vector<std::size_t> KNearest(const linalg::Vector& query,
                                    std::size_t k) const;

  // Indices of all points within `radius` of `query`, unordered.
  std::vector<std::size_t> RadiusSearch(const linalg::Vector& query,
                                        double radius) const;

  // Same, but bounded by a squared distance directly — no sqrt round
  // trip, so a bound taken from a k-NN result captures boundary ties
  // exactly (points at squared distance == radius_sq are included).
  std::vector<std::size_t> RadiusSearchSquared(const linalg::Vector& query,
                                               double radius_sq) const;

  // Sentinel `key_of` return value meaning "exclude this point".
  static constexpr std::size_t kSkipPoint = static_cast<std::size_t>(-1);

  // Exact filtered k-NN under a caller-chosen total order, in a single
  // traversal. `key_of(i)` maps indexed point i to its tie-break key, or
  // kSkipPoint to exclude it. Returns the k smallest accepted candidates
  // as (squared distance, key) pairs, sorted ascending by (distance,
  // key) — exactly what a brute-force scan over the accepted points
  // would select with that key, including boundary ties. Returns fewer
  // than k pairs when the filter leaves fewer accepted points. This is
  // the static condenser's hot path (see index/deletion_aware.h).
  template <typename KeyOf>
  std::vector<std::pair<double, std::size_t>> KNearestKeyed(
      const linalg::Vector& query, std::size_t k, KeyOf&& key_of) const;

 private:
  struct Node {
    // Leaf when split_dim is kLeaf; then [begin, end) indexes order_.
    static constexpr std::size_t kLeaf = static_cast<std::size_t>(-1);
    std::size_t split_dim = kLeaf;
    double split_value = 0.0;
    std::size_t left = 0;   // child node ids (internal nodes)
    std::size_t right = 0;
    std::size_t begin = 0;  // leaf payload range in order_
    std::size_t end = 0;
  };

  // Max-heap entry used during k-NN search.
  struct HeapEntry {
    double distance_sq;
    std::size_t index;
    bool operator<(const HeapEntry& other) const {
      return distance_sq < other.distance_sq;
    }
  };

  KdTree() = default;

  std::size_t BuildRecursive(std::size_t begin, std::size_t end);
  // All searches prune with an incremental region bound (Arya & Mount):
  // `bound_sq` is a lower bound on the squared distance from the query
  // to the node's region, maintained as the sum over dimensions of the
  // squared "excess" (how far the query sits outside the region along
  // that axis, tracked in `excess`). Plane-distance-only pruning visits
  // a large fraction of the tree in higher dimensions; the region bound
  // accumulates excesses across every split dimension on the path and
  // prunes the same nodes a true bounding-box test would.
  //
  // `visited` accumulates the number of tree nodes touched by the query
  // (reported to the metrics registry once per query, not per node).
  void SearchKNearest(std::size_t node, const linalg::Vector& query,
                      std::size_t k, std::vector<HeapEntry>& heap,
                      double bound_sq, std::vector<double>& excess,
                      std::size_t& visited) const;
  void SearchRadius(std::size_t node, const linalg::Vector& query,
                    double radius_sq, std::vector<std::size_t>& out,
                    double bound_sq, std::vector<double>& excess,
                    std::size_t& visited) const;
  template <typename KeyOf>
  void SearchKNearestKeyed(std::size_t node,
                           const linalg::Vector& query, std::size_t k,
                           std::vector<std::pair<double, std::size_t>>& heap,
                           double bound_sq, std::vector<double>& excess,
                           KeyOf& key_of, std::size_t& visited) const;
  // Out-of-line metrics hook for the templated search.
  void RecordQueryMetrics(std::size_t visited) const;

  // Sized for the vectorized leaf scan: 32 records = four full kLane
  // blocks per leaf, so the batch kernel amortizes its call overhead and
  // the tree has half the nodes a 16-leaf build would. Search results are
  // exact either way (leaf size only moves work between traversal and
  // scan), so this is purely a speed knob.
  static constexpr std::size_t kLeafSize = 32;

  const std::vector<linalg::Vector>* points_ = nullptr;
  std::size_t dim_ = 0;
  std::vector<std::size_t> order_;  // permutation of point indices
  // Blocked SoA copy of the points in order_ order, built once at build
  // time: leaf scans run the vectorized batch kernel over position
  // ranges. Same double values as the caller's array and the kernels
  // accumulate per record in dimension order, so distances computed from
  // either representation are bit-identical (src/simd/distance.h).
  simd::RecordBlock coords_{0};
  std::vector<Node> nodes_;
  std::size_t root_ = 0;
  // Build-time per-dimension min/max scratch (BuildRecursive), reused
  // across nodes so the spread scan never allocates per node.
  std::vector<double> build_lo_;
  std::vector<double> build_hi_;
};

template <typename KeyOf>
std::vector<std::pair<double, std::size_t>> KdTree::KNearestKeyed(
    const linalg::Vector& query, std::size_t k, KeyOf&& key_of) const {
  CONDENSA_CHECK_EQ(query.dim(), dim_);
  k = std::min(k, size());
  if (k == 0) return {};
  std::vector<std::pair<double, std::size_t>> heap;
  heap.reserve(k + 1);
  std::vector<double> excess(dim_, 0.0);
  std::size_t visited = 0;
  SearchKNearestKeyed(root_, query, k, heap, 0.0, excess, key_of, visited);
  RecordQueryMetrics(visited);
  std::sort(heap.begin(), heap.end());
  return heap;
}

template <typename KeyOf>
void KdTree::SearchKNearestKeyed(
    std::size_t node_id, const linalg::Vector& query, std::size_t k,
    std::vector<std::pair<double, std::size_t>>& heap, double bound_sq,
    std::vector<double>& excess, KeyOf& key_of, std::size_t& visited) const {
  ++visited;
  const Node& node = nodes_[node_id];

  if (node.split_dim == Node::kLeaf) {
    // Batch partial-distance kernel over the leaf's position range: every
    // record past the entry bound is abandoned to +inf, every finite
    // value is the exact sum in linalg::SquaredDistance order, bit for
    // bit (src/simd/distance.h). The bound is the k-th best at leaf
    // entry; candidates the heap tightens past mid-leaf still compare
    // exactly, so the selection matches the scalar per-point cutoff.
    const double bound = heap.size() == k
                             ? heap.front().first
                             : std::numeric_limits<double>::infinity();
    std::vector<double>& dist = internal::KdLeafScratch();
    const std::size_t count = node.end - node.begin;
    if (dist.size() < count) dist.resize(count);
    simd::SquaredDistanceBatchRange(coords_, query.data(), node.begin,
                                    node.end, bound, dist.data());
    for (std::size_t i = node.begin; i < node.end; ++i) {
      const double d2 = dist[i - node.begin];
      // Distance-only pre-reject (covers the +inf abandoned lanes too):
      // once the heap is full, a strictly-greater distance can never win
      // — only an equal one can, via the key tie-break — so most records
      // drop here without paying for the order_/key loads.
      if (heap.size() == k && d2 > heap.front().first) continue;
      const std::size_t key = key_of(order_[i]);
      if (key == kSkipPoint) continue;
      const std::pair<double, std::size_t> candidate{d2, key};
      if (heap.size() < k) {
        heap.push_back(candidate);
        std::push_heap(heap.begin(), heap.end());
      } else if (candidate < heap.front()) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = candidate;
        std::push_heap(heap.begin(), heap.end());
      }
    }
    return;
  }

  const double diff = query[node.split_dim] - node.split_value;
  const std::size_t near = diff < 0.0 ? node.left : node.right;
  const std::size_t far = diff < 0.0 ? node.right : node.left;
  SearchKNearestKeyed(near, query, k, heap, bound_sq, excess, key_of,
                      visited);
  const double old_excess = excess[node.split_dim];
  const double far_bound = bound_sq - old_excess * old_excess + diff * diff;
  // Equality stays live: a far-side point at exactly the k-th distance
  // can still win on its tie-break key.
  if (heap.size() < k || far_bound <= heap.front().first) {
    excess[node.split_dim] = diff < 0.0 ? -diff : diff;
    SearchKNearestKeyed(far, query, k, heap, far_bound, excess, key_of,
                        visited);
    excess[node.split_dim] = old_excess;
  }
}

}  // namespace condensa::index

#endif  // CONDENSA_INDEX_KDTREE_H_
