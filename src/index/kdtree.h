// k-d tree for exact nearest-neighbour queries.
//
// The condensation pipeline is dominated by nearest-neighbour work: the
// static condenser's neighbour gathering, the dynamic condenser's
// nearest-centroid lookups, and the k-NN classifier itself. A k-d tree
// brings the per-query cost from O(n) to roughly O(log n) in the low
// dimensions typical of the paper's workloads, and degrades gracefully
// (never worse than a full scan) in high dimensions.
//
// The tree stores point indices into a caller-owned point array; points
// are not copied. Build is median-split on the widest-spread dimension.

#ifndef CONDENSA_INDEX_KDTREE_H_
#define CONDENSA_INDEX_KDTREE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "linalg/vector.h"

namespace condensa::index {

class KdTree {
 public:
  // Builds an index over `points` (all the same dimension, non-empty).
  // The returned tree references `points`; the caller must keep the
  // vector alive and unmodified for the tree's lifetime.
  static StatusOr<KdTree> Build(const std::vector<linalg::Vector>& points);

  std::size_t size() const { return points_->size(); }
  std::size_t dim() const { return dim_; }

  // Index of the point nearest to `query` (Euclidean).
  std::size_t Nearest(const linalg::Vector& query) const;

  // Indices of the k nearest points in increasing distance order
  // (k clamped to size()).
  std::vector<std::size_t> KNearest(const linalg::Vector& query,
                                    std::size_t k) const;

  // Indices of all points within `radius` of `query`, unordered.
  std::vector<std::size_t> RadiusSearch(const linalg::Vector& query,
                                        double radius) const;

 private:
  struct Node {
    // Leaf when split_dim is kLeaf; then [begin, end) indexes order_.
    static constexpr std::size_t kLeaf = static_cast<std::size_t>(-1);
    std::size_t split_dim = kLeaf;
    double split_value = 0.0;
    std::size_t left = 0;   // child node ids (internal nodes)
    std::size_t right = 0;
    std::size_t begin = 0;  // leaf payload range in order_
    std::size_t end = 0;
  };

  // Max-heap entry used during k-NN search.
  struct HeapEntry {
    double distance_sq;
    std::size_t index;
    bool operator<(const HeapEntry& other) const {
      return distance_sq < other.distance_sq;
    }
  };

  KdTree() = default;

  std::size_t BuildRecursive(std::size_t begin, std::size_t end);
  // `visited` accumulates the number of tree nodes touched by the query
  // (reported to the metrics registry once per query, not per node).
  void SearchKNearest(std::size_t node, const linalg::Vector& query,
                      std::size_t k, std::vector<HeapEntry>& heap,
                      std::size_t& visited) const;
  void SearchRadius(std::size_t node, const linalg::Vector& query,
                    double radius_sq, std::vector<std::size_t>& out,
                    std::size_t& visited) const;

  static constexpr std::size_t kLeafSize = 16;

  const std::vector<linalg::Vector>* points_ = nullptr;
  std::size_t dim_ = 0;
  std::vector<std::size_t> order_;  // permutation of point indices
  std::vector<Node> nodes_;
  std::size_t root_ = 0;
};

}  // namespace condensa::index

#endif  // CONDENSA_INDEX_KDTREE_H_
