#include "index/deletion_aware.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/timing.h"

namespace condensa::index {
namespace {

struct DeletionAwareMetrics {
  obs::Counter& builds = obs::DefaultRegistry().GetCounter(
      "condensa_static_index_builds_total");
  obs::Counter& rebuilds = obs::DefaultRegistry().GetCounter(
      "condensa_static_index_rebuilds_total");
  obs::Counter& queries = obs::DefaultRegistry().GetCounter(
      "condensa_static_index_queries_total");
  obs::Histogram& rebuild_seconds = obs::DefaultRegistry().GetHistogram(
      "condensa_static_index_rebuild_seconds");

  static DeletionAwareMetrics& Get() {
    static DeletionAwareMetrics metrics;
    return metrics;
  }
};

}  // namespace

StatusOr<DeletionAwareKdTree> DeletionAwareKdTree::Build(
    const std::vector<linalg::Vector>& points) {
  DeletionAwareKdTree wrapper;
  wrapper.indexed_points_ =
      std::make_unique<std::vector<linalg::Vector>>(points);
  wrapper.to_original_.resize(points.size());
  wrapper.tree_pos_.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    wrapper.to_original_[i] = i;
    wrapper.tree_pos_[i] = i;
  }
  wrapper.keys_ = wrapper.to_original_;
  CONDENSA_ASSIGN_OR_RETURN(KdTree tree,
                            KdTree::Build(*wrapper.indexed_points_));
  wrapper.tree_ = std::make_unique<KdTree>(std::move(tree));
  wrapper.alive_.assign(points.size(), 1);
  wrapper.alive_count_ = points.size();
  DeletionAwareMetrics::Get().builds.Increment();
  return wrapper;
}

void DeletionAwareKdTree::Erase(std::size_t original_index) {
  CONDENSA_DCHECK(alive_[original_index] != 0);
  alive_[original_index] = 0;
  keys_[tree_pos_[original_index]] = KdTree::kSkipPoint;
  --alive_count_;
  ++dead_in_tree_;
  // Rebuild once a quarter of the indexed points are tombstones: dead
  // points dilute every leaf scan and widen the k-th-alive ball, and
  // rebuilds are cheap enough (geometric shrink keeps the total at
  // O(n log n) over a full condensation run) that a tight threshold is
  // a net win on the query side.
  if (alive_count_ > 0 && dead_in_tree_ * 4 > indexed_points_->size()) {
    Rebuild();
  }
}

void DeletionAwareKdTree::Rebuild() {
  DeletionAwareMetrics& metrics = DeletionAwareMetrics::Get();
  obs::ScopedTimer rebuild_timer(metrics.rebuild_seconds);
  auto survivors = std::make_unique<std::vector<linalg::Vector>>();
  survivors->reserve(alive_count_);
  std::vector<std::size_t> to_original;
  to_original.reserve(alive_count_);
  for (std::size_t i = 0; i < indexed_points_->size(); ++i) {
    std::size_t original = to_original_[i];
    if (!alive_[original]) continue;
    tree_pos_[original] = to_original.size();
    survivors->push_back(std::move((*indexed_points_)[i]));
    to_original.push_back(original);
  }
  indexed_points_ = std::move(survivors);
  to_original_ = std::move(to_original);
  keys_ = to_original_;
  dead_in_tree_ = 0;
  // Survivor points are verbatim copies of points the previous tree
  // indexed, so the invariants Build checked still hold.
  StatusOr<KdTree> tree = KdTree::Build(*indexed_points_);
  CONDENSA_CHECK(tree.ok());
  *tree_ = std::move(*tree);
  metrics.rebuilds.Increment();
}

std::vector<std::pair<double, std::size_t>>
DeletionAwareKdTree::KNearestAlive(const linalg::Vector& query,
                                   std::size_t k) const {
  DeletionAwareMetrics::Get().queries.Increment();
  const std::size_t need = std::min(k, alive_count_);
  if (need == 0) return {};
  // One filtered traversal: the tree skips tombstones in place and ranks
  // candidates by (squared distance, original index) — the same key the
  // brute-force scan sorts by, so both paths pick identical neighbour
  // sets even on duplicate-heavy data where distances tie.
  const std::size_t* keys = keys_.data();
  return tree_->KNearestKeyed(query, need,
                              [keys](std::size_t i) { return keys[i]; });
}

}  // namespace condensa::index
