// Deletion-aware k-NN index for the static condenser's gather loop.
//
// Static condensation (paper Fig. 1) repeatedly removes a seed record and
// its k-1 nearest survivors from the database. A plain KdTree cannot
// delete, so this wrapper keeps a tombstone bitmap over the tree's index
// array: Erase marks a point dead, queries filter tombstones out during
// the traversal itself (KdTree::KNearestKeyed), and once more than a
// quarter of the indexed points are dead the tree is rebuilt over the
// survivors (amortized O(n log n) across a whole condensation run).
//
// Result parity with the brute-force scan is exact, not approximate:
// the filtered traversal ranks candidates by (squared distance, original
// index) and keeps equal-distance boundary candidates in play until the
// key decides. The brute-force path selects by the same key, so both
// pick identical neighbour sets even on duplicate-heavy data where
// distances tie.

#ifndef CONDENSA_INDEX_DELETION_AWARE_H_
#define CONDENSA_INDEX_DELETION_AWARE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "index/kdtree.h"
#include "linalg/vector.h"

namespace condensa::index {

class DeletionAwareKdTree {
 public:
  // Indexes `points`. The caller must keep the vector alive and
  // unmodified while the wrapper exists (rebuilds copy the survivors
  // into owned storage, so the original array is only read).
  static StatusOr<DeletionAwareKdTree> Build(
      const std::vector<linalg::Vector>& points);

  std::size_t alive_count() const { return alive_count_; }
  bool alive(std::size_t original_index) const {
    return alive_[original_index] != 0;
  }

  // Tombstones one point (must currently be alive). Triggers a rebuild
  // over the survivors once more than a quarter of the indexed points
  // are dead.
  void Erase(std::size_t original_index);

  // The k nearest alive points to `query`, as (squared distance,
  // original index) pairs in increasing (distance, index) order — ties
  // broken by original index, matching the brute-force scan exactly.
  // k is clamped to alive_count().
  std::vector<std::pair<double, std::size_t>> KNearestAlive(
      const linalg::Vector& query, std::size_t k) const;

 private:
  DeletionAwareKdTree() = default;

  void Rebuild();

  // Points the tree currently indexes. Heap-allocated so the KdTree's
  // internal pointer survives moves of the wrapper; starts as a copy of
  // the caller's array and shrinks to the survivors on rebuild.
  std::unique_ptr<std::vector<linalg::Vector>> indexed_points_;
  // indexed_points_[i] is original point to_original_[i].
  std::vector<std::size_t> to_original_;
  std::unique_ptr<KdTree> tree_;
  // By original index. Bytes, not vector<bool>: read once per leaf
  // point in the query filter, where the bit extraction shows up.
  std::vector<std::uint8_t> alive_;
  // keys_[i] is the query filter's answer for indexed point i — the
  // original index while alive, KdTree::kSkipPoint once tombstoned — so
  // the hot filter is a single load. tree_pos_[original] locates an
  // alive original in the current index so Erase can update keys_.
  std::vector<std::size_t> keys_;
  std::vector<std::size_t> tree_pos_;
  std::size_t alive_count_ = 0;
  std::size_t dead_in_tree_ = 0;  // tombstones among indexed_points_
};

}  // namespace condensa::index

#endif  // CONDENSA_INDEX_DELETION_AWARE_H_
