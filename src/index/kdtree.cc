#include "index/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/timing.h"

namespace condensa::index {
namespace {

struct KdTreeMetrics {
  obs::Counter& builds =
      obs::DefaultRegistry().GetCounter("condensa_kdtree_builds_total");
  obs::Counter& indexed_points = obs::DefaultRegistry().GetCounter(
      "condensa_kdtree_indexed_points_total");
  obs::Counter& queries =
      obs::DefaultRegistry().GetCounter("condensa_kdtree_queries_total");
  obs::Counter& nodes_visited = obs::DefaultRegistry().GetCounter(
      "condensa_kdtree_nodes_visited_total");
  obs::Histogram& build_seconds =
      obs::DefaultRegistry().GetHistogram("condensa_kdtree_build_seconds");

  static KdTreeMetrics& Get() {
    static KdTreeMetrics metrics;
    return metrics;
  }
};

}  // namespace

namespace internal {

std::vector<double>& KdLeafScratch() {
  thread_local std::vector<double> scratch;
  return scratch;
}

}  // namespace internal

StatusOr<KdTree> KdTree::Build(const std::vector<linalg::Vector>& points) {
  if (points.empty()) {
    return InvalidArgumentError("cannot index an empty point set");
  }
  const std::size_t dim = points.front().dim();
  if (dim == 0) {
    return InvalidArgumentError("cannot index zero-dimensional points");
  }
  for (const linalg::Vector& p : points) {
    if (p.dim() != dim) {
      return InvalidArgumentError("points have inconsistent dimensions");
    }
  }

  KdTreeMetrics& metrics = KdTreeMetrics::Get();
  obs::ScopedTimer build_timer(metrics.build_seconds);
  KdTree tree;
  tree.points_ = &points;
  tree.dim_ = dim;
  tree.order_.resize(points.size());
  std::iota(tree.order_.begin(), tree.order_.end(), 0);
  tree.nodes_.reserve(2 * points.size() / kLeafSize + 4);
  tree.root_ = tree.BuildRecursive(0, points.size());
  // Flatten the points into blocked SoA storage in final order_ order so
  // leaf scans are one vectorized batch-kernel call per leaf.
  tree.coords_ = simd::RecordBlock(dim);
  tree.coords_.Reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    tree.coords_.Append(points[tree.order_[i]].data());
  }
  metrics.builds.Increment();
  metrics.indexed_points.Increment(points.size());
  return tree;
}

std::size_t KdTree::BuildRecursive(std::size_t begin, std::size_t end) {
  CONDENSA_DCHECK_LT(begin, end);
  const std::size_t node_id = nodes_.size();
  nodes_.emplace_back();

  if (end - begin <= kLeafSize) {
    nodes_[node_id].begin = begin;
    nodes_[node_id].end = end;
    return node_id;
  }

  // Split on the dimension with the widest value spread in this cell.
  // One pass over the points, tracking per-dimension min/max as we go:
  // each point's coordinates are contiguous, so this touches every
  // record once instead of chasing the same pointers once per dimension.
  const std::vector<linalg::Vector>& points = *points_;
  std::vector<double>& lo = build_lo_;
  std::vector<double>& hi = build_hi_;
  lo.assign(dim_, std::numeric_limits<double>::infinity());
  hi.assign(dim_, -std::numeric_limits<double>::infinity());
  for (std::size_t i = begin; i < end; ++i) {
    const double* p = points[order_[i]].data();
    for (std::size_t d = 0; d < dim_; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }
  std::size_t best_dim = 0;
  double best_spread = -1.0;
  for (std::size_t d = 0; d < dim_; ++d) {
    if (hi[d] - lo[d] > best_spread) {
      best_spread = hi[d] - lo[d];
      best_dim = d;
    }
  }
  if (best_spread <= 0.0) {
    // All points in the cell coincide: make it a leaf regardless of size.
    nodes_[node_id].begin = begin;
    nodes_[node_id].end = end;
    return node_id;
  }

  // Near-median split, rounded down so the partition point stays a
  // multiple of the SoA lane width. Every node's begin is then
  // lane-aligned (inductively: the root starts at 0 and both children
  // inherit alignment from an aligned mid), and every node's end is
  // aligned except on the rightmost spine — so almost every leaf scan is
  // whole blocks for the batch kernel, no edge-lane handling. Any
  // partition point strictly inside the range builds a correct tree;
  // end - begin > kLeafSize >= 2 * kLane keeps the rounded mid interior.
  std::size_t mid = begin + (end - begin) / 2;
  mid -= (mid - begin) % simd::RecordBlock::kLane;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end,
                   [&points, best_dim](std::size_t a, std::size_t b) {
                     return points[a][best_dim] < points[b][best_dim];
                   });
  const double split_value = points[order_[mid]][best_dim];

  // Fill fields after recursion: BuildRecursive may reallocate nodes_.
  std::size_t left = BuildRecursive(begin, mid);
  std::size_t right = BuildRecursive(mid, end);
  Node& node = nodes_[node_id];
  node.split_dim = best_dim;
  node.split_value = split_value;
  node.left = left;
  node.right = right;
  return node_id;
}

void KdTree::SearchKNearest(std::size_t node_id, const linalg::Vector& query,
                            std::size_t k, std::vector<HeapEntry>& heap,
                            double bound_sq, std::vector<double>& excess,
                            std::size_t& visited) const {
  ++visited;
  const Node& node = nodes_[node_id];

  if (node.split_dim == Node::kLeaf) {
    // One bounded batch-kernel call per leaf: abandoned records come
    // back +inf (they were already beyond the k-th best at leaf entry),
    // finite values are bit-identical to the scalar loop.
    const double bound = heap.size() == k
                             ? heap.front().distance_sq
                             : std::numeric_limits<double>::infinity();
    std::vector<double>& dist = internal::KdLeafScratch();
    const std::size_t count = node.end - node.begin;
    if (dist.size() < count) dist.resize(count);
    simd::SquaredDistanceBatchRange(coords_, query.data(), node.begin,
                                    node.end, bound, dist.data());
    for (std::size_t i = node.begin; i < node.end; ++i) {
      const double distance_sq = dist[i - node.begin];
      if (heap.size() < k) {
        heap.push_back({distance_sq, order_[i]});
        std::push_heap(heap.begin(), heap.end());
      } else if (distance_sq < heap.front().distance_sq) {
        // (equal distances lose here, so the +inf abandoned lanes and
        // everything past the k-th best drop without touching order_)
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = {distance_sq, order_[i]};
        std::push_heap(heap.begin(), heap.end());
      }
    }
    return;
  }

  const double diff = query[node.split_dim] - node.split_value;
  const std::size_t near = diff < 0.0 ? node.left : node.right;
  const std::size_t far = diff < 0.0 ? node.right : node.left;
  SearchKNearest(near, query, k, heap, bound_sq, excess, visited);
  // Visit the far side only if its region bound stays under the current
  // k-th best (see the declaration for the incremental-bound scheme).
  const double old_excess = excess[node.split_dim];
  const double far_bound = bound_sq - old_excess * old_excess + diff * diff;
  if (heap.size() < k || far_bound < heap.front().distance_sq) {
    excess[node.split_dim] = diff < 0.0 ? -diff : diff;
    SearchKNearest(far, query, k, heap, far_bound, excess, visited);
    excess[node.split_dim] = old_excess;
  }
}

std::vector<std::size_t> KdTree::KNearest(const linalg::Vector& query,
                                          std::size_t k) const {
  CONDENSA_CHECK_EQ(query.dim(), dim_);
  CONDENSA_CHECK_GT(k, 0u);
  k = std::min(k, size());

  std::vector<HeapEntry> heap;
  heap.reserve(k + 1);
  std::vector<double> excess(dim_, 0.0);
  std::size_t visited = 0;
  SearchKNearest(root_, query, k, heap, 0.0, excess, visited);
  KdTreeMetrics& metrics = KdTreeMetrics::Get();
  metrics.queries.Increment();
  metrics.nodes_visited.Increment(visited);
  std::sort_heap(heap.begin(), heap.end());

  std::vector<std::size_t> out;
  out.reserve(heap.size());
  for (const HeapEntry& entry : heap) {
    out.push_back(entry.index);
  }
  return out;
}

std::size_t KdTree::Nearest(const linalg::Vector& query) const {
  return KNearest(query, 1).front();
}

void KdTree::SearchRadius(std::size_t node_id, const linalg::Vector& query,
                          double radius_sq, std::vector<std::size_t>& out,
                          double bound_sq, std::vector<double>& excess,
                          std::size_t& visited) const {
  ++visited;
  const Node& node = nodes_[node_id];

  if (node.split_dim == Node::kLeaf) {
    // Bounded batch kernel with the radius as the bound: abandoned
    // records are strictly outside the radius, finite values exact, so
    // the <= comparison matches the scalar loop on boundary ties.
    std::vector<double>& dist = internal::KdLeafScratch();
    const std::size_t count = node.end - node.begin;
    if (dist.size() < count) dist.resize(count);
    simd::SquaredDistanceBatchRange(coords_, query.data(), node.begin,
                                    node.end, radius_sq, dist.data());
    for (std::size_t i = node.begin; i < node.end; ++i) {
      if (dist[i - node.begin] <= radius_sq) {
        out.push_back(order_[i]);
      }
    }
    return;
  }

  const double diff = query[node.split_dim] - node.split_value;
  const std::size_t near = diff < 0.0 ? node.left : node.right;
  const std::size_t far = diff < 0.0 ? node.right : node.left;
  SearchRadius(near, query, radius_sq, out, bound_sq, excess, visited);
  const double old_excess = excess[node.split_dim];
  const double far_bound = bound_sq - old_excess * old_excess + diff * diff;
  if (far_bound <= radius_sq) {
    excess[node.split_dim] = diff < 0.0 ? -diff : diff;
    SearchRadius(far, query, radius_sq, out, far_bound, excess, visited);
    excess[node.split_dim] = old_excess;
  }
}

std::vector<std::size_t> KdTree::RadiusSearch(const linalg::Vector& query,
                                              double radius) const {
  CONDENSA_CHECK_GE(radius, 0.0);
  return RadiusSearchSquared(query, radius * radius);
}

std::vector<std::size_t> KdTree::RadiusSearchSquared(
    const linalg::Vector& query, double radius_sq) const {
  CONDENSA_CHECK_EQ(query.dim(), dim_);
  CONDENSA_CHECK_GE(radius_sq, 0.0);
  std::vector<std::size_t> out;
  std::vector<double> excess(dim_, 0.0);
  std::size_t visited = 0;
  SearchRadius(root_, query, radius_sq, out, 0.0, excess, visited);
  KdTreeMetrics& metrics = KdTreeMetrics::Get();
  metrics.queries.Increment();
  metrics.nodes_visited.Increment(visited);
  return out;
}

void KdTree::RecordQueryMetrics(std::size_t visited) const {
  KdTreeMetrics& metrics = KdTreeMetrics::Get();
  metrics.queries.Increment();
  metrics.nodes_visited.Increment(visited);
}

}  // namespace condensa::index
