#include "simd/record_block.h"

#include <algorithm>
#include <cstring>
#include <new>

namespace condensa::simd {

RecordBlock RecordBlock::FromVectors(
    const std::vector<linalg::Vector>& points) {
  RecordBlock block(points.empty() ? 0 : points.front().dim());
  block.Reserve(points.size());
  for (const linalg::Vector& p : points) {
    CONDENSA_CHECK_EQ(p.dim(), block.dim_);
    block.Append(p.data());
  }
  return block;
}

void RecordBlock::Reserve(std::size_t records) {
  const std::size_t blocks_needed = BlocksFor(records);
  if (blocks_needed <= capacity_blocks_) return;
  const std::size_t new_blocks =
      std::max(blocks_needed, capacity_blocks_ * 2);
  const std::size_t doubles = new_blocks * dim_ * kLane;
  std::unique_ptr<double[], AlignedDeleter> grown(
      static_cast<double*>(::operator new[](
          doubles * sizeof(double), std::align_val_t{kAlignment})));
  // Zero everything: live slots are overwritten below, the rest becomes
  // benign padding for the kernels' discarded lanes.
  std::memset(grown.get(), 0, doubles * sizeof(double));
  if (data_) {
    std::memcpy(grown.get(), data_.get(),
                capacity_blocks_ * dim_ * kLane * sizeof(double));
  }
  data_ = std::move(grown);
  capacity_blocks_ = new_blocks;
}

void RecordBlock::Append(const double* values) {
  Reserve(size_ + 1);
  double* base = data_.get() + (size_ / kLane) * dim_ * kLane + size_ % kLane;
  for (std::size_t d = 0; d < dim_; ++d) {
    base[d * kLane] = values[d];
  }
  ++size_;
}

void RecordBlock::CopyRecord(std::size_t src, std::size_t dst) {
  CONDENSA_DCHECK_LT(src, size_);
  CONDENSA_DCHECK_LT(dst, size_);
  if (src == dst) return;
  const double* from =
      data_.get() + (src / kLane) * dim_ * kLane + src % kLane;
  double* to = data_.get() + (dst / kLane) * dim_ * kLane + dst % kLane;
  for (std::size_t d = 0; d < dim_; ++d) {
    to[d * kLane] = from[d * kLane];
  }
}

}  // namespace condensa::simd
