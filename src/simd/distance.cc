// Dispatcher plus the scalar and portable kernels. This translation unit
// (and the whole condensa_simd target) is compiled with
// -ffp-contract=off -fopenmp-simd: no fused multiply-adds may be formed
// here, or the bit-identity contract with the scalar reference breaks.
// The AVX2 specializations live in distance_avx2.cc.

#include "simd/distance.h"

#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/check.h"

namespace condensa::simd {

// Implemented in distance_avx2.cc (no-ops on non-x86 builds).
namespace internal {
bool CpuHasAvx2();
bool CpuHasFma();
void RangeAvx2(const RecordBlock& records, const double* query,
               std::size_t begin, std::size_t end, double bound,
               double* out);
void RangeAvx2Fused(const RecordBlock& records, const double* query,
                    std::size_t begin, std::size_t end, double bound,
                    double* out);
}  // namespace internal

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kLane = RecordBlock::kLane;
// The bounded kernels test for block abandonment every this many
// dimensions — often enough to save work on wide records, rare enough
// that the check cost vanishes on narrow ones.
constexpr std::size_t kBoundCheckStride = 8;

// One block of kLane records, dimension-major, portable vectorization.
// Every lane accumulates its record's sum in dimension order, so lane
// results equal the scalar per-record loop bit for bit.
void BlockPortable(const double* block, const double* query, std::size_t dim,
                   double* acc) {
  for (std::size_t lane = 0; lane < kLane; ++lane) acc[lane] = 0.0;
  for (std::size_t d = 0; d < dim; ++d) {
    const double q = query[d];
    const double* row = block + d * kLane;
#pragma omp simd
    for (std::size_t lane = 0; lane < kLane; ++lane) {
      const double diff = row[lane] - q;
      acc[lane] += diff * diff;
    }
  }
}

// Bounded flavour: bails out of the block once every lane's partial sum
// exceeds `bound` (partials only grow, so all true distances are then
// > bound) and reports the abandoned lanes as +infinity.
void BlockPortableBounded(const double* block, const double* query,
                          std::size_t dim, double bound, double* acc) {
  for (std::size_t lane = 0; lane < kLane; ++lane) acc[lane] = 0.0;
  std::size_t d = 0;
  while (d < dim) {
    const std::size_t stop = d + kBoundCheckStride < dim
                                 ? d + kBoundCheckStride
                                 : dim;
    for (; d < stop; ++d) {
      const double q = query[d];
      const double* row = block + d * kLane;
#pragma omp simd
      for (std::size_t lane = 0; lane < kLane; ++lane) {
        const double diff = row[lane] - q;
        acc[lane] += diff * diff;
      }
    }
    if (d == dim) break;
    bool all_over = true;
    for (std::size_t lane = 0; lane < kLane; ++lane) {
      // NaN partials compare false and keep the block live, so NaN
      // distances complete exactly like the scalar path.
      if (!(acc[lane] > bound)) {
        all_over = false;
        break;
      }
    }
    if (all_over) {
      for (std::size_t lane = 0; lane < kLane; ++lane) acc[lane] = kInf;
      return;
    }
  }
}

void RangePortable(const RecordBlock& records, const double* query,
                   std::size_t begin, std::size_t end, double bound,
                   double* out) {
  const std::size_t dim = records.dim();
  const bool bounded = bound < kInf;
  double lanes[kLane];
  for (std::size_t b = begin / kLane; b * kLane < end; ++b) {
    const double* block = records.BlockData(b);
    const std::size_t lo = b * kLane < begin ? begin - b * kLane : 0;
    const std::size_t hi = end - b * kLane < kLane ? end - b * kLane : kLane;
    // Full in-range blocks write straight into out; edge blocks go
    // through the lane buffer.
    double* acc = (lo == 0 && hi == kLane) ? out + (b * kLane - begin)
                                           : lanes;
    if (bounded) {
      BlockPortableBounded(block, query, dim, bound, acc);
    } else {
      BlockPortable(block, query, dim, acc);
    }
    if (acc == lanes) {
      for (std::size_t lane = lo; lane < hi; ++lane) {
        out[b * kLane + lane - begin] = lanes[lane];
      }
    }
  }
}

// The reference oracle: per record, plain scalar accumulation in
// dimension order (exactly linalg::SquaredDistance's loop).
void RangeScalar(const RecordBlock& records, const double* query,
                 std::size_t begin, std::size_t end, double bound,
                 double* out) {
  const std::size_t dim = records.dim();
  const bool bounded = bound < kInf;
  for (std::size_t i = begin; i < end; ++i) {
    double total = 0.0;
    bool abandoned = false;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = records.At(i, d) - query[d];
      total += diff * diff;
      if (bounded && d + 1 < dim && (d + 1) % kBoundCheckStride == 0 &&
          total > bound) {
        abandoned = true;
        break;
      }
    }
    out[i - begin] = abandoned ? kInf : total;
  }
}

KernelKind DetectKernel() {
  if (const char* env = std::getenv("CONDENSA_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) return KernelKind::kScalar;
    if (std::strcmp(env, "portable") == 0) return KernelKind::kPortable;
    if (std::strcmp(env, "avx2") == 0 && internal::CpuHasAvx2()) {
      return KernelKind::kAvx2;
    }
  }
  return internal::CpuHasAvx2() ? KernelKind::kAvx2 : KernelKind::kPortable;
}

KernelKind g_kernel = DetectKernel();
bool g_fused = [] {
  const char* env = std::getenv("CONDENSA_SIMD_FUSED");
  return env != nullptr && std::strcmp(env, "1") == 0;
}();

// The range entry point is hot enough (one call per kd-tree leaf) that
// re-deciding kernel and fused-ness per call shows up; resolve them to a
// single function pointer whenever either knob changes.
using RangeFn = void (*)(const RecordBlock&, const double*, std::size_t,
                         std::size_t, double, double*);

RangeFn ResolveRange() {
  switch (g_kernel) {
    case KernelKind::kAvx2:
      return g_fused && internal::CpuHasFma() ? internal::RangeAvx2Fused
                                              : internal::RangeAvx2;
    case KernelKind::kPortable:
      return RangePortable;
    case KernelKind::kScalar:
      return RangeScalar;
  }
  return RangeScalar;
}

RangeFn g_range = ResolveRange();

}  // namespace

const char* KernelName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      return "scalar";
    case KernelKind::kPortable:
      return "portable";
    case KernelKind::kAvx2:
      return "avx2";
  }
  return "unknown";
}

KernelKind ActiveKernel() { return g_kernel; }

bool ForceKernel(KernelKind kind) {
  if (kind == KernelKind::kAvx2 && !internal::CpuHasAvx2()) return false;
  g_kernel = kind;
  g_range = ResolveRange();
  return true;
}

void ResetKernel() {
  g_kernel = DetectKernel();
  g_range = ResolveRange();
}

void SetFusedEnabled(bool enabled) {
  g_fused = enabled;
  g_range = ResolveRange();
}

bool FusedEnabled() { return g_fused && internal::CpuHasFma(); }

void SquaredDistanceBatchRange(const RecordBlock& records,
                               const double* query, std::size_t begin,
                               std::size_t end, double bound, double* out) {
  CONDENSA_DCHECK_LE(begin, end);
  CONDENSA_DCHECK_LE(end, records.size());
  if (begin == end) return;
  g_range(records, query, begin, end, bound, out);
}

void SquaredDistanceBatch(const RecordBlock& records, const double* query,
                          double* out) {
  SquaredDistanceBatchRange(records, query, 0, records.size(), kInf, out);
}

void SquaredDistanceBatchBounded(const RecordBlock& records,
                                 const double* query, double bound,
                                 double* out) {
  SquaredDistanceBatchRange(records, query, 0, records.size(), bound, out);
}

void SquaredDistanceBatchScalar(const RecordBlock& records,
                                const double* query, double* out) {
  RangeScalar(records, query, 0, records.size(), kInf, out);
}

void Axpy(std::size_t n, double a, const double* x, double* y) {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += a * x[i];
  }
}

void AddScaledRows(std::size_t dim, const double* coeffs, const double* rows,
                   std::size_t num_rows, double* out) {
  for (std::size_t j = 0; j < num_rows; ++j) {
    Axpy(dim, coeffs[j], rows + j * dim, out);
  }
}

}  // namespace condensa::simd
