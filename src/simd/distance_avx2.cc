// AVX2 specializations of the batch distance kernels, selected at
// runtime by the dispatcher in distance.cc. Compiled as part of the
// ordinary (baseline -march) build: the AVX2 code is gated behind GCC's
// per-function target attribute and only ever called after
// __builtin_cpu_supports("avx2") says it is safe, so the binary still
// runs on pre-AVX2 hardware.
//
// The default kernel uses separate multiply and add (no FMA), which
// keeps lane results bit-identical to the scalar reference: per record
// the sum accumulates in dimension order and each (diff * diff) rounds
// exactly as the scalar loop rounds it. The *fused* kernel contracts the
// pair into _mm256_fmadd_pd — faster, but the skipped intermediate
// rounding changes low bits; it runs only behind SetFusedEnabled (see
// distance.h and docs/performance.md for the contract boundary).

#include <cstddef>
#include <limits>

#include "simd/record_block.h"

#if defined(__x86_64__) || defined(__i386__)
#define CONDENSA_SIMD_X86 1
#include <immintrin.h>
#endif

namespace condensa::simd::internal {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kLane = RecordBlock::kLane;
constexpr std::size_t kBoundCheckStride = 8;
}  // namespace

#if defined(CONDENSA_SIMD_X86)

bool CpuHasAvx2() { return __builtin_cpu_supports("avx2") != 0; }
bool CpuHasFma() {
  return __builtin_cpu_supports("avx2") != 0 &&
         __builtin_cpu_supports("fma") != 0;
}

namespace {

// One block of kLane records in two 4-wide accumulators. Returns true if
// the block was abandoned (all lanes' partial sums exceeded `bound`), in
// which case acc holds +inf for every lane.
template <bool kFused>
__attribute__((target("avx2,fma"))) inline bool BlockAvx2(
    const double* block, const double* query, std::size_t dim, double bound,
    bool bounded, double* acc) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const __m256d vbound = _mm256_set1_pd(bound);
  std::size_t d = 0;
  while (d < dim) {
    const std::size_t stop =
        d + kBoundCheckStride < dim ? d + kBoundCheckStride : dim;
    for (; d < stop; ++d) {
      const __m256d q = _mm256_set1_pd(query[d]);
      const double* row = block + d * kLane;
      const __m256d diff0 = _mm256_sub_pd(_mm256_load_pd(row), q);
      const __m256d diff1 = _mm256_sub_pd(_mm256_load_pd(row + 4), q);
      if constexpr (kFused) {
        acc0 = _mm256_fmadd_pd(diff0, diff0, acc0);
        acc1 = _mm256_fmadd_pd(diff1, diff1, acc1);
      } else {
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(diff0, diff0));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(diff1, diff1));
      }
    }
    if (d == dim) break;
    if (bounded) {
      // GT compares are false for NaN partials, keeping those lanes (and
      // hence the block) live — NaN distances complete like scalar.
      const __m256d over0 = _mm256_cmp_pd(acc0, vbound, _CMP_GT_OQ);
      const __m256d over1 = _mm256_cmp_pd(acc1, vbound, _CMP_GT_OQ);
      if (_mm256_movemask_pd(over0) == 0xF &&
          _mm256_movemask_pd(over1) == 0xF) {
        const __m256d inf = _mm256_set1_pd(kInf);
        _mm256_storeu_pd(acc, inf);
        _mm256_storeu_pd(acc + 4, inf);
        return true;
      }
    }
  }
  _mm256_storeu_pd(acc, acc0);
  _mm256_storeu_pd(acc + 4, acc1);
  return false;
}

template <bool kFused>
__attribute__((target("avx2,fma"))) void RangeAvx2Impl(
    const RecordBlock& records, const double* query, std::size_t begin,
    std::size_t end, double bound, double* out) {
  const std::size_t dim = records.dim();
  const bool bounded = bound < kInf;
  alignas(32) double lanes[kLane];
  for (std::size_t b = begin / kLane; b * kLane < end; ++b) {
    const double* block = records.BlockData(b);
    const std::size_t lo = b * kLane < begin ? begin - b * kLane : 0;
    const std::size_t hi = end - b * kLane < kLane ? end - b * kLane : kLane;
    if (lo == 0 && hi == kLane) {
      // Full in-range block (the common case once the kd-tree
      // lane-aligns its leaf ranges): results land directly in out.
      BlockAvx2<kFused>(block, query, dim, bound, bounded,
                        out + (b * kLane - begin));
      continue;
    }
    BlockAvx2<kFused>(block, query, dim, bound, bounded, lanes);
    for (std::size_t lane = lo; lane < hi; ++lane) {
      out[b * kLane + lane - begin] = lanes[lane];
    }
  }
}

}  // namespace

void RangeAvx2(const RecordBlock& records, const double* query,
               std::size_t begin, std::size_t end, double bound,
               double* out) {
  RangeAvx2Impl<false>(records, query, begin, end, bound, out);
}

void RangeAvx2Fused(const RecordBlock& records, const double* query,
                    std::size_t begin, std::size_t end, double bound,
                    double* out) {
  RangeAvx2Impl<true>(records, query, begin, end, bound, out);
}

#else  // !CONDENSA_SIMD_X86

bool CpuHasAvx2() { return false; }
bool CpuHasFma() { return false; }

void RangeAvx2(const RecordBlock&, const double*, std::size_t, std::size_t,
               double, double*) {}
void RangeAvx2Fused(const RecordBlock&, const double*, std::size_t,
                    std::size_t, double, double*) {}

#endif  // CONDENSA_SIMD_X86

}  // namespace condensa::simd::internal
