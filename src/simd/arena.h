// Bump-allocated scratch arena for batch kernels.
//
// The distance hot paths need short-lived buffers (per-group distance
// arrays, packed coefficient rows) sized by data that changes every
// iteration. Allocating them from the heap per candidate is measurable
// churn; the arena hands out aligned slices of one growing buffer and
// recycles the whole thing with Reset() at batch boundaries.
//
// Alloc never invalidates previously returned pointers (new demand grows
// into an additional chunk); Reset() invalidates everything at once and
// coalesces the chunks so steady state is a single allocation.
// Not thread-safe: one arena per worker.

#ifndef CONDENSA_SIMD_ARENA_H_
#define CONDENSA_SIMD_ARENA_H_

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace condensa::simd {

class Arena {
 public:
  static constexpr std::size_t kAlignment = 64;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  // An uninitialized, kAlignment-aligned array of n doubles, valid until
  // the next Reset().
  double* AllocDoubles(std::size_t n) {
    return static_cast<double*>(Alloc(n * sizeof(double)));
  }

  // Recycles all outstanding allocations. If demand overflowed into
  // extra chunks, they are merged into one buffer sized for the whole
  // previous batch.
  void Reset() {
    if (chunks_.size() > 1) {
      std::size_t total = 0;
      for (const Chunk& chunk : chunks_) total += chunk.size;
      chunks_.clear();
      AddChunk(total);
    }
    offset_ = 0;
  }

 private:
  struct Deleter {
    void operator()(char* p) const {
      ::operator delete[](p, std::align_val_t{kAlignment});
    }
  };
  struct Chunk {
    std::unique_ptr<char[], Deleter> data;
    std::size_t size = 0;
  };

  void* Alloc(std::size_t bytes) {
    bytes = (bytes + kAlignment - 1) / kAlignment * kAlignment;
    if (chunks_.empty() || offset_ + bytes > chunks_.back().size) {
      const std::size_t prev = chunks_.empty() ? 1024 : chunks_.back().size;
      AddChunk(bytes > 2 * prev ? bytes : 2 * prev);
      offset_ = 0;
    }
    char* out = chunks_.back().data.get() + offset_;
    offset_ += bytes;
    return out;
  }

  void AddChunk(std::size_t size) {
    Chunk chunk;
    chunk.data.reset(static_cast<char*>(
        ::operator new[](size, std::align_val_t{kAlignment})));
    chunk.size = size;
    chunks_.push_back(std::move(chunk));
  }

  std::vector<Chunk> chunks_;
  std::size_t offset_ = 0;
};

}  // namespace condensa::simd

#endif  // CONDENSA_SIMD_ARENA_H_
