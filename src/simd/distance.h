// Vectorized batch distance kernels over RecordBlock storage.
//
// Every kernel computes squared Euclidean distances from one query to
// many stored records. Lanes map to records and each record's sum
// accumulates in dimension order — the same order as
// linalg::SquaredDistance — so the default kernels are bit-identical to
// the scalar reference on every input, including NaN/Inf propagation.
// This is the repo's bit-identity contract: releases must not depend on
// which kernel the dispatcher picked (docs/performance.md, "Kernel
// dispatch and the bit-identity contract").
//
// Three implementations sit behind one dispatcher:
//   kScalar    plain per-record loops; the reference oracle.
//   kPortable  auto-vectorization-friendly blocked loops
//              (#pragma omp simd), compiled with -ffp-contract=off.
//   kAvx2      explicit AVX2 intrinsics (mul + add, no FMA), selected at
//              runtime when the CPU supports AVX2.
// An opt-in *fused* AVX2+FMA variant exists behind SetFusedEnabled; it
// contracts diff*diff + acc into fmadd and is therefore NOT bit-identical
// (error within a few ulps — tolerance-pinned in tests). It never runs
// unless explicitly enabled (or CONDENSA_SIMD_FUSED=1 in the
// environment).
//
// The bounded variants abandon a whole block once every lane's partial
// sum exceeds `bound`, writing +infinity for the abandoned records.
// Because partial sums only grow, an abandoned record's true distance is
// strictly greater than `bound`; every finite output is the exact full
// sum. Callers prune with `out[i] > bound` (or compare exact values) and
// get answers identical to a full scalar scan.

#ifndef CONDENSA_SIMD_DISTANCE_H_
#define CONDENSA_SIMD_DISTANCE_H_

#include <cstddef>

#include "simd/record_block.h"

namespace condensa::simd {

enum class KernelKind { kScalar = 0, kPortable = 1, kAvx2 = 2 };

const char* KernelName(KernelKind kind);

// The kernel batch calls currently dispatch to. Resolved once from CPU
// detection (and the CONDENSA_SIMD environment override: "scalar",
// "portable", or "avx2") on first use.
KernelKind ActiveKernel();

// Test/bench hook: route all batch calls to `kind`. Returns false (and
// changes nothing) if the CPU cannot run it. Not thread-safe; call
// before spawning workers.
bool ForceKernel(KernelKind kind);
// Back to runtime detection.
void ResetKernel();

// Opt-in fused-multiply-add kernels (AVX2+FMA only). Off by default;
// enabling breaks bit-identity of batch distances (tolerance-pinned, see
// header comment). Ignored when the CPU lacks FMA.
void SetFusedEnabled(bool enabled);
bool FusedEnabled();

// out[i] = squared distance from query (records.dim() doubles) to record
// i, for all i in [0, records.size()).
void SquaredDistanceBatch(const RecordBlock& records, const double* query,
                          double* out);

// Same, with block-level early exit: records whose distance is
// abandoned past `bound` get +infinity (see header comment).
void SquaredDistanceBatchBounded(const RecordBlock& records,
                                 const double* query, double bound,
                                 double* out);

// Bounded batch over the position range [begin, end); out must hold
// end - begin doubles (out[p - begin] is record p's distance). This is
// the kd-tree leaf-scan entry point.
void SquaredDistanceBatchRange(const RecordBlock& records,
                               const double* query, std::size_t begin,
                               std::size_t end, double bound, double* out);

// The scalar reference oracle, always available regardless of dispatch.
// Parity tests compare the dispatched kernels against this.
void SquaredDistanceBatchScalar(const RecordBlock& records,
                                const double* query, double* out);

// y[i] += a * x[i] for i in [0, n): the anonymizer's eigenvector
// accumulation, compiled contraction-free so results match the scalar
// loop bit for bit.
void Axpy(std::size_t n, double a, const double* x, double* y);

// out[r] += sum over j of coeffs[j] * rows[j*dim + r], accumulated in
// ascending j per element — the batched per-group generation path
// (bit-identical to looping Axpy over rows).
void AddScaledRows(std::size_t dim, const double* coeffs, const double* rows,
                   std::size_t num_rows, double* out);

}  // namespace condensa::simd

#endif  // CONDENSA_SIMD_DISTANCE_H_
