// Blocked structure-of-arrays record storage for the vectorized distance
// kernels (src/simd/distance.h).
//
// The row-major layout the rest of the library uses (one
// std::vector<double> per record) defeats vectorization of the
// batch-distance hot paths: computing "one query against N records" walks
// N separate heap allocations and the compiler cannot map vector lanes
// onto records. RecordBlock stores the same doubles blocked and
// transposed: records are grouped into blocks of kLane, and within a
// block the storage is dimension-major, so
//
//   data[block * dim * kLane + d * kLane + lane]
//
// holds coordinate d of record (block * kLane + lane). A batch kernel
// streams one 64-byte line (kLane doubles) per dimension per block and
// computes kLane distances at once, with vector lanes mapped to records.
// Each record's squared-distance sum still accumulates in dimension
// order — exactly the order linalg::SquaredDistance uses — so
// vectorizing across records never reassociates a single record's sum
// and the kernels stay bit-identical to the scalar reference (see
// docs/performance.md for the contract boundary).
//
// The final partial block is padded with zero records; kernels compute
// distances for padding lanes too and callers ignore them (size() is the
// true record count). The backing buffer is 64-byte aligned.

#ifndef CONDENSA_SIMD_RECORD_BLOCK_H_
#define CONDENSA_SIMD_RECORD_BLOCK_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/check.h"
#include "linalg/vector.h"

namespace condensa::simd {

class RecordBlock {
 public:
  // Records per block: 8 doubles = one 64-byte cache line per dimension.
  static constexpr std::size_t kLane = 8;
  static constexpr std::size_t kAlignment = 64;

  // An empty store for d-dimensional records.
  explicit RecordBlock(std::size_t dim) : dim_(dim) {}

  RecordBlock(RecordBlock&&) = default;
  RecordBlock& operator=(RecordBlock&&) = default;
  RecordBlock(const RecordBlock&) = delete;
  RecordBlock& operator=(const RecordBlock&) = delete;

  // Builds a store holding `points` in order. All points must share one
  // dimension (checked); an empty input yields an empty store of dim 0.
  static RecordBlock FromVectors(const std::vector<linalg::Vector>& points);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t dim() const { return dim_; }
  // Blocks currently holding at least one live record.
  std::size_t num_blocks() const { return (size_ + kLane - 1) / kLane; }

  // Appends one record (dim must match).
  void Append(const linalg::Vector& point) {
    CONDENSA_CHECK_EQ(point.dim(), dim_);
    Append(point.data());
  }
  // Same, from a raw pointer to dim() doubles (boundary checked by the
  // caller — this is the batch-ingest path).
  void Append(const double* values);

  // Grows the backing buffer to hold at least `records` records,
  // zero-filling new storage so fresh padding lanes hold benign values.
  void Reserve(std::size_t records);

  // Coordinate d of record i.
  double At(std::size_t i, std::size_t d) const {
    CONDENSA_DCHECK_LT(i, size_);
    CONDENSA_DCHECK_LT(d, dim_);
    return data_[Offset(i, d)];
  }

  // Overwrites record dst with the coordinates of record src (both must
  // be live). Used with Truncate for swap-with-last compaction that
  // mirrors a survivor array.
  void CopyRecord(std::size_t src, std::size_t dst);

  // Drops records [new_size, size()). Freed slots become padding; their
  // stale coordinates are only ever read into lanes whose results the
  // kernels discard.
  void Truncate(std::size_t new_size) {
    CONDENSA_DCHECK_LE(new_size, size_);
    size_ = new_size;
  }

  // Pointer to block b: dim() * kLane doubles, dimension-major.
  const double* BlockData(std::size_t b) const {
    CONDENSA_DCHECK_LT(b, num_blocks());
    return data_.get() + b * dim_ * kLane;
  }

  // Raw aligned storage (kernels only).
  const double* data() const { return data_.get(); }

 private:
  static std::size_t BlocksFor(std::size_t n) {
    return (n + kLane - 1) / kLane;
  }
  std::size_t Offset(std::size_t i, std::size_t d) const {
    return (i / kLane) * dim_ * kLane + d * kLane + (i % kLane);
  }

  struct AlignedDeleter {
    void operator()(double* p) const {
      ::operator delete[](p, std::align_val_t{kAlignment});
    }
  };

  std::size_t dim_ = 0;
  std::size_t size_ = 0;
  std::size_t capacity_blocks_ = 0;
  std::unique_ptr<double[], AlignedDeleter> data_;
};

}  // namespace condensa::simd

#endif  // CONDENSA_SIMD_RECORD_BLOCK_H_
