// CSV import/export for Dataset.
//
// The benches run on synthetic UCI-profile data by default, but real UCI
// files (ionosphere.data, ecoli.data, pima-indians-diabetes.data,
// abalone.data) can be dropped in via this reader: non-numeric label columns
// are mapped to dense integer ids automatically.

#ifndef CONDENSA_DATA_CSV_H_
#define CONDENSA_DATA_CSV_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace condensa::data {

struct CsvReadOptions {
  char delimiter = ',';
  // RFC-4180-style quoting: a field starting with '"' extends to the
  // matching closing quote; "" inside is an escaped quote. Delimiters
  // inside quotes do not split. (Newlines inside quoted fields are not
  // supported — records are line-based.)
  bool allow_quoting = true;
  bool has_header = false;
  // Column carrying the label/target; negative counts from the end
  // (-1 = last column). Ignored for kUnlabeled.
  int label_column = -1;
  // How to interpret the label column.
  TaskType task = TaskType::kClassification;
  // Columns holding categorical (string) features, by original column
  // index (negative counts from the end). Each is one-hot expanded into
  // one 0/1 dimension per distinct value, in first-seen order — e.g. the
  // UCI Abalone sex attribute. Must not include the label column.
  std::vector<int> categorical_columns;
  // When true, non-numeric or non-finite (NaN/Inf) feature and target
  // values fail the read with kDataLoss; when false the offending row is
  // skipped and counted in CsvReadResult::skipped_rows.
  bool strict = true;
};

struct CsvReadResult {
  Dataset dataset = Dataset(0);
  // For classification: maps the original label strings to the dense ids
  // stored in the dataset, in first-seen order.
  std::map<std::string, int> label_ids;
  // Per categorical column (keyed by resolved column index): the distinct
  // values, in the order of their one-hot dimensions.
  std::map<std::size_t, std::vector<std::string>> categorical_values;
  // Rows dropped in non-strict mode.
  std::size_t skipped_rows = 0;
};

// Parses `path`. Every column except the label column must be numeric.
StatusOr<CsvReadResult> ReadCsv(const std::string& path,
                                const CsvReadOptions& options);

// Parses CSV from an in-memory string (same semantics as ReadCsv).
StatusOr<CsvReadResult> ReadCsvFromString(const std::string& content,
                                          const CsvReadOptions& options);

// Writes `dataset` to `path`; labels/targets become the last column. When
// the dataset has feature names a header row is emitted.
Status WriteCsv(const Dataset& dataset, const std::string& path);

// Renders `dataset` as a CSV string (same format as WriteCsv).
std::string WriteCsvToString(const Dataset& dataset);

}  // namespace condensa::data

#endif  // CONDENSA_DATA_CSV_H_
