#include "data/csv.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace condensa::data {
namespace {

// Splits one CSV line honouring RFC-4180 quoting: a field that begins
// with '"' runs to the matching quote, with "" as an escaped quote;
// delimiters inside quotes do not split.
std::vector<std::string> SplitQuoted(std::string_view line,
                                     char delimiter) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  bool field_was_quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"' && current.empty() && !field_was_quoted) {
      in_quotes = true;
      field_was_quoted = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
      field_was_quoted = false;
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

// Resolves a possibly-negative column index against `width`.
StatusOr<std::size_t> ResolveColumn(int column, std::size_t width) {
  long resolved = column;
  if (resolved < 0) {
    resolved += static_cast<long>(width);
  }
  if (resolved < 0 || resolved >= static_cast<long>(width)) {
    return InvalidArgumentError("column index out of range");
  }
  return static_cast<std::size_t>(resolved);
}

struct ParsedLines {
  std::vector<std::string> header;  // empty unless options.has_header
  std::vector<std::vector<std::string>> rows;
  std::vector<std::size_t> line_numbers;  // 1-based, parallel to rows
};

ParsedLines Tokenize(const std::string& content,
                     const CsvReadOptions& options) {
  ParsedLines parsed;
  std::istringstream stream(content);
  std::string line;
  std::size_t line_number = 0;
  bool saw_header = false;
  while (std::getline(stream, line)) {
    ++line_number;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    std::vector<std::string> fields =
        options.allow_quoting ? SplitQuoted(stripped, options.delimiter)
                              : Split(stripped, options.delimiter);
    if (options.has_header && !saw_header) {
      parsed.header = std::move(fields);
      saw_header = true;
      continue;
    }
    parsed.rows.push_back(std::move(fields));
    parsed.line_numbers.push_back(line_number);
  }
  return parsed;
}

}  // namespace

StatusOr<CsvReadResult> ReadCsvFromString(const std::string& content,
                                          const CsvReadOptions& options) {
  ParsedLines parsed = Tokenize(content, options);
  if (parsed.rows.empty()) {
    return InvalidArgumentError("CSV contains no data rows");
  }
  const std::size_t width = parsed.rows.front().size();

  // Resolve special columns.
  bool has_label = options.task != TaskType::kUnlabeled;
  std::size_t label_col = 0;
  if (has_label) {
    CONDENSA_ASSIGN_OR_RETURN(label_col,
                              ResolveColumn(options.label_column, width));
  }
  std::set<std::size_t> categorical;
  for (int column : options.categorical_columns) {
    CONDENSA_ASSIGN_OR_RETURN(std::size_t resolved,
                              ResolveColumn(column, width));
    if (has_label && resolved == label_col) {
      return InvalidArgumentError(
          "label column cannot also be categorical");
    }
    if (!categorical.insert(resolved).second) {
      return InvalidArgumentError("duplicate categorical column");
    }
  }

  CsvReadResult result;

  // Discover categorical vocabularies in first-seen order (rows with the
  // wrong width are handled in the build phase).
  std::map<std::size_t, std::map<std::string, std::size_t>> category_ids;
  for (std::size_t c : categorical) {
    result.categorical_values[c] = {};
  }
  for (const auto& row : parsed.rows) {
    if (row.size() != width) continue;
    for (std::size_t c : categorical) {
      std::string value(StripWhitespace(row[c]));
      auto& ids = category_ids[c];
      if (ids.emplace(value, ids.size()).second) {
        result.categorical_values[c].push_back(value);
      }
    }
  }

  // Feature layout: numeric columns contribute one dimension each,
  // categorical columns one dimension per distinct value.
  std::size_t feature_dim = 0;
  for (std::size_t c = 0; c < width; ++c) {
    if (has_label && c == label_col) continue;
    feature_dim += categorical.count(c) > 0
                       ? result.categorical_values[c].size()
                       : 1;
  }
  if (feature_dim == 0) {
    return InvalidArgumentError("CSV has no feature columns");
  }
  result.dataset = Dataset(feature_dim, options.task);

  // Feature names from the header (categorical expand to "name=value").
  if (parsed.header.size() == width) {
    std::vector<std::string> names;
    names.reserve(feature_dim);
    for (std::size_t c = 0; c < width; ++c) {
      if (has_label && c == label_col) continue;
      std::string base(StripWhitespace(parsed.header[c]));
      if (categorical.count(c) > 0) {
        for (const std::string& value : result.categorical_values[c]) {
          names.push_back(base + "=" + value);
        }
      } else {
        names.push_back(base);
      }
    }
    CONDENSA_RETURN_IF_ERROR(result.dataset.SetFeatureNames(std::move(names)));
  }

  // Build records.
  int next_label_id = 0;
  for (std::size_t r = 0; r < parsed.rows.size(); ++r) {
    const std::vector<std::string>& row = parsed.rows[r];
    const std::size_t line_number = parsed.line_numbers[r];
    if (row.size() != width) {
      if (options.strict) {
        return DataLossError("row " + std::to_string(line_number) +
                             " has inconsistent column count");
      }
      ++result.skipped_rows;
      continue;
    }

    linalg::Vector record(feature_dim);
    bool row_ok = true;
    std::size_t out_index = 0;
    for (std::size_t c = 0; c < width && row_ok; ++c) {
      if (has_label && c == label_col) continue;
      if (categorical.count(c) > 0) {
        std::string value(StripWhitespace(row[c]));
        std::size_t id = category_ids[c].at(value);
        for (std::size_t v = 0; v < result.categorical_values[c].size();
             ++v) {
          record[out_index++] = v == id ? 1.0 : 0.0;
        }
      } else {
        double value;
        // "nan"/"inf" parse as valid doubles but would silently poison
        // every aggregate downstream; treat them like any other bad cell.
        if (!ParseDouble(row[c], &value) || !std::isfinite(value)) {
          row_ok = false;
          break;
        }
        record[out_index++] = value;
      }
    }
    if (!row_ok) {
      if (options.strict) {
        return DataLossError("row " + std::to_string(line_number) +
                             " has a non-numeric or non-finite feature value");
      }
      ++result.skipped_rows;
      continue;
    }

    switch (options.task) {
      case TaskType::kUnlabeled: {
        result.dataset.Add(std::move(record));
        break;
      }
      case TaskType::kClassification: {
        std::string key(StripWhitespace(row[label_col]));
        auto [it, inserted] = result.label_ids.emplace(key, next_label_id);
        if (inserted) ++next_label_id;
        result.dataset.Add(std::move(record), it->second);
        break;
      }
      case TaskType::kRegression: {
        double target;
        if (!ParseDouble(row[label_col], &target) ||
            !std::isfinite(target)) {
          if (options.strict) {
            return DataLossError("row " + std::to_string(line_number) +
                                 " has a non-numeric or non-finite target");
          }
          ++result.skipped_rows;
          continue;
        }
        result.dataset.Add(std::move(record), target);
        break;
      }
    }
  }
  return result;
}

StatusOr<CsvReadResult> ReadCsv(const std::string& path,
                                const CsvReadOptions& options) {
  std::ifstream file(path);
  if (!file) {
    return NotFoundError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ReadCsvFromString(buffer.str(), options);
}

std::string WriteCsvToString(const Dataset& dataset) {
  std::ostringstream out;
  out.precision(17);
  if (!dataset.feature_names().empty()) {
    for (std::size_t c = 0; c < dataset.dim(); ++c) {
      if (c > 0) out << ',';
      out << dataset.feature_names()[c];
    }
    if (dataset.task() == TaskType::kClassification) out << ",label";
    if (dataset.task() == TaskType::kRegression) out << ",target";
    out << '\n';
  }
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const linalg::Vector& record = dataset.record(i);
    for (std::size_t c = 0; c < record.dim(); ++c) {
      if (c > 0) out << ',';
      out << record[c];
    }
    if (dataset.task() == TaskType::kClassification) {
      out << ',' << dataset.label(i);
    } else if (dataset.task() == TaskType::kRegression) {
      out << ',' << dataset.target(i);
    }
    out << '\n';
  }
  return out.str();
}

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return InvalidArgumentError("cannot open " + path + " for writing");
  }
  file << WriteCsvToString(dataset);
  if (!file) {
    return DataLossError("short write to " + path);
  }
  return OkStatus();
}

}  // namespace condensa::data
