// Train/test and cross-validation splitting.

#ifndef CONDENSA_DATA_SPLIT_H_
#define CONDENSA_DATA_SPLIT_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "data/dataset.h"

namespace condensa::data {

struct TrainTestSplit {
  Dataset train = Dataset(0);
  Dataset test = Dataset(0);
};

// Randomly splits `dataset` with `train_fraction` of records in train.
// For classification datasets the split is stratified: each class
// contributes (approximately) the same fraction to the train side, so
// rare classes are represented in both sides whenever they have >= 2
// records. Fails when the dataset is empty or the fraction is outside
// (0, 1).
StatusOr<TrainTestSplit> SplitTrainTest(const Dataset& dataset,
                                        double train_fraction, Rng& rng);

// Produces `folds` disjoint index sets covering the dataset, shuffled and
// (for classification) stratified. Fails when folds < 2 or folds > size.
StatusOr<std::vector<std::vector<std::size_t>>> MakeFolds(
    const Dataset& dataset, std::size_t folds, Rng& rng);

// Returns a copy of `dataset` with records (and labels/targets) in a
// uniformly random order.
Dataset Shuffled(const Dataset& dataset, Rng& rng);

}  // namespace condensa::data

#endif  // CONDENSA_DATA_SPLIT_H_
