#include "data/transform.h"

#include <cmath>

namespace condensa::data {
namespace {

// Copies a dataset record-by-record through `map`, keeping supervision.
template <typename Fn>
Dataset MapDataset(const Dataset& dataset, Fn&& map) {
  Dataset out(dataset.dim(), dataset.task());
  if (!dataset.feature_names().empty()) {
    Status status = out.SetFeatureNames(dataset.feature_names());
    CONDENSA_CHECK(status.ok());
  }
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    linalg::Vector mapped = map(dataset.record(i));
    switch (dataset.task()) {
      case TaskType::kUnlabeled:
        out.Add(std::move(mapped));
        break;
      case TaskType::kClassification:
        out.Add(std::move(mapped), dataset.label(i));
        break;
      case TaskType::kRegression:
        out.Add(std::move(mapped), dataset.target(i));
        break;
    }
  }
  return out;
}

}  // namespace

Status ZScoreScaler::Fit(const Dataset& dataset) {
  if (dataset.empty()) {
    return InvalidArgumentError("cannot fit scaler on empty dataset");
  }
  const std::size_t d = dataset.dim();
  mean_ = dataset.Mean();
  stddev_ = linalg::Vector(d);
  for (const linalg::Vector& record : dataset.records()) {
    for (std::size_t j = 0; j < d; ++j) {
      double diff = record[j] - mean_[j];
      stddev_[j] += diff * diff;
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    stddev_[j] = std::sqrt(stddev_[j] / static_cast<double>(dataset.size()));
    if (stddev_[j] <= 0.0) {
      stddev_[j] = 1.0;  // constant dimension: shift only
    }
  }
  fitted_ = true;
  return OkStatus();
}

linalg::Vector ZScoreScaler::Transform(const linalg::Vector& record) const {
  CONDENSA_CHECK(fitted_);
  CONDENSA_CHECK_EQ(record.dim(), mean_.dim());
  linalg::Vector out(record.dim());
  for (std::size_t j = 0; j < record.dim(); ++j) {
    out[j] = (record[j] - mean_[j]) / stddev_[j];
  }
  return out;
}

linalg::Vector ZScoreScaler::InverseTransform(
    const linalg::Vector& record) const {
  CONDENSA_CHECK(fitted_);
  CONDENSA_CHECK_EQ(record.dim(), mean_.dim());
  linalg::Vector out(record.dim());
  for (std::size_t j = 0; j < record.dim(); ++j) {
    out[j] = record[j] * stddev_[j] + mean_[j];
  }
  return out;
}

Dataset ZScoreScaler::TransformDataset(const Dataset& dataset) const {
  return MapDataset(dataset,
                    [this](const linalg::Vector& r) { return Transform(r); });
}

Dataset ZScoreScaler::InverseTransformDataset(const Dataset& dataset) const {
  return MapDataset(dataset, [this](const linalg::Vector& r) {
    return InverseTransform(r);
  });
}

Status MinMaxScaler::Fit(const Dataset& dataset) {
  if (dataset.empty()) {
    return InvalidArgumentError("cannot fit scaler on empty dataset");
  }
  const std::size_t d = dataset.dim();
  min_ = dataset.record(0);
  max_ = dataset.record(0);
  for (const linalg::Vector& record : dataset.records()) {
    for (std::size_t j = 0; j < d; ++j) {
      min_[j] = std::min(min_[j], record[j]);
      max_[j] = std::max(max_[j], record[j]);
    }
  }
  fitted_ = true;
  return OkStatus();
}

linalg::Vector MinMaxScaler::Transform(const linalg::Vector& record) const {
  CONDENSA_CHECK(fitted_);
  CONDENSA_CHECK_EQ(record.dim(), min_.dim());
  linalg::Vector out(record.dim());
  for (std::size_t j = 0; j < record.dim(); ++j) {
    double span = max_[j] - min_[j];
    out[j] = span > 0.0 ? (record[j] - min_[j]) / span : 0.0;
  }
  return out;
}

linalg::Vector MinMaxScaler::InverseTransform(
    const linalg::Vector& record) const {
  CONDENSA_CHECK(fitted_);
  CONDENSA_CHECK_EQ(record.dim(), min_.dim());
  linalg::Vector out(record.dim());
  for (std::size_t j = 0; j < record.dim(); ++j) {
    out[j] = min_[j] + record[j] * (max_[j] - min_[j]);
  }
  return out;
}

Dataset MinMaxScaler::TransformDataset(const Dataset& dataset) const {
  return MapDataset(dataset,
                    [this](const linalg::Vector& r) { return Transform(r); });
}

}  // namespace condensa::data
