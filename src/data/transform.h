// Feature scaling.
//
// Nearest-neighbour grouping (both the condenser and the k-NN classifier)
// is scale-sensitive, so the benches z-score features on the training side
// before condensing, matching standard practice for the UCI workloads.

#ifndef CONDENSA_DATA_TRANSFORM_H_
#define CONDENSA_DATA_TRANSFORM_H_

#include "common/status.h"
#include "data/dataset.h"
#include "linalg/vector.h"

namespace condensa::data {

// Per-dimension standardization: x' = (x - mean) / stddev. Dimensions with
// zero variance pass through unshifted in scale (stddev treated as 1).
class ZScoreScaler {
 public:
  ZScoreScaler() = default;

  // Learns mean and stddev from `dataset`. Fails when the dataset is empty.
  Status Fit(const Dataset& dataset);

  bool fitted() const { return fitted_; }
  const linalg::Vector& mean() const { return mean_; }
  const linalg::Vector& stddev() const { return stddev_; }

  // Transforms a single record. Requires fitted() and matching dim.
  linalg::Vector Transform(const linalg::Vector& record) const;
  // Undoes Transform.
  linalg::Vector InverseTransform(const linalg::Vector& record) const;

  // Transforms every record, keeping labels/targets.
  Dataset TransformDataset(const Dataset& dataset) const;
  Dataset InverseTransformDataset(const Dataset& dataset) const;

 private:
  bool fitted_ = false;
  linalg::Vector mean_;
  linalg::Vector stddev_;
};

// Per-dimension min-max scaling to [0, 1]. Constant dimensions map to 0.
class MinMaxScaler {
 public:
  MinMaxScaler() = default;

  Status Fit(const Dataset& dataset);

  bool fitted() const { return fitted_; }
  const linalg::Vector& min() const { return min_; }
  const linalg::Vector& max() const { return max_; }

  linalg::Vector Transform(const linalg::Vector& record) const;
  linalg::Vector InverseTransform(const linalg::Vector& record) const;
  Dataset TransformDataset(const Dataset& dataset) const;

 private:
  bool fitted_ = false;
  linalg::Vector min_;
  linalg::Vector max_;
};

}  // namespace condensa::data

#endif  // CONDENSA_DATA_TRANSFORM_H_
