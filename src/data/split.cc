#include "data/split.h"

#include <algorithm>
#include <numeric>

namespace condensa::data {
namespace {

std::vector<std::size_t> ShuffledIndices(std::size_t n, Rng& rng) {
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  rng.Shuffle(indices);
  return indices;
}

}  // namespace

StatusOr<TrainTestSplit> SplitTrainTest(const Dataset& dataset,
                                        double train_fraction, Rng& rng) {
  if (dataset.empty()) {
    return InvalidArgumentError("cannot split an empty dataset");
  }
  if (!(train_fraction > 0.0 && train_fraction < 1.0)) {
    return InvalidArgumentError("train_fraction must be in (0, 1)");
  }

  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;

  if (dataset.task() == TaskType::kClassification) {
    for (auto& [label, indices] : dataset.IndicesByLabel()) {
      (void)label;
      std::vector<std::size_t> shuffled = indices;
      rng.Shuffle(shuffled);
      // Round rather than truncate so tiny classes land on both sides when
      // they have at least two records.
      std::size_t train_count = static_cast<std::size_t>(
          train_fraction * static_cast<double>(shuffled.size()) + 0.5);
      train_count = std::min(train_count, shuffled.size());
      if (shuffled.size() >= 2) {
        train_count = std::max<std::size_t>(train_count, 1);
        train_count = std::min(train_count, shuffled.size() - 1);
      }
      for (std::size_t i = 0; i < shuffled.size(); ++i) {
        (i < train_count ? train_indices : test_indices)
            .push_back(shuffled[i]);
      }
    }
  } else {
    std::vector<std::size_t> shuffled = ShuffledIndices(dataset.size(), rng);
    std::size_t train_count = static_cast<std::size_t>(
        train_fraction * static_cast<double>(shuffled.size()) + 0.5);
    train_count = std::clamp<std::size_t>(train_count, 1, shuffled.size() - 1);
    for (std::size_t i = 0; i < shuffled.size(); ++i) {
      (i < train_count ? train_indices : test_indices).push_back(shuffled[i]);
    }
  }

  if (train_indices.empty() || test_indices.empty()) {
    return FailedPreconditionError(
        "split produced an empty train or test side");
  }

  TrainTestSplit split;
  split.train = dataset.Select(train_indices);
  split.test = dataset.Select(test_indices);
  return split;
}

StatusOr<std::vector<std::vector<std::size_t>>> MakeFolds(
    const Dataset& dataset, std::size_t folds, Rng& rng) {
  if (folds < 2) {
    return InvalidArgumentError("need at least 2 folds");
  }
  if (folds > dataset.size()) {
    return InvalidArgumentError("more folds than records");
  }

  std::vector<std::vector<std::size_t>> result(folds);
  if (dataset.task() == TaskType::kClassification) {
    // Deal each class round-robin across folds.
    std::size_t next_fold = 0;
    for (auto& [label, indices] : dataset.IndicesByLabel()) {
      (void)label;
      std::vector<std::size_t> shuffled = indices;
      rng.Shuffle(shuffled);
      for (std::size_t i : shuffled) {
        result[next_fold].push_back(i);
        next_fold = (next_fold + 1) % folds;
      }
    }
  } else {
    std::vector<std::size_t> shuffled = ShuffledIndices(dataset.size(), rng);
    for (std::size_t i = 0; i < shuffled.size(); ++i) {
      result[i % folds].push_back(shuffled[i]);
    }
  }
  return result;
}

Dataset Shuffled(const Dataset& dataset, Rng& rng) {
  std::vector<std::size_t> indices = ShuffledIndices(dataset.size(), rng);
  return dataset.Select(indices);
}

}  // namespace condensa::data
