#include "data/dataset.h"

#include <algorithm>
#include <set>

#include "linalg/stats.h"

namespace condensa::data {

void Dataset::Add(linalg::Vector record) {
  CONDENSA_CHECK(task_ == TaskType::kUnlabeled);
  CONDENSA_CHECK_EQ(record.dim(), dim_);
  records_.push_back(std::move(record));
}

void Dataset::Add(linalg::Vector record, int label) {
  CONDENSA_CHECK(task_ == TaskType::kClassification);
  CONDENSA_CHECK_EQ(record.dim(), dim_);
  records_.push_back(std::move(record));
  labels_.push_back(label);
}

void Dataset::Add(linalg::Vector record, double target) {
  CONDENSA_CHECK(task_ == TaskType::kRegression);
  CONDENSA_CHECK_EQ(record.dim(), dim_);
  records_.push_back(std::move(record));
  targets_.push_back(target);
}

int Dataset::label(std::size_t i) const {
  CONDENSA_CHECK(task_ == TaskType::kClassification);
  CONDENSA_DCHECK_LT(i, labels_.size());
  return labels_[i];
}

double Dataset::target(std::size_t i) const {
  CONDENSA_CHECK(task_ == TaskType::kRegression);
  CONDENSA_DCHECK_LT(i, targets_.size());
  return targets_[i];
}

Status Dataset::SetFeatureNames(std::vector<std::string> names) {
  if (names.size() != dim_) {
    return InvalidArgumentError("feature name count does not match dim");
  }
  feature_names_ = std::move(names);
  return OkStatus();
}

std::vector<int> Dataset::DistinctLabels() const {
  CONDENSA_CHECK(task_ == TaskType::kClassification);
  std::set<int> distinct(labels_.begin(), labels_.end());
  return std::vector<int>(distinct.begin(), distinct.end());
}

std::map<int, std::vector<std::size_t>> Dataset::IndicesByLabel() const {
  CONDENSA_CHECK(task_ == TaskType::kClassification);
  std::map<int, std::vector<std::size_t>> by_label;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    by_label[labels_[i]].push_back(i);
  }
  return by_label;
}

Dataset Dataset::Select(const std::vector<std::size_t>& indices) const {
  Dataset out(dim_, task_);
  out.feature_names_ = feature_names_;
  for (std::size_t i : indices) {
    CONDENSA_CHECK_LT(i, records_.size());
    switch (task_) {
      case TaskType::kUnlabeled:
        out.Add(records_[i]);
        break;
      case TaskType::kClassification:
        out.Add(records_[i], labels_[i]);
        break;
      case TaskType::kRegression:
        out.Add(records_[i], targets_[i]);
        break;
    }
  }
  return out;
}

Dataset Dataset::SelectLabel(int label) const {
  CONDENSA_CHECK(task_ == TaskType::kClassification);
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) indices.push_back(i);
  }
  return Select(indices);
}

void Dataset::Append(const Dataset& other) {
  CONDENSA_CHECK_EQ(dim_, other.dim_);
  CONDENSA_CHECK(task_ == other.task_);
  for (std::size_t i = 0; i < other.size(); ++i) {
    switch (task_) {
      case TaskType::kUnlabeled:
        Add(other.records_[i]);
        break;
      case TaskType::kClassification:
        Add(other.records_[i], other.labels_[i]);
        break;
      case TaskType::kRegression:
        Add(other.records_[i], other.targets_[i]);
        break;
    }
  }
}

linalg::Vector Dataset::Mean() const {
  return linalg::MeanVector(records_);
}

linalg::Matrix Dataset::Covariance() const {
  return linalg::CovarianceMatrix(records_);
}

Status Dataset::Validate() const {
  for (const linalg::Vector& r : records_) {
    if (r.dim() != dim_) {
      return InternalError("record dimension mismatch");
    }
  }
  if (task_ == TaskType::kClassification &&
      labels_.size() != records_.size()) {
    return InternalError("label count does not match record count");
  }
  if (task_ == TaskType::kRegression &&
      targets_.size() != records_.size()) {
    return InternalError("target count does not match record count");
  }
  if (!feature_names_.empty() && feature_names_.size() != dim_) {
    return InternalError("feature name count does not match dim");
  }
  return OkStatus();
}

}  // namespace condensa::data
