// In-memory multi-dimensional dataset.
//
// A Dataset holds numeric records of a fixed dimension plus, optionally,
// either a class label per record (classification) or a real-valued target
// per record (regression). This is the input and output type of the entire
// condensation pipeline: the anonymizer produces a Dataset that can be fed
// to any mining algorithm unchanged — which is the paper's core selling
// point.

#ifndef CONDENSA_DATA_DATASET_H_
#define CONDENSA_DATA_DATASET_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace condensa::data {

// What kind of supervision the dataset carries.
enum class TaskType {
  kUnlabeled = 0,
  kClassification = 1,
  kRegression = 2,
};

class Dataset {
 public:
  // Creates an empty dataset of the given record dimension.
  explicit Dataset(std::size_t dim, TaskType task = TaskType::kUnlabeled)
      : dim_(dim), task_(task) {}

  Dataset(const Dataset&) = default;
  Dataset& operator=(const Dataset&) = default;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  std::size_t dim() const { return dim_; }
  TaskType task() const { return task_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  // Appends an unlabeled record. Dataset task must be kUnlabeled.
  void Add(linalg::Vector record);
  // Appends a labeled record. Dataset task must be kClassification.
  void Add(linalg::Vector record, int label);
  // Appends a record with a regression target. Task must be kRegression.
  void Add(linalg::Vector record, double target);

  const linalg::Vector& record(std::size_t i) const {
    CONDENSA_DCHECK_LT(i, records_.size());
    return records_[i];
  }
  const std::vector<linalg::Vector>& records() const { return records_; }

  // Label of record i. Task must be kClassification.
  int label(std::size_t i) const;
  const std::vector<int>& labels() const { return labels_; }

  // Regression target of record i. Task must be kRegression.
  double target(std::size_t i) const;
  const std::vector<double>& targets() const { return targets_; }

  // Feature names; empty unless set. When set, size must equal dim().
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  Status SetFeatureNames(std::vector<std::string> names);

  // Distinct labels in ascending order (classification only).
  std::vector<int> DistinctLabels() const;

  // Record indices per label (classification only).
  std::map<int, std::vector<std::size_t>> IndicesByLabel() const;

  // Returns a dataset containing the listed records (with their labels or
  // targets). Indices must be in range.
  Dataset Select(const std::vector<std::size_t>& indices) const;

  // Returns the subset with the given label (classification only).
  Dataset SelectLabel(int label) const;

  // Appends all records of `other`. Dim and task must match.
  void Append(const Dataset& other);

  // Mean vector of the records. Requires a non-empty dataset.
  linalg::Vector Mean() const;

  // Population covariance matrix of the records (divides by n, matching the
  // paper's Observation 2). Requires a non-empty dataset.
  linalg::Matrix Covariance() const;

  // Verifies internal consistency (record dims, parallel-array lengths).
  Status Validate() const;

 private:
  std::size_t dim_;
  TaskType task_;
  std::vector<linalg::Vector> records_;
  std::vector<int> labels_;      // parallel to records_ iff classification
  std::vector<double> targets_;  // parallel to records_ iff regression
  std::vector<std::string> feature_names_;
};

}  // namespace condensa::data

#endif  // CONDENSA_DATA_DATASET_H_
