#include "perturb/perturbation.h"

#include <cmath>

#include "common/check.h"

namespace condensa::perturb {

double NoiseSpec::Density(double y) const {
  CONDENSA_DCHECK_GT(scale, 0.0);
  switch (kind) {
    case NoiseKind::kUniform:
      return std::abs(y) <= scale ? 1.0 / (2.0 * scale) : 0.0;
    case NoiseKind::kGaussian: {
      double z = y / scale;
      return std::exp(-0.5 * z * z) / (scale * std::sqrt(2.0 * M_PI));
    }
  }
  return 0.0;
}

double NoiseSpec::Cdf(double y) const {
  CONDENSA_DCHECK_GT(scale, 0.0);
  switch (kind) {
    case NoiseKind::kUniform:
      if (y <= -scale) return 0.0;
      if (y >= scale) return 1.0;
      return (y + scale) / (2.0 * scale);
    case NoiseKind::kGaussian:
      return 0.5 * (1.0 + std::erf(y / (scale * std::sqrt(2.0))));
  }
  return 0.0;
}

double NoiseSpec::StdDev() const {
  switch (kind) {
    case NoiseKind::kUniform:
      return scale / std::sqrt(3.0);
    case NoiseKind::kGaussian:
      return scale;
  }
  return 0.0;
}

double NoiseSpec::Extent() const {
  switch (kind) {
    case NoiseKind::kUniform:
      return scale;
    case NoiseKind::kGaussian:
      return 4.0 * scale;
  }
  return 0.0;
}

double NoiseSpec::Sample(Rng& rng) const {
  CONDENSA_DCHECK_GT(scale, 0.0);
  switch (kind) {
    case NoiseKind::kUniform:
      return rng.Uniform(-scale, scale);
    case NoiseKind::kGaussian:
      return rng.Gaussian(0.0, scale);
  }
  return 0.0;
}

StatusOr<data::Dataset> PerturbDataset(const data::Dataset& dataset,
                                       const NoiseSpec& noise, Rng& rng) {
  if (noise.scale <= 0.0) {
    return InvalidArgumentError("noise scale must be positive");
  }
  data::Dataset out(dataset.dim(), dataset.task());
  if (!dataset.feature_names().empty()) {
    CONDENSA_RETURN_IF_ERROR(out.SetFeatureNames(dataset.feature_names()));
  }
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    linalg::Vector record = dataset.record(i);
    for (std::size_t j = 0; j < record.dim(); ++j) {
      record[j] += noise.Sample(rng);
    }
    switch (dataset.task()) {
      case data::TaskType::kUnlabeled:
        out.Add(std::move(record));
        break;
      case data::TaskType::kClassification:
        out.Add(std::move(record), dataset.label(i));
        break;
      case data::TaskType::kRegression:
        out.Add(std::move(record), dataset.target(i));
        break;
    }
  }
  return out;
}

std::vector<double> PerturbValues(const std::vector<double>& values,
                                  const NoiseSpec& noise, Rng& rng) {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) {
    out.push_back(v + noise.Sample(rng));
  }
  return out;
}

}  // namespace condensa::perturb
