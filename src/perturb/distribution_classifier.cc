#include "perturb/distribution_classifier.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace condensa::perturb {

Status DistributionClassifier::Fit(const data::Dataset& train) {
  if (train.task() != data::TaskType::kClassification) {
    return InvalidArgumentError(
        "DistributionClassifier requires classification data");
  }
  if (train.empty()) {
    return InvalidArgumentError("cannot fit on an empty dataset");
  }

  classes_.clear();
  const double total = static_cast<double>(train.size());
  for (const auto& [label, indices] : train.IndicesByLabel()) {
    ClassModel model;
    model.log_prior =
        std::log(static_cast<double>(indices.size()) / total);
    model.dimensions.reserve(train.dim());
    for (std::size_t j = 0; j < train.dim(); ++j) {
      std::vector<double> column;
      column.reserve(indices.size());
      for (std::size_t i : indices) {
        column.push_back(train.record(i)[j]);
      }
      CONDENSA_ASSIGN_OR_RETURN(
          ReconstructionResult reconstruction,
          ReconstructDistribution(column, noise_, options_.reconstruction));
      model.dimensions.push_back(std::move(reconstruction.distribution));
    }
    classes_.emplace(label, std::move(model));
  }
  return OkStatus();
}

int DistributionClassifier::Predict(const linalg::Vector& record) const {
  CONDENSA_CHECK(!classes_.empty());
  int best_label = classes_.begin()->first;
  double best_score = -std::numeric_limits<double>::infinity();
  for (const auto& [label, model] : classes_) {
    double score = model.log_prior;
    for (std::size_t j = 0; j < record.dim(); ++j) {
      double density = model.dimensions[j].Density(record[j]);
      score += std::log(std::max(density, options_.density_floor));
    }
    if (score > best_score) {
      best_score = score;
      best_label = label;
    }
  }
  return best_label;
}

}  // namespace condensa::perturb
