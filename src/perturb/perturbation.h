// Additive-noise perturbation (the Agrawal–Srikant baseline, paper [1]).
//
// Each value is released as x + y with y drawn independently from a public
// noise distribution. This is the approach the paper argues against: the
// server can reconstruct each dimension's aggregate distribution but not
// multi-dimensional records, so inter-attribute correlations are lost and
// every mining algorithm must be redesigned around distributions.

#ifndef CONDENSA_PERTURB_PERTURBATION_H_
#define CONDENSA_PERTURB_PERTURBATION_H_

#include "common/random.h"
#include "common/status.h"
#include "data/dataset.h"

namespace condensa::perturb {

enum class NoiseKind {
  // Uniform on [-half_width, +half_width].
  kUniform = 0,
  // Gaussian with standard deviation `scale`.
  kGaussian = 1,
};

// The (publicly known) perturbing distribution Y.
struct NoiseSpec {
  NoiseKind kind = NoiseKind::kUniform;
  // Uniform: half-width of the interval. Gaussian: standard deviation.
  // Must be positive.
  double scale = 1.0;

  // Density f_Y(y).
  double Density(double y) const;
  // Cumulative distribution F_Y(y).
  double Cdf(double y) const;
  // Standard deviation of the noise.
  double StdDev() const;
  // Largest |y| with non-negligible density (uniform: scale; Gaussian:
  // 4 standard deviations), used to bound reconstruction supports.
  double Extent() const;
  // Draws one noise value.
  double Sample(Rng& rng) const;
};

// Returns a copy of `dataset` with every feature value independently
// perturbed (labels/targets untouched). Fails when scale <= 0.
StatusOr<data::Dataset> PerturbDataset(const data::Dataset& dataset,
                                       const NoiseSpec& noise, Rng& rng);

// Perturbs a single column of scalar values.
std::vector<double> PerturbValues(const std::vector<double>& values,
                                  const NoiseSpec& noise, Rng& rng);

}  // namespace condensa::perturb

#endif  // CONDENSA_PERTURB_PERTURBATION_H_
