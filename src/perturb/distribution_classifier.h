// Distribution-based classifier over reconstructed per-dimension densities.
//
// This is the style of algorithm the perturbation approach forces (paper
// Section 1): the server never sees records, only the perturbed values, so
// the best it can do is reconstruct each dimension's class-conditional
// distribution independently and classify by the product of per-dimension
// densities. By construction it cannot exploit inter-attribute
// correlations — the deficiency the condensation approach removes.
// Ablation bench A3 compares it against a plain k-NN on condensed data at
// matched privacy levels.

#ifndef CONDENSA_PERTURB_DISTRIBUTION_CLASSIFIER_H_
#define CONDENSA_PERTURB_DISTRIBUTION_CLASSIFIER_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "mining/model.h"
#include "perturb/reconstruction.h"

namespace condensa::perturb {

struct DistributionClassifierOptions {
  // Coarser bins and early-stopped EM than the raw reconstruction
  // defaults: fully-converged deconvolution is spiky (it concentrates
  // mass at the observed values minus noise) and generalizes poorly as a
  // class-conditional density.
  ReconstructionOptions reconstruction{
      .bins = 24, .max_iterations = 40, .tolerance = 1e-4};
  // Floor applied to per-dimension densities so a value outside one
  // dimension's reconstructed support does not veto the whole class.
  double density_floor = 1e-9;
};

// Fits on an already-perturbed classification dataset; `noise` must be the
// same public distribution the data was perturbed with.
class DistributionClassifier : public mining::Classifier {
 public:
  DistributionClassifier(NoiseSpec noise,
                         DistributionClassifierOptions options = {})
      : noise_(noise), options_(options) {}

  // `train` holds perturbed records; reconstruction recovers each class's
  // per-dimension distributions.
  Status Fit(const data::Dataset& train) override;
  int Predict(const linalg::Vector& record) const override;

 private:
  struct ClassModel {
    double log_prior = 0.0;
    std::vector<ReconstructedDistribution> dimensions;
  };

  NoiseSpec noise_;
  DistributionClassifierOptions options_;
  std::map<int, ClassModel> classes_;
};

}  // namespace condensa::perturb

#endif  // CONDENSA_PERTURB_DISTRIBUTION_CLASSIFIER_H_
