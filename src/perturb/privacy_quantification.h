// Information-theoretic privacy quantification for perturbation
// (the framework of the paper's reference [2], Agrawal & Aggarwal).
//
// For a random variable A released through a channel with output B, [2]
// measures inherent privacy as Π(A) = 2^{h(A)} (the length of a uniform
// interval with the same differential entropy) and conditional privacy
// as Π(A|B) = 2^{h(A|B)}; the fraction of privacy lost is
// P(A|B) = 1 − Π(A|B)/Π(A). These helpers compute discretized versions
// for the additive-perturbation channel, letting ablation A3-style
// comparisons report a principled privacy level for each noise scale.

#ifndef CONDENSA_PERTURB_PRIVACY_QUANTIFICATION_H_
#define CONDENSA_PERTURB_PRIVACY_QUANTIFICATION_H_

#include <vector>

#include "common/status.h"
#include "perturb/perturbation.h"
#include "perturb/reconstruction.h"

namespace condensa::perturb {

// Differential entropy h(A) (in bits) of a piecewise-constant density.
double DifferentialEntropyBits(const ReconstructedDistribution& density);

// Π(A) = 2^{h(A)} of a piecewise-constant density: the length of the
// uniform interval carrying the same uncertainty.
double InherentPrivacy(const ReconstructedDistribution& density);

struct PrivacyLossReport {
  // Π(A): inherent privacy of the original values.
  double inherent_privacy = 0.0;
  // Π(A|B): average conditional privacy after observing the perturbed
  // values.
  double conditional_privacy = 0.0;
  // P(A|B) = 1 − Π(A|B)/Π(A); 0 = nothing learned, 1 = fully disclosed.
  double privacy_loss_fraction = 0.0;
};

struct PrivacyQuantificationOptions {
  // Grid resolution for the A density; the B (observation) grid uses
  // twice this resolution over the noise-widened support.
  std::size_t bins = 128;
};

// Quantifies the privacy of releasing values[i] + noise. `original` holds
// the true values (a histogram over them models the A density); the
// channel is the additive `noise`. Everything is computed on grids —
// h(A|B) = ∫ f_B(b) h(A|B=b) db with the exact posterior per grid cell —
// so the result is deterministic. Fails on empty input or non-positive
// noise scale.
StatusOr<PrivacyLossReport> QuantifyPerturbationPrivacy(
    const std::vector<double>& original, const NoiseSpec& noise,
    const PrivacyQuantificationOptions& options = {});

}  // namespace condensa::perturb

#endif  // CONDENSA_PERTURB_PRIVACY_QUANTIFICATION_H_
