// Per-dimension distribution reconstruction from perturbed values.
//
// Implements the discretized Bayes iterative algorithm of Agrawal–Srikant
// (paper reference [1]); on a fixed bin grid the refinement of
// Agrawal–Aggarwal (paper reference [2]) is exactly the EM update for the
// bin-probability mixture, so one implementation covers both. Given
// observed w_i = x_i + y_i and the public noise density f_Y, the update is
//
//   p_j ← (1/n) Σ_i  f_Y(w_i − a_j) p_j / Σ_k f_Y(w_i − a_k) p_k
//
// over bin centres a_j, which converges to the (discretized) maximum-
// likelihood estimate of the X distribution.

#ifndef CONDENSA_PERTURB_RECONSTRUCTION_H_
#define CONDENSA_PERTURB_RECONSTRUCTION_H_

#include <vector>

#include "common/status.h"
#include "perturb/perturbation.h"

namespace condensa::perturb {

struct ReconstructionOptions {
  std::size_t bins = 64;
  std::size_t max_iterations = 500;
  // Converged when the L1 change of bin probabilities falls below this.
  double tolerance = 1e-4;
};

// Piecewise-constant density estimate over [lo, hi).
class ReconstructedDistribution {
 public:
  ReconstructedDistribution(double lo, double hi,
                            std::vector<double> bin_probabilities);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return probabilities_.size(); }
  double bin_width() const { return width_; }
  const std::vector<double>& bin_probabilities() const {
    return probabilities_;
  }

  // Density at x (0 outside [lo, hi)).
  double Density(double x) const;
  // Centre of bin j.
  double BinCenter(std::size_t j) const;
  // Moments of the estimate.
  double Mean() const;
  double Variance() const;
  // Draws one value from the estimate (bin choice + uniform within bin).
  double Sample(Rng& rng) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<double> probabilities_;
};

struct ReconstructionResult {
  ReconstructedDistribution distribution;
  std::size_t iterations = 0;
  bool converged = false;
};

// Reconstructs the X distribution from perturbed observations. Fails when
// `perturbed` is empty, the noise scale is non-positive, or options are
// degenerate (0 bins).
StatusOr<ReconstructionResult> ReconstructDistribution(
    const std::vector<double>& perturbed, const NoiseSpec& noise,
    const ReconstructionOptions& options = {});

}  // namespace condensa::perturb

#endif  // CONDENSA_PERTURB_RECONSTRUCTION_H_
