#include "perturb/privacy_quantification.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace condensa::perturb {
namespace {

// -p log2(p) with the 0 log 0 = 0 convention.
double NLogP(double p) { return p > 0.0 ? -p * std::log2(p) : 0.0; }

}  // namespace

double DifferentialEntropyBits(const ReconstructedDistribution& density) {
  // For a piecewise-constant density with cell mass p_j over width w:
  // h = -Σ p_j log2(p_j / w).
  double entropy = 0.0;
  const double width = density.bin_width();
  for (double p : density.bin_probabilities()) {
    if (p > 0.0) {
      entropy += NLogP(p) + p * std::log2(width);
    }
  }
  return entropy;
}

double InherentPrivacy(const ReconstructedDistribution& density) {
  return std::exp2(DifferentialEntropyBits(density));
}

StatusOr<PrivacyLossReport> QuantifyPerturbationPrivacy(
    const std::vector<double>& original, const NoiseSpec& noise,
    const PrivacyQuantificationOptions& options) {
  if (original.empty()) {
    return InvalidArgumentError("no original values");
  }
  if (noise.scale <= 0.0) {
    return InvalidArgumentError("noise scale must be positive");
  }
  if (options.bins == 0) {
    return InvalidArgumentError("need at least one bin");
  }

  // Histogram model of the A density.
  double lo = *std::min_element(original.begin(), original.end());
  double hi = *std::max_element(original.begin(), original.end());
  if (hi <= lo) {
    hi = lo + 1e-9;  // degenerate (constant) data: a single thin cell
  }
  const std::size_t a_bins = options.bins;
  const double a_width = (hi - lo) / static_cast<double>(a_bins);
  std::vector<double> p(a_bins, 0.0);
  for (double v : original) {
    auto bin = static_cast<std::size_t>((v - lo) / a_width);
    p[std::min(bin, a_bins - 1)] += 1.0;
  }
  for (double& mass : p) {
    mass /= static_cast<double>(original.size());
  }
  ReconstructedDistribution a_density(lo, hi, p);

  PrivacyLossReport report;
  report.inherent_privacy = InherentPrivacy(a_density);

  // B grid: noise-widened support at double resolution.
  const double extent = noise.Extent();
  const double b_lo = lo - extent;
  const double b_hi = hi + extent;
  const std::size_t b_bins = 2 * a_bins;
  const double b_width = (b_hi - b_lo) / static_cast<double>(b_bins);

  // h(A|B) = Σ_m P(B in cell m) h(A | B in cell m). The channel uses
  // exact cell probabilities P(B in m | A = a_j) = F_Y(hi_m − a_j) −
  // F_Y(lo_m − a_j), so arbitrarily small noise still lands in the right
  // cell instead of falling between grid points.
  double conditional_entropy = 0.0;
  double total_b_mass = 0.0;
  std::vector<double> posterior(a_bins);
  for (std::size_t m = 0; m < b_bins; ++m) {
    double cell_lo = b_lo + static_cast<double>(m) * b_width;
    double cell_hi = cell_lo + b_width;
    double evidence = 0.0;
    for (std::size_t j = 0; j < a_bins; ++j) {
      double a = a_density.BinCenter(j);
      posterior[j] =
          p[j] * (noise.Cdf(cell_hi - a) - noise.Cdf(cell_lo - a));
      evidence += posterior[j];
    }
    if (evidence <= 0.0) continue;
    double h_given_b = 0.0;
    for (std::size_t j = 0; j < a_bins; ++j) {
      double q = posterior[j] / evidence;
      h_given_b += NLogP(q) + q * std::log2(a_width);
    }
    conditional_entropy += evidence * h_given_b;
    total_b_mass += evidence;
  }
  if (total_b_mass <= 0.0) {
    return InternalError("observation grid carries no probability mass");
  }
  conditional_entropy /= total_b_mass;

  report.conditional_privacy = std::exp2(conditional_entropy);
  report.privacy_loss_fraction =
      1.0 - report.conditional_privacy /
                std::max(report.inherent_privacy, 1e-300);
  // Discretization can make the ratio overshoot [0, 1] marginally.
  report.privacy_loss_fraction =
      std::clamp(report.privacy_loss_fraction, 0.0, 1.0);
  return report;
}

}  // namespace condensa::perturb
