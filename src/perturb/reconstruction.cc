#include "perturb/reconstruction.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace condensa::perturb {

ReconstructedDistribution::ReconstructedDistribution(
    double lo, double hi, std::vector<double> bin_probabilities)
    : lo_(lo), hi_(hi), probabilities_(std::move(bin_probabilities)) {
  CONDENSA_CHECK_LT(lo_, hi_);
  CONDENSA_CHECK(!probabilities_.empty());
  width_ = (hi_ - lo_) / static_cast<double>(probabilities_.size());
}

double ReconstructedDistribution::Density(double x) const {
  if (x < lo_ || x >= hi_) return 0.0;
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  bin = std::min(bin, probabilities_.size() - 1);
  return probabilities_[bin] / width_;
}

double ReconstructedDistribution::BinCenter(std::size_t j) const {
  CONDENSA_CHECK_LT(j, probabilities_.size());
  return lo_ + (static_cast<double>(j) + 0.5) * width_;
}

double ReconstructedDistribution::Mean() const {
  double mean = 0.0;
  for (std::size_t j = 0; j < probabilities_.size(); ++j) {
    mean += probabilities_[j] * BinCenter(j);
  }
  return mean;
}

double ReconstructedDistribution::Variance() const {
  double mean = Mean();
  double variance = 0.0;
  for (std::size_t j = 0; j < probabilities_.size(); ++j) {
    double diff = BinCenter(j) - mean;
    variance += probabilities_[j] * diff * diff;
  }
  // Within-bin spread of the piecewise-constant density.
  variance += width_ * width_ / 12.0;
  return variance;
}

double ReconstructedDistribution::Sample(Rng& rng) const {
  std::size_t bin = rng.Categorical(probabilities_);
  double left = lo_ + static_cast<double>(bin) * width_;
  return rng.Uniform(left, left + width_);
}

StatusOr<ReconstructionResult> ReconstructDistribution(
    const std::vector<double>& perturbed, const NoiseSpec& noise,
    const ReconstructionOptions& options) {
  if (perturbed.empty()) {
    return InvalidArgumentError("no perturbed observations");
  }
  if (noise.scale <= 0.0) {
    return InvalidArgumentError("noise scale must be positive");
  }
  if (options.bins == 0) {
    return InvalidArgumentError("need at least one bin");
  }

  // Support: observed range widened by the noise extent on each side.
  double lo = *std::min_element(perturbed.begin(), perturbed.end());
  double hi = *std::max_element(perturbed.begin(), perturbed.end());
  lo -= noise.Extent();
  hi += noise.Extent();
  if (hi <= lo) {
    hi = lo + 1.0;  // all observations identical and degenerate noise
  }

  const std::size_t bins = options.bins;
  const double width = (hi - lo) / static_cast<double>(bins);

  // Precompute the noise kernel f_Y(w_i − a_j) for every (i, j).
  std::vector<double> kernel(perturbed.size() * bins);
  for (std::size_t i = 0; i < perturbed.size(); ++i) {
    for (std::size_t j = 0; j < bins; ++j) {
      double center = lo + (static_cast<double>(j) + 0.5) * width;
      kernel[i * bins + j] = noise.Density(perturbed[i] - center);
    }
  }

  std::vector<double> p(bins, 1.0 / static_cast<double>(bins));
  std::vector<double> next(bins);

  ReconstructionResult result{ReconstructedDistribution(lo, hi, p), 0, false};
  for (std::size_t iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < perturbed.size(); ++i) {
      const double* row = &kernel[i * bins];
      double denom = 0.0;
      for (std::size_t j = 0; j < bins; ++j) {
        denom += row[j] * p[j];
      }
      if (denom <= 0.0) continue;  // observation outside modelled support
      for (std::size_t j = 0; j < bins; ++j) {
        next[j] += row[j] * p[j] / denom;
      }
    }
    double total = 0.0;
    for (double v : next) total += v;
    if (total <= 0.0) {
      return InternalError("reconstruction lost all probability mass");
    }
    double change = 0.0;
    for (std::size_t j = 0; j < bins; ++j) {
      next[j] /= total;
      change += std::abs(next[j] - p[j]);
    }
    p = next;
    result.iterations = iteration + 1;
    if (change < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.distribution = ReconstructedDistribution(lo, hi, p);
  return result;
}

}  // namespace condensa::perturb
