#include "net/wire.h"

#include <cstring>

namespace condensa::net {
namespace {

// StreamPipelineStats crosses the wire as a counted list of u64 fields in
// this fixed order; the count pins the schema so a field added on one
// side cannot be silently dropped by the other.
constexpr std::uint32_t kStatsFieldCount = 22;

void EncodeStats(WireWriter& writer,
                 const runtime::StreamPipelineStats& stats) {
  writer.PutU32(kStatsFieldCount);
  writer.PutU64(stats.submitted);
  writer.PutU64(stats.accepted);
  writer.PutU64(stats.rejected);
  writer.PutU64(stats.dropped);
  writer.PutU64(stats.applied);
  writer.PutU64(stats.quarantined);
  writer.PutU64(stats.quarantined_dimension);
  writer.PutU64(stats.quarantined_non_finite);
  writer.PutU64(stats.quarantined_failure);
  writer.PutU64(stats.spooled);
  writer.PutU64(stats.spool_replayed);
  writer.PutU64(stats.spool_remaining);
  writer.PutU64(stats.spool_recovered);
  writer.PutU64(stats.retries);
  writer.PutU64(stats.breaker_trips);
  writer.PutU64(stats.watchdog_stalls);
  writer.PutU64(stats.condenser_reopens);
  writer.PutU64(stats.queue_high_water);
  writer.PutU64(stats.quarantine_write_failures);
  writer.PutU64(stats.spool_write_failures);
  writer.PutU64(0);  // reserved
  writer.PutU64(0);  // reserved
}

Status DecodeStats(WireReader& reader,
                   runtime::StreamPipelineStats* stats) {
  std::uint32_t count = 0;
  CONDENSA_RETURN_IF_ERROR(reader.ReadU32(&count));
  if (count != kStatsFieldCount) {
    return DataLossError("stats field count mismatch: wire has " +
                         std::to_string(count) + ", this build expects " +
                         std::to_string(kStatsFieldCount));
  }
  std::uint64_t fields[kStatsFieldCount];
  for (std::uint32_t i = 0; i < count; ++i) {
    CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&fields[i]));
  }
  stats->submitted = fields[0];
  stats->accepted = fields[1];
  stats->rejected = fields[2];
  stats->dropped = fields[3];
  stats->applied = fields[4];
  stats->quarantined = fields[5];
  stats->quarantined_dimension = fields[6];
  stats->quarantined_non_finite = fields[7];
  stats->quarantined_failure = fields[8];
  stats->spooled = fields[9];
  stats->spool_replayed = fields[10];
  stats->spool_remaining = fields[11];
  stats->spool_recovered = fields[12];
  stats->retries = fields[13];
  stats->breaker_trips = fields[14];
  stats->watchdog_stalls = fields[15];
  stats->condenser_reopens = fields[16];
  stats->queue_high_water = fields[17];
  stats->quarantine_write_failures = fields[18];
  stats->spool_write_failures = fields[19];
  return OkStatus();
}

}  // namespace

void WireWriter::PutU8(std::uint8_t value) {
  buffer_.push_back(static_cast<char>(value));
}

void WireWriter::PutU16(std::uint16_t value) {
  for (int shift = 0; shift < 16; shift += 8) {
    buffer_.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void WireWriter::PutU32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void WireWriter::PutU64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void WireWriter::PutDouble(double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(std::string_view value) {
  PutU32(static_cast<std::uint32_t>(value.size()));
  buffer_.append(value.data(), value.size());
}

Status WireReader::ReadU8(std::uint8_t* value) {
  if (remaining() < 1) {
    return DataLossError("wire payload exhausted reading u8");
  }
  *value = static_cast<std::uint8_t>(data_[pos_]);
  pos_ += 1;
  return OkStatus();
}

Status WireReader::ReadU16(std::uint16_t* value) {
  if (remaining() < 2) {
    return DataLossError("wire payload exhausted reading u16");
  }
  std::uint16_t out = 0;
  for (int i = 1; i >= 0; --i) {
    out = static_cast<std::uint16_t>(
        (out << 8) | static_cast<unsigned char>(data_[pos_ + i]));
  }
  pos_ += 2;
  *value = out;
  return OkStatus();
}

Status WireReader::ReadU32(std::uint32_t* value) {
  if (remaining() < 4) {
    return DataLossError("wire payload exhausted reading u32");
  }
  std::uint32_t out = 0;
  for (int i = 3; i >= 0; --i) {
    out = (out << 8) | static_cast<unsigned char>(data_[pos_ + i]);
  }
  pos_ += 4;
  *value = out;
  return OkStatus();
}

Status WireReader::ReadU64(std::uint64_t* value) {
  if (remaining() < 8) {
    return DataLossError("wire payload exhausted reading u64");
  }
  std::uint64_t out = 0;
  for (int i = 7; i >= 0; --i) {
    out = (out << 8) | static_cast<unsigned char>(data_[pos_ + i]);
  }
  pos_ += 8;
  *value = out;
  return OkStatus();
}

Status WireReader::ReadDouble(double* value) {
  std::uint64_t bits = 0;
  CONDENSA_RETURN_IF_ERROR(ReadU64(&bits));
  std::memcpy(value, &bits, sizeof(bits));
  return OkStatus();
}

Status WireReader::ReadString(std::string* value) {
  std::uint32_t length = 0;
  const std::size_t saved = pos_;
  CONDENSA_RETURN_IF_ERROR(ReadU32(&length));
  if (length > remaining()) {
    pos_ = saved;
    return DataLossError("wire string length " + std::to_string(length) +
                         " exceeds remaining payload (" +
                         std::to_string(remaining()) + " bytes)");
  }
  value->assign(data_.data() + pos_, length);
  pos_ += length;
  return OkStatus();
}

Status WireReader::ExpectDone() const {
  if (pos_ != data_.size()) {
    return DataLossError("wire payload has " +
                         std::to_string(data_.size() - pos_) +
                         " trailing bytes");
  }
  return OkStatus();
}

std::string EncodeHello(const HelloMessage& msg) {
  WireWriter writer;
  writer.PutU64(msg.shard_id);
  writer.PutU64(msg.dim);
  writer.PutU64(msg.group_size);
  writer.PutU16(msg.split_rule);
  writer.PutU64(msg.snapshot_interval);
  writer.PutU8(msg.sync_every_append);
  writer.PutU64(msg.queue_capacity);
  writer.PutU64(msg.batch_size);
  writer.PutU64(msg.seed);
  writer.PutString(msg.backend);
  return writer.Take();
}

StatusOr<HelloMessage> DecodeHello(std::string_view payload) {
  WireReader reader(payload);
  HelloMessage msg;
  CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&msg.shard_id));
  CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&msg.dim));
  CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&msg.group_size));
  CONDENSA_RETURN_IF_ERROR(reader.ReadU16(&msg.split_rule));
  CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&msg.snapshot_interval));
  CONDENSA_RETURN_IF_ERROR(reader.ReadU8(&msg.sync_every_append));
  CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&msg.queue_capacity));
  CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&msg.batch_size));
  CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&msg.seed));
  CONDENSA_RETURN_IF_ERROR(reader.ReadString(&msg.backend));
  CONDENSA_RETURN_IF_ERROR(reader.ExpectDone());
  if (msg.dim == 0 || msg.dim > kMaxWireDim) {
    return DataLossError("Hello carries implausible dim " +
                         std::to_string(msg.dim));
  }
  if (msg.backend.empty()) {
    return DataLossError("Hello carries an empty backend id");
  }
  return msg;
}

std::string EncodeHelloAck(const HelloAckMessage& msg) {
  WireWriter writer;
  writer.PutString(msg.worker_id);
  writer.PutU64(msg.durable_total);
  return writer.Take();
}

StatusOr<HelloAckMessage> DecodeHelloAck(std::string_view payload) {
  WireReader reader(payload);
  HelloAckMessage msg;
  CONDENSA_RETURN_IF_ERROR(reader.ReadString(&msg.worker_id));
  CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&msg.durable_total));
  CONDENSA_RETURN_IF_ERROR(reader.ExpectDone());
  return msg;
}

std::string EncodeSubmit(const SubmitMessage& msg) {
  WireWriter writer;
  writer.PutU64(msg.base_sequence);
  writer.PutU64(msg.dim);
  writer.PutU32(static_cast<std::uint32_t>(msg.records.size()));
  for (const linalg::Vector& record : msg.records) {
    for (std::size_t i = 0; i < record.dim(); ++i) {
      writer.PutDouble(record[i]);
    }
  }
  return writer.Take();
}

StatusOr<SubmitMessage> DecodeSubmit(std::string_view payload) {
  WireReader reader(payload);
  SubmitMessage msg;
  CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&msg.base_sequence));
  CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&msg.dim));
  std::uint32_t count = 0;
  CONDENSA_RETURN_IF_ERROR(reader.ReadU32(&count));
  if (msg.dim == 0 || msg.dim > kMaxWireDim) {
    return DataLossError("Submit carries implausible dim " +
                         std::to_string(msg.dim));
  }
  if (count > kMaxRecordsPerSubmit) {
    return DataLossError("Submit record count " + std::to_string(count) +
                         " exceeds the per-batch cap");
  }
  // The exact byte requirement is known up front: reject a short payload
  // before allocating any record storage.
  const std::uint64_t need =
      static_cast<std::uint64_t>(count) * msg.dim * sizeof(double);
  if (need != reader.remaining()) {
    return DataLossError("Submit payload holds " +
                         std::to_string(reader.remaining()) +
                         " record bytes, header implies " +
                         std::to_string(need));
  }
  msg.records.reserve(count);
  for (std::uint32_t r = 0; r < count; ++r) {
    std::vector<double> values(msg.dim);
    for (std::uint64_t i = 0; i < msg.dim; ++i) {
      CONDENSA_RETURN_IF_ERROR(reader.ReadDouble(&values[i]));
    }
    msg.records.emplace_back(std::move(values));
  }
  CONDENSA_RETURN_IF_ERROR(reader.ExpectDone());
  return msg;
}

std::string EncodeSubmitAck(const SubmitAckMessage& msg) {
  WireWriter writer;
  writer.PutU64(msg.durable_total);
  return writer.Take();
}

StatusOr<SubmitAckMessage> DecodeSubmitAck(std::string_view payload) {
  WireReader reader(payload);
  SubmitAckMessage msg;
  CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&msg.durable_total));
  CONDENSA_RETURN_IF_ERROR(reader.ExpectDone());
  return msg;
}

std::string EncodeHeartbeat(const HeartbeatMessage& msg) {
  WireWriter writer;
  writer.PutU64(msg.nonce);
  return writer.Take();
}

StatusOr<HeartbeatMessage> DecodeHeartbeat(std::string_view payload) {
  WireReader reader(payload);
  HeartbeatMessage msg;
  CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&msg.nonce));
  CONDENSA_RETURN_IF_ERROR(reader.ExpectDone());
  return msg;
}

std::string EncodeHeartbeatAck(const HeartbeatAckMessage& msg) {
  WireWriter writer;
  writer.PutU64(msg.nonce);
  writer.PutU64(msg.durable_total);
  return writer.Take();
}

StatusOr<HeartbeatAckMessage> DecodeHeartbeatAck(std::string_view payload) {
  WireReader reader(payload);
  HeartbeatAckMessage msg;
  CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&msg.nonce));
  CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&msg.durable_total));
  CONDENSA_RETURN_IF_ERROR(reader.ExpectDone());
  return msg;
}

std::string EncodeFinishResult(const FinishResultMessage& msg) {
  WireWriter writer;
  EncodeStats(writer, msg.stats);
  writer.PutString(msg.groups_text);
  return writer.Take();
}

StatusOr<FinishResultMessage> DecodeFinishResult(std::string_view payload) {
  WireReader reader(payload);
  FinishResultMessage msg;
  CONDENSA_RETURN_IF_ERROR(DecodeStats(reader, &msg.stats));
  CONDENSA_RETURN_IF_ERROR(reader.ReadString(&msg.groups_text));
  CONDENSA_RETURN_IF_ERROR(reader.ExpectDone());
  return msg;
}

std::string EncodeError(const ErrorMessage& msg) {
  WireWriter writer;
  writer.PutU32(msg.code);
  writer.PutString(msg.message);
  return writer.Take();
}

StatusOr<ErrorMessage> DecodeError(std::string_view payload) {
  WireReader reader(payload);
  ErrorMessage msg;
  CONDENSA_RETURN_IF_ERROR(reader.ReadU32(&msg.code));
  CONDENSA_RETURN_IF_ERROR(reader.ReadString(&msg.message));
  CONDENSA_RETURN_IF_ERROR(reader.ExpectDone());
  return msg;
}

Status ErrorToStatus(const ErrorMessage& msg) {
  const auto code = static_cast<StatusCode>(msg.code);
  switch (code) {
    case StatusCode::kOk:
      return DataLossError("peer sent Error frame with OK code: " +
                           msg.message);
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kInternal:
    case StatusCode::kUnimplemented:
    case StatusCode::kDataLoss:
    case StatusCode::kResourceExhausted:
    case StatusCode::kUnavailable:
      return Status(code, msg.message);
  }
  return InternalError("peer sent unknown status code " +
                       std::to_string(msg.code) + ": " + msg.message);
}

ErrorMessage StatusToError(const Status& status) {
  ErrorMessage msg;
  msg.code = static_cast<std::uint32_t>(status.code());
  msg.message = status.message();
  return msg;
}

}  // namespace condensa::net
