// Shared accept/recv/dispatch loop for framed-protocol servers.
//
// The fabric's WorkerServer and the query plane's QueryServer both serve
// strict request/response sessions over the same wire framing. This
// class owns everything they would otherwise duplicate:
//
//   - the accept poll (kUnavailable ticks interleave with Stop checks),
//   - the per-session recv poll with idle-timeout accounting, leaning on
//     RecvFrame's guarantee that a zero-byte timeout is kUnavailable and
//     safe to re-poll while a mid-frame stall is kDataLoss,
//   - built-in Goodbye handling (a clean session end), and
//   - the "any transport error drops the session back to accept" policy
//     that keeps stale framing state from leaking across failures.
//
// Servers supply one dispatch callback mapping a decoded frame to a
// SessionAction; request-level failures are reported in-band with
// SendErrorFrame and the session continues.

#ifndef CONDENSA_NET_FRAMED_SERVER_H_
#define CONDENSA_NET_FRAMED_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/status.h"
#include "net/frame.h"
#include "net/socket.h"

namespace condensa::net {

struct FramedServerConfig {
  // Accept/recv poll granularity; bounds Stop() latency.
  double poll_ms = 100.0;
  // A session silent for this long is dropped back to accept, so a
  // client that vanished without closing cannot wedge the server.
  double idle_timeout_ms = 30000.0;

  Status Validate() const;
};

// What the dispatch callback tells the loop to do after a frame.
enum class SessionAction {
  // Keep serving this session.
  kContinue,
  // Drop the session (back to accept); the client redials.
  kEndSession,
  // Session is done AND the server should leave its Run loop (e.g. the
  // fabric's Finish completed).
  kStopServer,
};

class FramedServer {
 public:
  using FrameHandler =
      std::function<SessionAction(TcpConnection& conn, const Frame& frame)>;
  // Runs at session start; the returned context is held alive for the
  // session's duration (servers park metrics scopes / trace spans in it).
  using SessionHook = std::function<std::shared_ptr<void>(TcpConnection&)>;

  // `listener` must already be listening; `config` must validate.
  FramedServer(TcpListener listener, FramedServerConfig config);

  FramedServer(const FramedServer&) = delete;
  FramedServer& operator=(const FramedServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  bool ok() const { return listener_.ok(); }

  void set_on_session(SessionHook hook) { on_session_ = std::move(hook); }

  // Serves sessions (one at a time) until Stop() or a kStopServer
  // dispatch. Returns the first listener failure; session and request
  // errors are handled internally.
  Status Run(const FrameHandler& handler);

  // Asks Run() to return at its next poll tick (thread-safe).
  void Stop() { stop_.store(true, std::memory_order_relaxed); }

 private:
  void ServeSession(TcpConnection conn, const FrameHandler& handler);

  FramedServerConfig config_;
  TcpListener listener_;
  SessionHook on_session_;
  std::atomic<bool> stop_{false};
};

// Reports a request-level failure in-band as an Error frame. Best
// effort: if the reply cannot be delivered the session dies on the next
// recv anyway.
void SendErrorFrame(TcpConnection& conn, const Status& status,
                    double timeout_ms);

}  // namespace condensa::net

#endif  // CONDENSA_NET_FRAMED_SERVER_H_
