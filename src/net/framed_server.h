// Shared accept/recv/dispatch loop for framed-protocol servers.
//
// The fabric's WorkerServer and the query plane's QueryServer both serve
// strict request/response sessions over the same wire framing. This
// class owns everything they would otherwise duplicate:
//
//   - the accept poll (kUnavailable ticks interleave with Stop checks),
//   - the per-session recv poll with idle-timeout accounting, leaning on
//     RecvFrame's guarantee that a zero-byte timeout is kUnavailable and
//     safe to re-poll while a mid-frame stall is kDataLoss,
//   - built-in Goodbye handling (a clean session end), and
//   - the "any transport error drops the session back to accept" policy
//     that keeps stale framing state from leaking across failures.
//
// Sessions are served by a pool of `max_sessions` threads. The default
// (1) is the strictly serial loop the fabric's WorkerServer depends on —
// its dispatch state is confined to one thread and a second session can
// never observe a half-applied Submit. Servers whose dispatch is
// thread-safe (QueryServer: immutable snapshots + an internally
// synchronized cache) raise the cap; a connection accepted while all
// slots are busy is REJECTED IN-BAND with a kUnavailable Error frame
// carrying a retry-after hint, then closed — overload degrades to fast,
// explicit rejection instead of an unbounded accept backlog.
//
// Servers supply one dispatch callback mapping a decoded frame to a
// SessionAction; request-level failures are reported in-band with
// SendErrorFrame and the session continues.

#ifndef CONDENSA_NET_FRAMED_SERVER_H_
#define CONDENSA_NET_FRAMED_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/frame.h"
#include "net/socket.h"

namespace condensa::net {

struct FramedServerConfig {
  // Accept/recv poll granularity; bounds Stop() latency.
  double poll_ms = 100.0;
  // A session silent for this long is dropped back to accept, so a
  // client that vanished without closing cannot wedge the server.
  double idle_timeout_ms = 30000.0;
  // Concurrent session cap. 1 (the default) serves sessions strictly
  // serially on the Run() thread — dispatch state needs no locking.
  // Above 1, sessions run on a pool of this many threads and the
  // dispatch callback must be thread-safe.
  std::size_t max_sessions = 1;
  // The retry-after hint carried by the in-band rejection when a
  // connection arrives beyond max_sessions.
  double reject_retry_after_ms = 200.0;

  Status Validate() const;
};

// What the dispatch callback tells the loop to do after a frame.
enum class SessionAction {
  // Keep serving this session.
  kContinue,
  // Drop the session (back to accept); the client redials.
  kEndSession,
  // Session is done AND the server should leave its Run loop (e.g. the
  // fabric's Finish completed).
  kStopServer,
};

class FramedServer {
 public:
  using FrameHandler =
      std::function<SessionAction(TcpConnection& conn, const Frame& frame)>;
  // Runs at session start; the returned context is held alive for the
  // session's duration (servers park metrics scopes / trace spans in it).
  using SessionHook = std::function<std::shared_ptr<void>(TcpConnection&)>;
  // Runs after a connection is rejected at the session cap (metrics).
  using RejectHook = std::function<void()>;

  // `listener` must already be listening; `config` must validate.
  FramedServer(TcpListener listener, FramedServerConfig config);

  FramedServer(const FramedServer&) = delete;
  FramedServer& operator=(const FramedServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  bool ok() const { return listener_.ok(); }

  void set_on_session(SessionHook hook) { on_session_ = std::move(hook); }
  void set_on_session_rejected(RejectHook hook) {
    on_rejected_ = std::move(hook);
  }

  // Serves sessions (up to max_sessions concurrently) until Stop() or a
  // kStopServer dispatch; all session threads have exited by the time it
  // returns. Returns the first listener failure; session and request
  // errors are handled internally.
  Status Run(const FrameHandler& handler);

  // Asks Run() to return at its next poll tick (thread-safe). In-flight
  // sessions notice at their next recv poll.
  void Stop() { stop_.store(true, std::memory_order_relaxed); }

  // True once Stop() was called or a kStopServer dispatch fired — lets
  // dispatch callbacks shed late requests as "shutting down".
  bool stopping() const { return stop_.load(std::memory_order_relaxed); }

  // Sessions admitted and not yet finished (tests and diagnostics).
  std::size_t active_sessions() const {
    return active_.load(std::memory_order_relaxed);
  }
  // Connections rejected in-band at the session cap.
  std::uint64_t rejected_sessions() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  Status RunSerial(const FrameHandler& handler);
  Status RunPooled(const FrameHandler& handler);
  void ServeSession(TcpConnection conn, const FrameHandler& handler);
  void RejectSession(TcpConnection conn);

  FramedServerConfig config_;
  TcpListener listener_;
  SessionHook on_session_;
  RejectHook on_rejected_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> active_{0};
  std::atomic<std::uint64_t> rejected_{0};

  // Pool-mode handoff: the accept loop pushes admitted connections, the
  // session threads pop them. Admission control (the active_ cap) keeps
  // the queue depth at most max_sessions, so pushes never block.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<TcpConnection> pending_;
  bool queue_closed_ = false;
};

// Reports a request-level failure in-band as an Error frame. Best
// effort: if the reply cannot be delivered the session dies on the next
// recv anyway.
void SendErrorFrame(TcpConnection& conn, const Status& status,
                    double timeout_ms);

}  // namespace condensa::net

#endif  // CONDENSA_NET_FRAMED_SERVER_H_
