#include "net/frame.h"

#include <array>
#include <cstring>

#include "common/check.h"

namespace condensa::net {
namespace {

constexpr char kMagic[4] = {'C', 'N', 'W', 'F'};

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
    }
    table[i] = crc;
  }
  return table;
}

void PutU16(std::string& out, std::uint16_t value) {
  out.push_back(static_cast<char>(value & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
}

void PutU32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

std::uint16_t GetU16(const char* data) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(data);
  return static_cast<std::uint16_t>(bytes[0] |
                                    (static_cast<std::uint16_t>(bytes[1])
                                     << 8));
}

std::uint32_t GetU32(const char* data) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(data);
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | bytes[i];
  }
  return value;
}

}  // namespace

std::uint32_t Crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

bool IsKnownFrameType(std::uint16_t value) {
  return value >= static_cast<std::uint16_t>(FrameType::kHello) &&
         value <= static_cast<std::uint16_t>(FrameType::kQueryResult);
}

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "Hello";
    case FrameType::kHelloAck: return "HelloAck";
    case FrameType::kSubmit: return "Submit";
    case FrameType::kSubmitAck: return "SubmitAck";
    case FrameType::kHeartbeat: return "Heartbeat";
    case FrameType::kHeartbeatAck: return "HeartbeatAck";
    case FrameType::kFinish: return "Finish";
    case FrameType::kFinishResult: return "FinishResult";
    case FrameType::kGoodbye: return "Goodbye";
    case FrameType::kError: return "Error";
    case FrameType::kQuery: return "Query";
    case FrameType::kQueryResult: return "QueryResult";
  }
  return "unknown";
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  CONDENSA_CHECK_LE(payload.size(),
                    static_cast<std::size_t>(kMaxFramePayload));
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  PutU16(out, kProtocolVersion);
  PutU16(out, static_cast<std::uint16_t>(type));
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  PutU32(out, Crc32(payload));
  out.append(payload.data(), payload.size());
  return out;
}

StatusOr<FrameHeader> DecodeFrameHeader(std::string_view data,
                                        std::uint32_t max_payload) {
  if (data.size() < kFrameHeaderSize) {
    return DataLossError("truncated frame header: " +
                         std::to_string(data.size()) + " of " +
                         std::to_string(kFrameHeaderSize) + " bytes");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return DataLossError("bad frame magic");
  }
  FrameHeader header;
  header.version = GetU16(data.data() + 4);
  if (header.version != kProtocolVersion) {
    return FailedPreconditionError(
        "unsupported wire protocol version " +
        std::to_string(header.version) + " (this build speaks " +
        std::to_string(kProtocolVersion) + ")");
  }
  const std::uint16_t raw_type = GetU16(data.data() + 6);
  if (!IsKnownFrameType(raw_type)) {
    return DataLossError("unknown frame type " + std::to_string(raw_type));
  }
  header.type = static_cast<FrameType>(raw_type);
  // The length is validated before any caller allocates payload space: a
  // corrupt length (including a negative value reinterpreted as a huge
  // unsigned) must never drive an allocation.
  header.payload_length = GetU32(data.data() + 8);
  if (header.payload_length > max_payload) {
    return DataLossError("frame payload length " +
                         std::to_string(header.payload_length) +
                         " exceeds the " + std::to_string(max_payload) +
                         "-byte cap");
  }
  header.payload_crc32 = GetU32(data.data() + 12);
  return header;
}

StatusOr<Frame> DecodeFrame(std::string_view data,
                            std::uint32_t max_payload) {
  CONDENSA_ASSIGN_OR_RETURN(FrameHeader header,
                            DecodeFrameHeader(data, max_payload));
  const std::size_t total = kFrameHeaderSize + header.payload_length;
  if (data.size() < total) {
    return DataLossError("truncated frame payload: " +
                         std::to_string(data.size() - kFrameHeaderSize) +
                         " of " + std::to_string(header.payload_length) +
                         " bytes");
  }
  if (data.size() > total) {
    return DataLossError("trailing bytes after frame payload");
  }
  std::string_view payload = data.substr(kFrameHeaderSize,
                                         header.payload_length);
  if (Crc32(payload) != header.payload_crc32) {
    return DataLossError("frame checksum mismatch");
  }
  Frame frame;
  frame.type = header.type;
  frame.payload.assign(payload.data(), payload.size());
  return frame;
}

}  // namespace condensa::net
