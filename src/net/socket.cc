#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/failpoint.h"

namespace condensa::net {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Converts a relative timeout into an absolute deadline on the NowMs
// clock. Negative timeouts mean "wait forever" and stay negative.
double DeadlineFor(double timeout_ms) {
  return timeout_ms < 0 ? -1.0 : NowMs() + timeout_ms;
}

double RemainingMs(double deadline_ms) {
  if (deadline_ms < 0) {
    return -1.0;
  }
  return std::max(0.0, deadline_ms - NowMs());
}

Status ParseAddr(const std::string& host, std::uint16_t port,
                 sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, resolved.c_str(), &addr->sin_addr) != 1) {
    return InvalidArgumentError("cannot parse IPv4 address '" + host + "'");
  }
  return OkStatus();
}

// Waits for `events` on `fd`. kUnavailable on timeout or poll error.
Status PollFor(int fd, short events, double timeout_ms,
               const char* what) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  const int timeout = timeout_ms < 0 ? -1
                      : timeout_ms > 2e9
                          ? 2000000000
                          : static_cast<int>(timeout_ms + 0.999);
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return UnavailableError(Errno(std::string("poll for ") + what));
  }
  if (rc == 0) {
    return UnavailableError(std::string(what) + " timed out after " +
                            std::to_string(timeout) + " ms");
  }
  return OkStatus();
}

// Writes exactly `size` bytes. `deadline_ms` is an absolute NowMs
// deadline covering the whole write, so a peer draining one byte per
// poll interval cannot stretch a frame send past the caller's timeout.
Status SendAll(int fd, const char* data, std::size_t size,
               double deadline_ms) {
  std::size_t sent = 0;
  while (sent < size) {
    CONDENSA_RETURN_IF_ERROR(
        PollFor(fd, POLLOUT, RemainingMs(deadline_ms), "send"));
    const ssize_t rc =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return UnavailableError(Errno("send"));
    }
    sent += static_cast<std::size_t>(rc);
  }
  return OkStatus();
}

// Reads exactly `size` bytes before the absolute deadline. `any_read`
// reports whether at least one byte of the current frame arrived,
// distinguishing "peer idle between frames" from "peer stalled or died
// mid-frame": an idle timeout is kUnavailable (the caller may safely
// poll again — no stream bytes were consumed), while a mid-frame
// timeout is kDataLoss, because the partial bytes are discarded and a
// retry would read from the middle of the frame.
Status RecvAll(int fd, char* data, std::size_t size, double deadline_ms,
               bool* any_read) {
  std::size_t got = 0;
  while (got < size) {
    Status polled = PollFor(fd, POLLIN, RemainingMs(deadline_ms), "recv");
    if (!polled.ok()) {
      if (*any_read) {
        return DataLossError("recv timed out mid-frame: " +
                             std::string(polled.message()));
      }
      return polled;
    }
    const ssize_t rc = ::recv(fd, data + got, size - got, 0);
    if (rc < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return UnavailableError(Errno("recv"));
    }
    if (rc == 0) {
      if (got == 0 && !*any_read) {
        return UnavailableError("peer closed the connection");
      }
      return DataLossError("peer closed mid-frame: got " +
                           std::to_string(got) + " of " +
                           std::to_string(size) + " bytes");
    }
    got += static_cast<std::size_t>(rc);
    *any_read = true;
  }
  return OkStatus();
}

}  // namespace

TcpConnection::~TcpConnection() { Close(); }

TcpConnection::TcpConnection(TcpConnection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void TcpConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<TcpConnection> TcpConnection::Connect(const std::string& host,
                                               std::uint16_t port,
                                               double timeout_ms) {
  CONDENSA_RETURN_IF_ERROR(FailPoint::Maybe("net.connect"));
  sockaddr_in addr;
  CONDENSA_RETURN_IF_ERROR(ParseAddr(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return UnavailableError(Errno("socket"));
  }
  TcpConnection conn(fd);
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    return UnavailableError(Errno("connect to " + host + ":" +
                                  std::to_string(port)));
  }
  if (rc < 0) {
    CONDENSA_RETURN_IF_ERROR(PollFor(fd, POLLOUT, timeout_ms, "connect"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
        err != 0) {
      errno = err != 0 ? err : errno;
      return UnavailableError(Errno("connect to " + host + ":" +
                                    std::to_string(port)));
    }
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

Status TcpConnection::SendFrame(FrameType type, std::string_view payload,
                                double timeout_ms) {
  if (fd_ < 0) {
    return FailedPreconditionError("SendFrame on a closed connection");
  }
  CONDENSA_RETURN_IF_ERROR(FailPoint::Maybe("net.send"));
  const std::string wire = EncodeFrame(type, payload);
  return SendAll(fd_, wire.data(), wire.size(), DeadlineFor(timeout_ms));
}

StatusOr<Frame> TcpConnection::RecvFrame(double timeout_ms,
                                         std::uint32_t max_payload) {
  if (fd_ < 0) {
    return FailedPreconditionError("RecvFrame on a closed connection");
  }
  CONDENSA_RETURN_IF_ERROR(FailPoint::Maybe("net.recv"));
  // One deadline spans header + payload: a frame either arrives whole
  // within timeout_ms or fails, regardless of how the peer paces it.
  const double deadline_ms = DeadlineFor(timeout_ms);
  char header_bytes[kFrameHeaderSize];
  bool any_read = false;
  CONDENSA_RETURN_IF_ERROR(RecvAll(fd_, header_bytes, kFrameHeaderSize,
                                   deadline_ms, &any_read));
  // Header validation happens before the payload buffer is allocated, so
  // a corrupt length field cannot drive a giant allocation.
  CONDENSA_ASSIGN_OR_RETURN(
      FrameHeader header,
      DecodeFrameHeader(std::string_view(header_bytes, kFrameHeaderSize),
                        max_payload));
  Frame frame;
  frame.type = header.type;
  frame.payload.resize(header.payload_length);
  if (header.payload_length > 0) {
    CONDENSA_RETURN_IF_ERROR(RecvAll(fd_, frame.payload.data(),
                                     frame.payload.size(), deadline_ms,
                                     &any_read));
  }
  if (Crc32(frame.payload) != header.payload_crc32) {
    return DataLossError("frame checksum mismatch on " +
                         std::string(FrameTypeName(frame.type)));
  }
  return frame;
}

TcpListener::~TcpListener() { Close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<TcpListener> TcpListener::Listen(const std::string& host,
                                          std::uint16_t port) {
  sockaddr_in addr;
  CONDENSA_RETURN_IF_ERROR(ParseAddr(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return UnavailableError(Errno("socket"));
  }
  TcpListener listener;
  listener.fd_ = fd;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return UnavailableError(Errno("bind " + host + ":" +
                                  std::to_string(port)));
  }
  if (::listen(fd, 64) < 0) {
    return UnavailableError(Errno("listen"));
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    return UnavailableError(Errno("getsockname"));
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

StatusOr<TcpConnection> TcpListener::Accept(double timeout_ms) {
  if (fd_ < 0) {
    return FailedPreconditionError("Accept on a closed listener");
  }
  CONDENSA_RETURN_IF_ERROR(FailPoint::Maybe("net.accept"));
  CONDENSA_RETURN_IF_ERROR(PollFor(fd_, POLLIN, timeout_ms, "accept"));
  int fd;
  do {
    fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return UnavailableError(Errno("accept"));
  }
  // Non-blocking + poll everywhere, so send/recv timeouts hold on both
  // sides of the connection.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(fd);
}

}  // namespace condensa::net
