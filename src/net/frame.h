// Length-prefixed, versioned, checksummed wire framing.
//
// Every message the shard fabric puts on a TCP connection travels inside
// one frame:
//
//   offset  size  field
//   0       4     magic "CNWF"
//   4       2     protocol version (little-endian u16, currently 1)
//   6       2     frame type (little-endian u16, see FrameType)
//   8       4     payload length in bytes (little-endian u32)
//   12      4     CRC32 (IEEE) of the payload bytes
//   16      ...   payload
//
// The framing layer is where untrusted bytes first meet the process, so
// decoding is paranoid by construction: the magic, version, type, and
// length are validated BEFORE any payload allocation happens — a corrupt
// or hostile length field (negative-as-unsigned, multi-gigabyte, larger
// than the declared cap) is rejected with a clean kDataLoss /
// kInvalidArgument Status, never an allocation or a crash. Truncated
// headers and payloads, and checksum mismatches, fail the same way. The
// corruption-fuzz suite mangles framed messages byte-by-byte to pin this
// contract (tests/net/frame_test.cc, tests/core/serialization_corruption
// _test.cc).

#ifndef CONDENSA_NET_FRAME_H_
#define CONDENSA_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace condensa::net {

// Wire protocol version; bumped on any incompatible frame or payload
// layout change. A peer speaking a different version is rejected at
// handshake with kFailedPrecondition.
//
// v2: Query carries a relative deadline budget; QueryResult carries a
//     snapshot staleness field.
inline constexpr std::uint16_t kProtocolVersion = 2;

// Hard ceiling on a single frame's payload. A Submit batch of 4096
// records at d = 512 is ~16 MiB; 64 MiB leaves generous headroom while
// keeping a corrupt length field from driving a giant allocation.
inline constexpr std::uint32_t kMaxFramePayload = 64u * 1024u * 1024u;

inline constexpr std::size_t kFrameHeaderSize = 16;

enum class FrameType : std::uint16_t {
  // Coordinator -> worker: session handshake (shard id, dim, k, tuning).
  kHello = 1,
  // Worker -> coordinator: handshake accept (worker id, durable count).
  kHelloAck = 2,
  // Coordinator -> worker: a batch of records.
  kSubmit = 3,
  // Worker -> coordinator: batch is durably in custody.
  kSubmitAck = 4,
  // Coordinator -> worker: liveness probe.
  kHeartbeat = 5,
  // Worker -> coordinator: liveness answer (echoes the nonce).
  kHeartbeatAck = 6,
  // Coordinator -> worker: drain, condense, and return the shard set.
  kFinish = 7,
  // Worker -> coordinator: final ledger + serialized group set.
  kFinishResult = 8,
  // Either direction: the session ends without a Finish.
  kGoodbye = 9,
  // Worker -> coordinator: request-level failure (code + message).
  kError = 10,
  // Client -> query server: one mining query against the condensed
  // groups (classify / aggregate / regenerate; see src/query/wire.h).
  kQuery = 11,
  // Query server -> client: the query's answer.
  kQueryResult = 12,
};

// True when `value` names a FrameType this protocol version understands.
bool IsKnownFrameType(std::uint16_t value);

// Human-readable type name for logs and error messages.
const char* FrameTypeName(FrameType type);

struct FrameHeader {
  std::uint16_t version = kProtocolVersion;
  FrameType type = FrameType::kError;
  std::uint32_t payload_length = 0;
  std::uint32_t payload_crc32 = 0;
};

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

// CRC32 (IEEE 802.3, polynomial 0xEDB88320) of `data`.
std::uint32_t Crc32(std::string_view data);

// Renders header + payload as one contiguous byte string. Payloads at or
// above kMaxFramePayload are a programming error (CHECK).
std::string EncodeFrame(FrameType type, std::string_view payload);

// Parses and validates the 16-byte header in `data` (which must hold at
// least kFrameHeaderSize bytes — shorter input fails with kDataLoss).
// Rejects bad magic, unknown versions and types, and payload lengths
// above `max_payload` without touching any payload bytes.
StatusOr<FrameHeader> DecodeFrameHeader(
    std::string_view data, std::uint32_t max_payload = kMaxFramePayload);

// Decodes one complete frame (header + payload) from `data`, verifying
// the checksum. `data` must contain the frame exactly (trailing bytes are
// rejected — the transport delivers one frame at a time).
StatusOr<Frame> DecodeFrame(std::string_view data,
                            std::uint32_t max_payload = kMaxFramePayload);

}  // namespace condensa::net

#endif  // CONDENSA_NET_FRAME_H_
