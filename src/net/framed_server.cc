#include "net/framed_server.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "net/wire.h"

namespace condensa::net {

Status FramedServerConfig::Validate() const {
  if (poll_ms <= 0 || idle_timeout_ms <= 0) {
    return InvalidArgumentError("framed server timeouts must be positive");
  }
  if (max_sessions < 1) {
    return InvalidArgumentError("framed server needs at least one session");
  }
  if (reject_retry_after_ms < 0) {
    return InvalidArgumentError("retry-after hint must be non-negative");
  }
  return OkStatus();
}

FramedServer::FramedServer(TcpListener listener, FramedServerConfig config)
    : config_(config), listener_(std::move(listener)) {
  CONDENSA_CHECK(config_.Validate().ok());
}

Status FramedServer::Run(const FrameHandler& handler) {
  CONDENSA_CHECK(handler != nullptr);
  CONDENSA_CHECK(listener_.ok());
  if (config_.max_sessions == 1) {
    return RunSerial(handler);
  }
  return RunPooled(handler);
}

Status FramedServer::RunSerial(const FrameHandler& handler) {
  while (!stop_.load(std::memory_order_relaxed)) {
    StatusOr<TcpConnection> conn = listener_.Accept(config_.poll_ms);
    if (!conn.ok()) {
      if (IsUnavailable(conn.status())) {
        continue;  // poll tick
      }
      return conn.status();
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    ServeSession(*std::move(conn), handler);
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
  return OkStatus();
}

Status FramedServer::RunPooled(const FrameHandler& handler) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = false;
    pending_.clear();
  }
  std::vector<std::thread> pool;
  pool.reserve(config_.max_sessions);
  for (std::size_t i = 0; i < config_.max_sessions; ++i) {
    pool.emplace_back([this, &handler] {
      for (;;) {
        TcpConnection conn;
        {
          std::unique_lock<std::mutex> lock(queue_mu_);
          queue_cv_.wait(lock,
                         [this] { return queue_closed_ || !pending_.empty(); });
          if (pending_.empty()) {
            return;  // closed and drained
          }
          conn = std::move(pending_.front());
          pending_.pop_front();
        }
        ServeSession(std::move(conn), handler);
        active_.fetch_sub(1, std::memory_order_relaxed);
      }
    });
  }

  Status result = OkStatus();
  while (!stop_.load(std::memory_order_relaxed)) {
    StatusOr<TcpConnection> conn = listener_.Accept(config_.poll_ms);
    if (!conn.ok()) {
      if (IsUnavailable(conn.status())) {
        continue;  // poll tick
      }
      result = conn.status();
      break;
    }
    // Admission check: active_ counts both serving sessions and queued
    // handoffs (incremented here, decremented when the session ends), so
    // pending_ can never hold more than max_sessions entries.
    std::size_t current = active_.load(std::memory_order_relaxed);
    if (current >= config_.max_sessions) {
      RejectSession(*std::move(conn));
      continue;
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending_.push_back(*std::move(conn));
    }
    queue_cv_.notify_one();
  }

  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = true;
    // Connections still queued are abandoned; their clients see a close
    // and redial. In-flight sessions notice stop_ at their next poll.
    for (const TcpConnection& queued : pending_) {
      (void)queued;
      active_.fetch_sub(1, std::memory_order_relaxed);
    }
    pending_.clear();
  }
  queue_cv_.notify_all();
  for (std::thread& t : pool) {
    t.join();
  }
  return result;
}

void FramedServer::RejectSession(TcpConnection conn) {
  // Count and notify BEFORE the refusal hits the wire: an observer that
  // reacts to the client's error frame must already see the rejection.
  rejected_.fetch_add(1, std::memory_order_relaxed);
  if (on_rejected_) {
    on_rejected_();
  }
  Status busy = UnavailableError(
      "server at session capacity; retry-after-ms=" +
      std::to_string(static_cast<long long>(config_.reject_retry_after_ms)));
  SendErrorFrame(conn, busy, config_.poll_ms);
}

void FramedServer::ServeSession(TcpConnection conn,
                                const FrameHandler& handler) {
  std::shared_ptr<void> session_context;
  if (on_session_) {
    session_context = on_session_(conn);
  }
  double idle_ms = 0.0;
  while (!stop_.load(std::memory_order_relaxed)) {
    StatusOr<Frame> frame = conn.RecvFrame(config_.poll_ms);
    if (!frame.ok()) {
      // RecvFrame returns kUnavailable "timed out" only when ZERO bytes
      // of the frame were consumed (a mid-frame stall is kDataLoss), so
      // polling again here cannot desync the stream.
      if (IsUnavailable(frame.status()) &&
          frame.status().message().find("timed out") != std::string::npos) {
        idle_ms += config_.poll_ms;
        if (idle_ms >= config_.idle_timeout_ms) {
          return;  // silent peer; free the accept slot
        }
        continue;
      }
      return;  // peer closed or the stream is corrupt: drop the session
    }
    idle_ms = 0.0;
    if (frame->type == FrameType::kGoodbye) {
      return;  // clean session end
    }
    switch (handler(conn, *frame)) {
      case SessionAction::kContinue:
        break;
      case SessionAction::kEndSession:
        return;
      case SessionAction::kStopServer:
        stop_.store(true, std::memory_order_relaxed);
        return;
    }
  }
}

void SendErrorFrame(TcpConnection& conn, const Status& status,
                    double timeout_ms) {
  (void)conn.SendFrame(FrameType::kError, EncodeError(StatusToError(status)),
                       timeout_ms);
}

}  // namespace condensa::net
