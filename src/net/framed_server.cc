#include "net/framed_server.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "net/wire.h"

namespace condensa::net {

Status FramedServerConfig::Validate() const {
  if (poll_ms <= 0 || idle_timeout_ms <= 0) {
    return InvalidArgumentError("framed server timeouts must be positive");
  }
  return OkStatus();
}

FramedServer::FramedServer(TcpListener listener, FramedServerConfig config)
    : config_(config), listener_(std::move(listener)) {
  CONDENSA_CHECK(config_.Validate().ok());
}

Status FramedServer::Run(const FrameHandler& handler) {
  CONDENSA_CHECK(handler != nullptr);
  CONDENSA_CHECK(listener_.ok());
  while (!stop_.load(std::memory_order_relaxed)) {
    StatusOr<TcpConnection> conn = listener_.Accept(config_.poll_ms);
    if (!conn.ok()) {
      if (IsUnavailable(conn.status())) {
        continue;  // poll tick
      }
      return conn.status();
    }
    ServeSession(*std::move(conn), handler);
  }
  return OkStatus();
}

void FramedServer::ServeSession(TcpConnection conn,
                                const FrameHandler& handler) {
  std::shared_ptr<void> session_context;
  if (on_session_) {
    session_context = on_session_(conn);
  }
  double idle_ms = 0.0;
  while (!stop_.load(std::memory_order_relaxed)) {
    StatusOr<Frame> frame = conn.RecvFrame(config_.poll_ms);
    if (!frame.ok()) {
      // RecvFrame returns kUnavailable "timed out" only when ZERO bytes
      // of the frame were consumed (a mid-frame stall is kDataLoss), so
      // polling again here cannot desync the stream.
      if (IsUnavailable(frame.status()) &&
          frame.status().message().find("timed out") != std::string::npos) {
        idle_ms += config_.poll_ms;
        if (idle_ms >= config_.idle_timeout_ms) {
          return;  // silent peer; free the accept slot
        }
        continue;
      }
      return;  // peer closed or the stream is corrupt: drop the session
    }
    idle_ms = 0.0;
    if (frame->type == FrameType::kGoodbye) {
      return;  // clean session end
    }
    switch (handler(conn, *frame)) {
      case SessionAction::kContinue:
        break;
      case SessionAction::kEndSession:
        return;
      case SessionAction::kStopServer:
        stop_.store(true, std::memory_order_relaxed);
        return;
    }
  }
}

void SendErrorFrame(TcpConnection& conn, const Status& status,
                    double timeout_ms) {
  (void)conn.SendFrame(FrameType::kError, EncodeError(StatusToError(status)),
                       timeout_ms);
}

}  // namespace condensa::net
