// Wire message payloads for the shard fabric protocol.
//
// Each FrameType (net/frame.h) carries one of the payload structs below,
// encoded with WireWriter and decoded with WireReader. The codecs are
// little-endian, fixed-width, and bounds-checked: every read validates
// the remaining byte count before touching memory, and every length
// prefix is validated against the bytes actually present before any
// allocation — the same hardening contract as the frame header. Decoding
// failures are kDataLoss.
//
// Records travel as raw IEEE-754 bit patterns (u64 per coordinate), so a
// record round-trips bit-exactly — the foundation of the fabric's
// bit-identical-release guarantee.

#ifndef CONDENSA_NET_WIRE_H_
#define CONDENSA_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "linalg/vector.h"
#include "runtime/pipeline.h"

namespace condensa::net {

// Appends fixed-width little-endian scalars and length-prefixed blobs to
// a growing buffer.
class WireWriter {
 public:
  void PutU8(std::uint8_t value);
  void PutU16(std::uint16_t value);
  void PutU32(std::uint32_t value);
  void PutU64(std::uint64_t value);
  // The double's IEEE-754 bit pattern as a u64 (bit-exact round-trip).
  void PutDouble(double value);
  // u32 length prefix + raw bytes.
  void PutString(std::string_view value);

  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

// Consumes the same encoding with bounds checks on every read. All
// methods return kDataLoss once the payload is exhausted or a length
// prefix exceeds the remaining bytes; the reader stays at its position
// after a failed read.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Status ReadU8(std::uint8_t* value);
  Status ReadU16(std::uint16_t* value);
  Status ReadU32(std::uint32_t* value);
  Status ReadU64(std::uint64_t* value);
  Status ReadDouble(double* value);
  // Validates the length prefix against remaining() BEFORE allocating.
  Status ReadString(std::string* value);

  std::size_t remaining() const { return data_.size() - pos_; }
  // Decoders call this last: trailing garbage means a framing bug or
  // corruption, not a shorter message from an older peer.
  Status ExpectDone() const;

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Message payloads, one per FrameType.

// Coordinator -> worker. Opens a session: the worker builds (or recovers)
// its shard::Worker from exactly these parameters, so a rejoining worker
// is reconstructed identically to the original.
struct HelloMessage {
  std::uint64_t shard_id = 0;
  std::uint64_t dim = 0;
  std::uint64_t group_size = 0;
  std::uint16_t split_rule = 0;
  std::uint64_t snapshot_interval = 1024;
  std::uint8_t sync_every_append = 0;
  std::uint64_t queue_capacity = 1024;
  std::uint64_t batch_size = 32;
  // This shard's pipeline seed, derived by the coordinator from
  // Router::SplitStreams so the fabric matches the in-process service.
  std::uint64_t seed = 0;
  // Anonymization backend id (docs/backends.md). Travels in the hello so
  // every fabric worker maintains (and stamps its checkpoints with) the
  // same backend the coordinator runs; a worker that cannot resolve the
  // id rejects the session instead of producing a mixed release.
  std::string backend = "condensation";
};

// Worker -> coordinator. `durable_total` is the number of records already
// durably in this worker's custody (recovered from its checkpoint dir) —
// the coordinator uses it to trim the already-applied prefix of any
// unacknowledged backlog on reconnect, restoring exactly-once delivery.
struct HelloAckMessage {
  std::string worker_id;
  std::uint64_t durable_total = 0;
};

// Coordinator -> worker. A batch of records; `base_sequence` is the
// stream position of records[0] within this shard's substream (used only
// for diagnostics — ordering is carried by the connection).
// Caps on a Submit batch's variable-length fields, enforced by
// DecodeSubmit before allocation (a corrupt count cannot drive
// per-element work) and by FabricConfig::Validate (a legal config can
// never build a batch that EncodeFrame's payload cap rejects).
inline constexpr std::uint64_t kMaxRecordsPerSubmit = 1u << 20;
inline constexpr std::uint64_t kMaxWireDim = 1u << 16;
// Fixed bytes preceding the packed records in a Submit payload:
// base_sequence u64 + dim u64 + count u32.
inline constexpr std::uint64_t kSubmitOverheadBytes = 8 + 8 + 4;

struct SubmitMessage {
  std::uint64_t base_sequence = 0;
  std::uint64_t dim = 0;
  std::vector<linalg::Vector> records;
};

// Worker -> coordinator. Sent only after the batch is durably in custody
// (journaled / spooled / quarantined — the pipeline flushed). A kill -9
// after this ack loses nothing.
struct SubmitAckMessage {
  std::uint64_t durable_total = 0;
};

struct HeartbeatMessage {
  std::uint64_t nonce = 0;
};

struct HeartbeatAckMessage {
  std::uint64_t nonce = 0;
  std::uint64_t durable_total = 0;
};

// Worker -> coordinator. The shard's final ledger plus its condensed
// group set in the canonical text serialization (core/serialization.h).
struct FinishResultMessage {
  runtime::StreamPipelineStats stats;
  std::string groups_text;
};

// Worker -> coordinator: a request failed cleanly on the worker side.
struct ErrorMessage {
  std::uint32_t code = 0;
  std::string message;
};

std::string EncodeHello(const HelloMessage& msg);
StatusOr<HelloMessage> DecodeHello(std::string_view payload);

std::string EncodeHelloAck(const HelloAckMessage& msg);
StatusOr<HelloAckMessage> DecodeHelloAck(std::string_view payload);

std::string EncodeSubmit(const SubmitMessage& msg);
StatusOr<SubmitMessage> DecodeSubmit(std::string_view payload);

std::string EncodeSubmitAck(const SubmitAckMessage& msg);
StatusOr<SubmitAckMessage> DecodeSubmitAck(std::string_view payload);

std::string EncodeHeartbeat(const HeartbeatMessage& msg);
StatusOr<HeartbeatMessage> DecodeHeartbeat(std::string_view payload);

std::string EncodeHeartbeatAck(const HeartbeatAckMessage& msg);
StatusOr<HeartbeatAckMessage> DecodeHeartbeatAck(std::string_view payload);

std::string EncodeFinishResult(const FinishResultMessage& msg);
StatusOr<FinishResultMessage> DecodeFinishResult(std::string_view payload);

std::string EncodeError(const ErrorMessage& msg);
StatusOr<ErrorMessage> DecodeError(std::string_view payload);
// Reconstitutes a Status from a decoded ErrorMessage.
Status ErrorToStatus(const ErrorMessage& msg);
ErrorMessage StatusToError(const Status& status);

}  // namespace condensa::net

#endif  // CONDENSA_NET_WIRE_H_
