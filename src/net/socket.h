// Minimal TCP socket wrappers for the shard fabric.
//
// Two classes: TcpListener (bind/listen/accept) and TcpConnection
// (connect/send/recv of whole frames). Everything is blocking with
// poll()-based timeouts — the fabric runs strict synchronous
// request/response per connection, so there is no need for a reactor.
// All calls return Status; any I/O error on a connection leaves it
// unusable (the caller closes and reconnects — no partial-frame state
// survives an error).
//
// Failure injection: the probes "net.connect", "net.accept", "net.send",
// and "net.recv" run before the corresponding syscall path, so chaos
// tests can sever connections, delay heartbeats, or make dials flaky
// without touching the kernel.

#ifndef CONDENSA_NET_SOCKET_H_
#define CONDENSA_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/frame.h"

namespace condensa::net {

// A connected TCP stream that speaks whole frames.
class TcpConnection {
 public:
  TcpConnection() = default;
  ~TcpConnection();

  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // Dials host:port, waiting at most `timeout_ms` for the connection to
  // establish. kUnavailable on refusal/timeout/unreachable.
  static StatusOr<TcpConnection> Connect(const std::string& host,
                                         std::uint16_t port,
                                         double timeout_ms);

  bool ok() const { return fd_ >= 0; }

  // Sends one whole frame. Blocks until every byte is written or
  // `timeout_ms` elapses (kUnavailable). After any failure the
  // connection must be closed — a partial frame may be on the wire.
  Status SendFrame(FrameType type, std::string_view payload,
                   double timeout_ms);

  // Receives one whole frame, validating header and checksum via
  // net::DecodeFrameHeader before the payload is allocated. Blocks until
  // a full frame arrives or `timeout_ms` elapses. `timeout_ms` is one
  // overall deadline for the whole frame (header + payload), not a
  // per-read allowance — a peer trickling bytes cannot stretch it. A
  // timeout or clean close with zero frame bytes consumed yields
  // kUnavailable (safe to call again); a mid-frame timeout, close, or
  // corruption yields kDataLoss (the stream is desynced — drop the
  // connection).
  StatusOr<Frame> RecvFrame(double timeout_ms,
                            std::uint32_t max_payload = kMaxFramePayload);

  void Close();

  // The raw descriptor (for tests and diagnostics); -1 when closed.
  int fd() const { return fd_; }

 private:
  explicit TcpConnection(int fd) : fd_(fd) {}
  friend class TcpListener;

  int fd_ = -1;
};

// A listening TCP socket.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds host:port (port 0 picks a free port; see port()) and starts
  // listening. SO_REUSEADDR is set so a respawned worker can reclaim its
  // old port immediately.
  static StatusOr<TcpListener> Listen(const std::string& host,
                                      std::uint16_t port);

  bool ok() const { return fd_ >= 0; }

  // The bound port (resolved when Listen was given port 0).
  std::uint16_t port() const { return port_; }

  // Waits up to `timeout_ms` for an inbound connection. kUnavailable on
  // timeout — callers loop on this to interleave accepts with shutdown
  // checks.
  StatusOr<TcpConnection> Accept(double timeout_ms);

  void Close();

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace condensa::net

#endif  // CONDENSA_NET_SOCKET_H_
