// Generalization-based k-anonymity baseline (paper reference [18],
// Samarati & Sweeney), in the multidimensional median-partitioning style
// of LeFevre et al.'s Mondrian.
//
// The paper contrasts condensation with the k-anonymity model: k-anonymity
// needs domain generalization hierarchies and releases *generalized*
// values (ranges), so downstream algorithms must cope with coarsened data.
// For numeric attributes, Mondrian is the canonical hierarchy-free
// instantiation: recursively split the record set at the median of the
// widest-normalized-range attribute while every part keeps >= k records,
// then release each equivalence class either as attribute ranges or as a
// centroid shared by all members.
//
// Ablation bench A5 compares this baseline with condensation: both give
// k-indistinguishability, but condensation additionally preserves the
// within-group covariance structure that centroid/range generalization
// destroys.

#ifndef CONDENSA_ANONYMITY_MONDRIAN_H_
#define CONDENSA_ANONYMITY_MONDRIAN_H_

#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "linalg/vector.h"

namespace condensa::anonymity {

// One equivalence class of the released partition.
struct EquivalenceClass {
  // Indices of member records in the input dataset.
  std::vector<std::size_t> members;
  // Per-dimension generalized interval [lower, upper].
  linalg::Vector lower;
  linalg::Vector upper;
  // Class centroid (mean of members).
  linalg::Vector centroid;
};

struct MondrianOptions {
  // Minimum equivalence-class size (the k of k-anonymity). Must be >= 1.
  std::size_t k = 10;
};

struct MondrianResult {
  std::vector<EquivalenceClass> classes;

  // Smallest class size (>= k by construction).
  std::size_t MinClassSize() const;
  // Normalized certainty penalty-style information loss: average over
  // records and dimensions of (class range / global range); 0 = exact
  // release, 1 = everything generalized to the full domain.
  double AverageRangeLoss(const linalg::Vector& global_lower,
                          const linalg::Vector& global_upper) const;
};

// Partitions `points` into equivalence classes of >= k records. Fails on
// empty input, k == 0, or fewer than k records.
StatusOr<MondrianResult> MondrianPartition(
    const std::vector<linalg::Vector>& points, const MondrianOptions& options);

// Convenience release: every record replaced by its equivalence-class
// centroid (labels/targets preserved). This is the strongest utility a
// mining algorithm can extract from a range-generalized table without
// bespoke interval-aware algorithms.
StatusOr<data::Dataset> MondrianCentroidRelease(const data::Dataset& input,
                                                const MondrianOptions& options);

}  // namespace condensa::anonymity

#endif  // CONDENSA_ANONYMITY_MONDRIAN_H_
