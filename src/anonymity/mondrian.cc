#include "anonymity/mondrian.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace condensa::anonymity {
namespace {

// Bounding box of the listed points.
void ComputeBounds(const std::vector<linalg::Vector>& points,
                   const std::vector<std::size_t>& members,
                   linalg::Vector* lower, linalg::Vector* upper) {
  const std::size_t d = points.front().dim();
  *lower = linalg::Vector(d, std::numeric_limits<double>::infinity());
  *upper = linalg::Vector(d, -std::numeric_limits<double>::infinity());
  for (std::size_t i : members) {
    for (std::size_t j = 0; j < d; ++j) {
      (*lower)[j] = std::min((*lower)[j], points[i][j]);
      (*upper)[j] = std::max((*upper)[j], points[i][j]);
    }
  }
}

struct PartitionContext {
  const std::vector<linalg::Vector>* points;
  std::size_t k;
  linalg::Vector global_lower;
  linalg::Vector global_upper;
  std::vector<EquivalenceClass>* out;
};

void EmitClass(const PartitionContext& ctx,
               std::vector<std::size_t> members) {
  EquivalenceClass ec;
  ComputeBounds(*ctx.points, members, &ec.lower, &ec.upper);
  const std::size_t d = ctx.points->front().dim();
  ec.centroid = linalg::Vector(d);
  for (std::size_t i : members) {
    ec.centroid += (*ctx.points)[i];
  }
  ec.centroid /= static_cast<double>(members.size());
  ec.members = std::move(members);
  ctx.out->push_back(std::move(ec));
}

// Recursive median partition (strict Mondrian): split while both halves
// keep >= k records; choose the dimension with the widest range relative
// to the global domain.
void Partition(const PartitionContext& ctx,
               std::vector<std::size_t> members) {
  const std::vector<linalg::Vector>& points = *ctx.points;
  const std::size_t d = points.front().dim();

  if (members.size() < 2 * ctx.k) {
    EmitClass(ctx, std::move(members));
    return;
  }

  linalg::Vector lower, upper;
  ComputeBounds(points, members, &lower, &upper);

  // Try dimensions in decreasing normalized-range order until one admits
  // an allowable (k-preserving) median cut.
  std::vector<std::pair<double, std::size_t>> ranked;
  ranked.reserve(d);
  for (std::size_t j = 0; j < d; ++j) {
    double domain = ctx.global_upper[j] - ctx.global_lower[j];
    double span = upper[j] - lower[j];
    ranked.emplace_back(domain > 0.0 ? span / domain : 0.0, j);
  }
  std::sort(ranked.begin(), ranked.end(), std::greater<>());

  for (const auto& [normalized_range, dim] : ranked) {
    if (normalized_range <= 0.0) break;  // no spread anywhere: stop
    // Median cut: left strictly below the median value, right the rest —
    // duplicates of the median value all land on one side, so the cut can
    // fail when data is concentrated; try the next dimension then.
    std::vector<std::size_t> sorted = members;
    std::sort(sorted.begin(), sorted.end(),
              [&points, dim = dim](std::size_t a, std::size_t b) {
                return points[a][dim] < points[b][dim];
              });
    double median = points[sorted[sorted.size() / 2]][dim];
    std::vector<std::size_t> left_side, right_side;
    for (std::size_t i : sorted) {
      (points[i][dim] < median ? left_side : right_side).push_back(i);
    }
    if (left_side.size() >= ctx.k && right_side.size() >= ctx.k) {
      Partition(ctx, std::move(left_side));
      Partition(ctx, std::move(right_side));
      return;
    }
  }
  // No allowable cut: this cell is final.
  EmitClass(ctx, std::move(members));
}

}  // namespace

std::size_t MondrianResult::MinClassSize() const {
  std::size_t smallest = std::numeric_limits<std::size_t>::max();
  for (const EquivalenceClass& ec : classes) {
    smallest = std::min(smallest, ec.members.size());
  }
  return classes.empty() ? 0 : smallest;
}

double MondrianResult::AverageRangeLoss(
    const linalg::Vector& global_lower,
    const linalg::Vector& global_upper) const {
  CONDENSA_CHECK(!classes.empty());
  const std::size_t d = global_lower.dim();
  double total = 0.0;
  std::size_t records = 0;
  for (const EquivalenceClass& ec : classes) {
    double class_loss = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      double domain = global_upper[j] - global_lower[j];
      if (domain > 0.0) {
        class_loss += (ec.upper[j] - ec.lower[j]) / domain;
      }
    }
    total += class_loss / static_cast<double>(d) *
             static_cast<double>(ec.members.size());
    records += ec.members.size();
  }
  return total / static_cast<double>(records);
}

StatusOr<MondrianResult> MondrianPartition(
    const std::vector<linalg::Vector>& points,
    const MondrianOptions& options) {
  if (options.k == 0) {
    return InvalidArgumentError("k must be at least 1");
  }
  if (points.empty()) {
    return InvalidArgumentError("cannot partition an empty point set");
  }
  if (points.size() < options.k) {
    return InvalidArgumentError("fewer records than k");
  }
  const std::size_t d = points.front().dim();
  for (const linalg::Vector& p : points) {
    if (p.dim() != d) {
      return InvalidArgumentError("points have inconsistent dimensions");
    }
  }

  MondrianResult result;
  PartitionContext ctx;
  ctx.points = &points;
  ctx.k = options.k;
  std::vector<std::size_t> all(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) all[i] = i;
  ComputeBounds(points, all, &ctx.global_lower, &ctx.global_upper);
  ctx.out = &result.classes;
  Partition(ctx, std::move(all));
  return result;
}

StatusOr<data::Dataset> MondrianCentroidRelease(
    const data::Dataset& input, const MondrianOptions& options) {
  if (input.empty()) {
    return InvalidArgumentError("cannot anonymize an empty dataset");
  }

  data::Dataset release(input.dim(), input.task());
  if (!input.feature_names().empty()) {
    CONDENSA_RETURN_IF_ERROR(release.SetFeatureNames(input.feature_names()));
  }

  auto emit_pool = [&input, &release, &options](
                       const std::vector<std::size_t>& pool) -> Status {
    std::vector<linalg::Vector> points;
    points.reserve(pool.size());
    for (std::size_t i : pool) {
      points.push_back(input.record(i));
    }
    MondrianOptions pool_options = options;
    pool_options.k = std::min<std::size_t>(options.k, pool.size());
    CONDENSA_ASSIGN_OR_RETURN(MondrianResult partition,
                              MondrianPartition(points, pool_options));
    for (const EquivalenceClass& ec : partition.classes) {
      for (std::size_t local : ec.members) {
        std::size_t original = pool[local];
        switch (input.task()) {
          case data::TaskType::kUnlabeled:
            release.Add(ec.centroid);
            break;
          case data::TaskType::kClassification:
            release.Add(ec.centroid, input.label(original));
            break;
          case data::TaskType::kRegression:
            release.Add(ec.centroid, input.target(original));
            break;
        }
      }
    }
    return OkStatus();
  };

  if (input.task() == data::TaskType::kClassification) {
    // Per-class partitioning, mirroring the condensation engine, so the
    // released labels stay exact.
    for (const auto& [label, indices] : input.IndicesByLabel()) {
      (void)label;
      CONDENSA_RETURN_IF_ERROR(emit_pool(indices));
    }
  } else {
    std::vector<std::size_t> all(input.size());
    for (std::size_t i = 0; i < input.size(); ++i) all[i] = i;
    CONDENSA_RETURN_IF_ERROR(emit_pool(all));
  }
  return release;
}

}  // namespace condensa::anonymity
