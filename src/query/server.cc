#include "query/server.h"

#include <utility>

#include "net/frame.h"
#include "obs/metrics.h"
#include "query/wire.h"

namespace condensa::query {

Status QueryServerConfig::Validate() const {
  if (io_timeout_ms <= 0 || poll_ms <= 0 || idle_timeout_ms <= 0) {
    return InvalidArgumentError("query server timeouts must be positive");
  }
  if (engine.eigen_cache_capacity < 1) {
    return InvalidArgumentError("eigen_cache_capacity must be >= 1");
  }
  return OkStatus();
}

QueryServer::QueryServer(QueryServerConfig config,
                         std::shared_ptr<SnapshotStore> store)
    : config_(std::move(config)),
      store_(std::move(store)),
      engine_(config_.engine) {}

StatusOr<std::unique_ptr<QueryServer>> QueryServer::Create(
    QueryServerConfig config, std::shared_ptr<SnapshotStore> store) {
  CONDENSA_RETURN_IF_ERROR(config.Validate());
  if (store == nullptr) {
    return InvalidArgumentError("query server requires a snapshot store");
  }
  CONDENSA_ASSIGN_OR_RETURN(
      net::TcpListener listener,
      net::TcpListener::Listen(config.host, config.port));
  net::FramedServerConfig loop;
  loop.poll_ms = config.poll_ms;
  loop.idle_timeout_ms = config.idle_timeout_ms;
  std::unique_ptr<QueryServer> server(
      new QueryServer(std::move(config), std::move(store)));
  server->server_ =
      std::make_unique<net::FramedServer>(std::move(listener), loop);
  server->server_->set_on_session(
      [](net::TcpConnection&) -> std::shared_ptr<void> {
        obs::DefaultRegistry()
            .GetCounter("condensa_query_sessions_total")
            .Increment();
        return nullptr;
      });
  return server;
}

Status QueryServer::Run() {
  return server_->Run(
      [this](net::TcpConnection& conn, const net::Frame& frame) {
        return Dispatch(conn, frame);
      });
}

net::SessionAction QueryServer::Dispatch(net::TcpConnection& conn,
                                         const net::Frame& frame) {
  Status handled = OkStatus();
  switch (frame.type) {
    case net::FrameType::kQuery:
      handled = HandleQuery(conn, frame.payload);
      break;
    default:
      net::SendErrorFrame(conn,
                          InvalidArgumentError(
                              std::string("unexpected frame ") +
                              net::FrameTypeName(frame.type)),
                          config_.io_timeout_ms);
      return net::SessionAction::kContinue;
  }
  if (!handled.ok()) {
    // Reply failures (broken pipe and friends) end the session; the
    // client redials.
    return net::SessionAction::kEndSession;
  }
  return net::SessionAction::kContinue;
}

Status QueryServer::HandleQuery(net::TcpConnection& conn,
                                const std::string& payload) {
  StatusOr<Query> query = DecodeQuery(payload);
  if (!query.ok()) {
    net::SendErrorFrame(conn, query.status(), config_.io_timeout_ms);
    return OkStatus();
  }
  // Pin one snapshot for the whole request: ingest may Publish newer
  // ones concurrently, but this answer is consistent with exactly this
  // version.
  std::shared_ptr<const QuerySnapshot> snapshot = store_->Current();
  if (snapshot == nullptr) {
    net::SendErrorFrame(
        conn, FailedPreconditionError("no snapshot published yet"),
        config_.io_timeout_ms);
    return OkStatus();
  }
  StatusOr<QueryResult> result = engine_.Execute(*snapshot, *query);
  if (!result.ok()) {
    net::SendErrorFrame(conn, result.status(), config_.io_timeout_ms);
    return OkStatus();
  }
  return conn.SendFrame(net::FrameType::kQueryResult,
                        EncodeQueryResult(*result), config_.io_timeout_ms);
}

}  // namespace condensa::query
