#include "query/server.h"

#include <chrono>
#include <optional>
#include <utility>

#include "common/failpoint.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "query/wire.h"

namespace condensa::query {

Status QueryServerConfig::Validate() const {
  if (io_timeout_ms <= 0 || poll_ms <= 0 || idle_timeout_ms <= 0) {
    return InvalidArgumentError("query server timeouts must be positive");
  }
  if (max_sessions < 1) {
    return InvalidArgumentError("max_sessions must be >= 1");
  }
  if (max_inflight < 1) {
    return InvalidArgumentError("max_inflight must be >= 1");
  }
  if (default_deadline_ms < 0 || stale_after_ms < 0) {
    return InvalidArgumentError(
        "deadline and staleness thresholds must be non-negative");
  }
  if (engine.eigen_cache_capacity < 1) {
    return InvalidArgumentError("eigen_cache_capacity must be >= 1");
  }
  return OkStatus();
}

QueryServer::QueryServer(QueryServerConfig config,
                         std::shared_ptr<SnapshotStore> store)
    : config_(std::move(config)),
      store_(std::move(store)),
      engine_(config_.engine),
      gate_(config_.max_inflight) {}

StatusOr<std::unique_ptr<QueryServer>> QueryServer::Create(
    QueryServerConfig config, std::shared_ptr<SnapshotStore> store) {
  const std::string host = config.host;
  const std::uint16_t port = config.port;
  CONDENSA_RETURN_IF_ERROR(config.Validate());
  CONDENSA_ASSIGN_OR_RETURN(net::TcpListener listener,
                            net::TcpListener::Listen(host, port));
  return CreateWithListener(std::move(config), std::move(store),
                            std::move(listener));
}

StatusOr<std::unique_ptr<QueryServer>> QueryServer::CreateWithListener(
    QueryServerConfig config, std::shared_ptr<SnapshotStore> store,
    net::TcpListener listener) {
  CONDENSA_RETURN_IF_ERROR(config.Validate());
  if (store == nullptr) {
    return InvalidArgumentError("query server requires a snapshot store");
  }
  if (!listener.ok()) {
    return InvalidArgumentError("query server requires a live listener");
  }
  net::FramedServerConfig loop;
  loop.poll_ms = config.poll_ms;
  loop.idle_timeout_ms = config.idle_timeout_ms;
  loop.max_sessions = config.max_sessions;
  std::unique_ptr<QueryServer> server(
      new QueryServer(std::move(config), std::move(store)));
  server->server_ =
      std::make_unique<net::FramedServer>(std::move(listener), loop);
  server->server_->set_on_session(
      [](net::TcpConnection&) -> std::shared_ptr<void> {
        obs::DefaultRegistry()
            .GetCounter("condensa_query_sessions_total")
            .Increment();
        return nullptr;
      });
  server->server_->set_on_session_rejected([] {
    obs::DefaultRegistry()
        .GetCounter("condensa_query_rejected_total", {{"reason", "overload"}})
        .Increment();
  });
  return server;
}

Status QueryServer::Run() {
  return server_->Run(
      [this](net::TcpConnection& conn, const net::Frame& frame) {
        return Dispatch(conn, frame);
      });
}

net::SessionAction QueryServer::Dispatch(net::TcpConnection& conn,
                                         const net::Frame& frame) {
  Status handled = OkStatus();
  switch (frame.type) {
    case net::FrameType::kQuery:
      handled = HandleQuery(conn, frame.payload);
      break;
    default:
      net::SendErrorFrame(conn,
                          InvalidArgumentError(
                              std::string("unexpected frame ") +
                              net::FrameTypeName(frame.type)),
                          config_.io_timeout_ms);
      return net::SessionAction::kContinue;
  }
  if (!handled.ok()) {
    // Reply failures (broken pipe and friends) end the session; the
    // client redials.
    return net::SessionAction::kEndSession;
  }
  return net::SessionAction::kContinue;
}

void QueryServer::Shed(net::TcpConnection& conn, const char* reason,
                       const std::string& detail) {
  obs::DefaultRegistry()
      .GetCounter("condensa_query_rejected_total", {{"reason", reason}})
      .Increment();
  net::SendErrorFrame(conn, UnavailableError(detail), config_.io_timeout_ms);
}

Status QueryServer::HandleQuery(net::TcpConnection& conn,
                                const std::string& payload) {
  // Anchor the client's relative budget to the local clock at the moment
  // the frame is in hand — transit time already ate part of the budget
  // on the client side; what remains starts now.
  const auto received = std::chrono::steady_clock::now();

  if (server_->stopping()) {
    Shed(conn, "shutting-down", "server is shutting down");
    return OkStatus();
  }

  StatusOr<Query> query = DecodeQuery(payload);
  if (!query.ok()) {
    net::SendErrorFrame(conn, query.status(), config_.io_timeout_ms);
    return OkStatus();
  }

  // Chaos probe for the admission path (latency here models a server
  // too busy to even look at the request before the deadline).
  Status admit = FailPoint::Maybe("query.admit");
  if (!admit.ok()) {
    Shed(conn, "overload", admit.message());
    return OkStatus();
  }

  double budget_ms = query->deadline_ms;
  if (budget_ms == 0.0 && config_.default_deadline_ms > 0.0) {
    budget_ms = config_.default_deadline_ms;
  }
  ExecutionContext context;
  if (budget_ms > 0.0) {
    context.deadline =
        received + std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double, std::milli>(budget_ms));
  }
  if (context.Expired()) {
    Shed(conn, "deadline", "deadline expired before execution started");
    return OkStatus();
  }

  // Bound in-flight work across all sessions; a full gate means the
  // engine is saturated and queueing more behind it only grows latency
  // past everyone's deadline.
  std::optional<runtime::AdmissionGate::Ticket> ticket = gate_.TryEnter();
  if (!ticket.has_value()) {
    Shed(conn, "overload",
         "server at in-flight capacity (" +
             std::to_string(gate_.capacity()) + " requests)");
    return OkStatus();
  }
  obs::Gauge& inflight_gauge =
      obs::DefaultRegistry().GetGauge("condensa_query_inflight");
  inflight_gauge.Set(static_cast<double>(gate_.inflight()));

  // Pin one snapshot for the whole request: ingest may Publish newer
  // ones concurrently, but this answer is consistent with exactly this
  // version.
  std::shared_ptr<const QuerySnapshot> snapshot = store_->Current();
  Status send = OkStatus();
  if (snapshot == nullptr) {
    net::SendErrorFrame(
        conn, FailedPreconditionError("no snapshot published yet"),
        config_.io_timeout_ms);
  } else {
    StatusOr<QueryResult> result = engine_.Execute(*snapshot, *query, context);
    if (!result.ok()) {
      if (IsUnavailable(result.status())) {
        // The engine only returns kUnavailable for deadline expiry (or
        // an injected unavailability, which the soak treats the same).
        obs::DefaultRegistry()
            .GetCounter("condensa_query_rejected_total",
                        {{"reason", "deadline"}})
            .Increment();
      }
      net::SendErrorFrame(conn, result.status(), config_.io_timeout_ms);
    } else {
      // Degraded serving: the snapshot may be arbitrarily old while
      // ingest stalls; report its age and let the client decide.
      result->staleness_ms =
          snapshot->AgeMs(std::chrono::steady_clock::now());
      if (config_.stale_after_ms > 0.0 &&
          result->staleness_ms > config_.stale_after_ms) {
        obs::DefaultRegistry()
            .GetCounter("condensa_query_stale_served_total")
            .Increment();
      }
      send = conn.SendFrame(net::FrameType::kQueryResult,
                            EncodeQueryResult(*result),
                            config_.io_timeout_ms);
    }
  }
  ticket.reset();
  inflight_gauge.Set(static_cast<double>(gate_.inflight()));
  return send;
}

}  // namespace condensa::query
