// Synchronous client for the query server.
//
// One framed request/response per Execute call. Request-level failures
// arrive as in-band Error frames and surface as the reconstituted
// Status; transport failures close the connection (no partial-frame
// state survives an error), and ExecuteWithRetry redials it.
//
// Retry policy (docs/resilience.md): every query kind is an idempotent
// read — classify and aggregate are pure functions of the snapshot, and
// regenerate is deterministic in its seed — so re-sending after an
// ambiguous failure can never double-apply anything. Retries happen on
// exactly two classes of failure:
//
//   * transport errors (send/recv failed, connection died): redial and
//     re-send, because the server may have restarted;
//   * in-band kUnavailable (session cap, in-flight cap, deadline shed,
//     shutting down): back off and re-send on the same connection.
//
// Every other in-band status (kInvalidArgument, kFailedPrecondition,
// kDataLoss from a corrupt payload, ...) is deterministic and returned
// immediately. An overall deadline budget bounds the whole call —
// attempts, redials, and backoff sleeps included — and is forwarded to
// the server as each attempt's remaining budget so the server stops
// working the moment the client stops waiting.

#ifndef CONDENSA_QUERY_CLIENT_H_
#define CONDENSA_QUERY_CLIENT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/socket.h"
#include "query/query.h"
#include "runtime/retry.h"

namespace condensa::query {

struct QueryRetryOptions {
  // Total attempts, including the first. 1 disables retrying.
  std::size_t max_attempts = 4;
  // Overall budget for the whole call (all attempts + backoff), in ms.
  // 0 = unbounded. Also forwarded per attempt as Query::deadline_ms.
  double deadline_ms = 0.0;
  // Backoff shape between attempts (runtime's write-path defaults).
  runtime::RetryPolicy backoff;
  // Seeds the backoff jitter so tests are reproducible.
  std::uint64_t jitter_seed = 0;
};

// What a resilient call actually did (for tests and soak accounting).
struct QueryRetryStats {
  std::size_t attempts = 0;
  std::size_t redials = 0;
};

class QueryClient {
 public:
  // Dials the server. kUnavailable on refusal/timeout. `timeout_ms` is
  // remembered as the default frame-transfer and Goodbye timeout.
  static StatusOr<QueryClient> Connect(const std::string& host,
                                       std::uint16_t port,
                                       double timeout_ms);

  QueryClient(QueryClient&&) = default;
  QueryClient& operator=(QueryClient&&) = default;

  // Closes politely (best-effort Goodbye).
  ~QueryClient();

  // Sends `query` and blocks for the answer; `timeout_ms` bounds each
  // frame transfer. An in-band Error frame becomes its Status. A
  // transport failure closes the connection (ok() goes false).
  StatusOr<QueryResult> Execute(const Query& query, double timeout_ms);

  // Execute with redial + exponential backoff under an overall deadline
  // budget; see the retry policy above. `stats` (nullable) reports what
  // happened.
  StatusOr<QueryResult> ExecuteWithRetry(const Query& query,
                                         const QueryRetryOptions& options,
                                         QueryRetryStats* stats = nullptr);

  bool ok() const { return conn_.ok(); }
  void Close();

 private:
  QueryClient(net::TcpConnection conn, std::string host, std::uint16_t port,
              double timeout_ms)
      : conn_(std::move(conn)),
        host_(std::move(host)),
        port_(port),
        timeout_ms_(timeout_ms) {}

  // Re-establishes conn_ after a transport failure.
  Status Redial(double timeout_ms);

  net::TcpConnection conn_;
  std::string host_;
  std::uint16_t port_ = 0;
  double timeout_ms_ = 5000.0;
};

}  // namespace condensa::query

#endif  // CONDENSA_QUERY_CLIENT_H_
