// Synchronous client for the query server.
//
// One framed request/response per Execute call. Request-level failures
// arrive as in-band Error frames and surface as the reconstituted
// Status; transport failures leave the connection unusable (callers
// reconnect — no partial-frame state survives an error).

#ifndef CONDENSA_QUERY_CLIENT_H_
#define CONDENSA_QUERY_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/socket.h"
#include "query/query.h"

namespace condensa::query {

class QueryClient {
 public:
  // Dials the server. kUnavailable on refusal/timeout.
  static StatusOr<QueryClient> Connect(const std::string& host,
                                       std::uint16_t port,
                                       double timeout_ms);

  QueryClient(QueryClient&&) = default;
  QueryClient& operator=(QueryClient&&) = default;

  // Closes politely (best-effort Goodbye).
  ~QueryClient();

  // Sends `query` and blocks for the answer; `timeout_ms` bounds each
  // frame transfer. An in-band Error frame becomes its Status.
  StatusOr<QueryResult> Execute(const Query& query, double timeout_ms);

  bool ok() const { return conn_.ok(); }
  void Close();

 private:
  explicit QueryClient(net::TcpConnection conn) : conn_(std::move(conn)) {}

  net::TcpConnection conn_;
};

}  // namespace condensa::query

#endif  // CONDENSA_QUERY_CLIENT_H_
