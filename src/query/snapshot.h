// Snapshot-consistent published views of condensed state.
//
// The write path (DynamicCondenser inside a StreamPipeline, or a shard
// gather) mutates its group set continuously; the query plane must never
// observe a half-applied mutation. The contract here is
// publish-by-value: the writer copies its current groups into an
// immutable QuerySnapshot and swaps it into the SnapshotStore; readers
// take a shared_ptr and answer every query of a request against that one
// object. A snapshot is never mutated after Publish, so a query sees one
// stable group-set version end to end while ingest keeps moving
// underneath — and the version stamps inside the copied groups keep the
// eigendecomposition cache exact across snapshots (copying preserves
// stamps; only real mutations mint new ones).

#ifndef CONDENSA_QUERY_SNAPSHOT_H_
#define CONDENSA_QUERY_SNAPSHOT_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/condensed_group_set.h"
#include "core/engine.h"

namespace condensa::query {

// One labeled pool of condensed groups. label -1 means unlabeled (a bare
// group set, or a regression pool) — classify queries require at least
// one pool with a real label.
struct LabeledGroups {
  int label = -1;
  core::CondensedGroupSet groups;
};

struct QuerySnapshot {
  // Assigned by SnapshotStore::Publish; strictly increasing per store.
  std::uint64_t version = 0;
  std::size_t dim = 0;
  std::vector<LabeledGroups> pools;
  // Records the write path had seen when this snapshot was taken (0 for
  // snapshots built from files).
  std::size_t records_seen = 0;
  // When this snapshot became current (stamped by Publish). Snapshots
  // that were never published (file-built, used directly) keep the
  // default epoch and report age 0 — they are as fresh as their source.
  std::chrono::steady_clock::time_point published_at{};

  std::size_t TotalGroups() const;
  std::size_t TotalRecords() const;
  // Milliseconds since publication as of `now`; 0 for never-published.
  double AgeMs(std::chrono::steady_clock::time_point now) const;
};

// Builds an unversioned snapshot (version assigned at Publish) from
// retained state. Groups are copied; the source remains untouched.
QuerySnapshot SnapshotFromGroupSet(const core::CondensedGroupSet& groups);
QuerySnapshot SnapshotFromPools(const core::CondensedPools& pools);

// Thread-safe holder of the latest published snapshot.
class SnapshotStore {
 public:
  SnapshotStore() = default;
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  // Stamps `snapshot` with the next version and makes it current.
  // Returns the assigned version. Also exports the version as the
  // condensa_query_snapshot_version gauge.
  std::uint64_t Publish(QuerySnapshot snapshot);

  // The latest snapshot, or nullptr before the first Publish. The
  // returned object is immutable and outlives any later Publish.
  std::shared_ptr<const QuerySnapshot> Current() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const QuerySnapshot> current_;
  std::uint64_t next_version_ = 1;
};

}  // namespace condensa::query

#endif  // CONDENSA_QUERY_SNAPSHOT_H_
