// The query engine: mining answers straight from condensed statistics.
//
// Executes one Query against one immutable QuerySnapshot (see
// snapshot.h for the consistency model). Nothing here touches raw
// records — classification uses centroids + group masses, aggregates
// come exactly from the additive (n, Fs, Sc) moments, and regeneration
// samples from the version-keyed eigendecomposition cache shared across
// queries (eigen_cache.h).
//
// Thread safety: Execute is safe from multiple threads against the same
// engine (the cache synchronizes internally; everything else is local or
// read-only).

#ifndef CONDENSA_QUERY_ENGINE_H_
#define CONDENSA_QUERY_ENGINE_H_

#include <cstddef>

#include "common/status.h"
#include "query/eigen_cache.h"
#include "query/query.h"
#include "query/snapshot.h"

namespace condensa::query {

struct QueryEngineOptions {
  // Bound on cached eigendecompositions (LRU beyond it). Must be >= 1.
  std::size_t eigen_cache_capacity = 1024;
};

class QueryEngine {
 public:
  explicit QueryEngine(QueryEngineOptions options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // Answers `query` against `snapshot`. kInvalidArgument for malformed
  // queries (dim mismatches, bad ranges, neighbors == 0);
  // kFailedPrecondition for queries the snapshot cannot answer (empty,
  // or classify without labeled pools).
  StatusOr<QueryResult> Execute(const QuerySnapshot& snapshot,
                                const Query& query);

  const EigenCache& eigen_cache() const { return cache_; }

 private:
  StatusOr<ClassifyResult> ExecuteClassify(const QuerySnapshot& snapshot,
                                           const ClassifyQuery& query) const;
  StatusOr<AggregateResult> ExecuteAggregate(
      const QuerySnapshot& snapshot, const AggregateQuery& query) const;
  StatusOr<RegenerateResult> ExecuteRegenerate(const QuerySnapshot& snapshot,
                                               const RegenerateQuery& query);

  QueryEngineOptions options_;
  EigenCache cache_;
};

}  // namespace condensa::query

#endif  // CONDENSA_QUERY_ENGINE_H_
