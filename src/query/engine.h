// The query engine: mining answers straight from condensed statistics.
//
// Executes one Query against one immutable QuerySnapshot (see
// snapshot.h for the consistency model). Nothing here touches raw
// records — classification uses centroids + group masses, aggregates
// come exactly from the additive (n, Fs, Sc) moments, and regeneration
// samples from the version-keyed eigendecomposition cache shared across
// queries (eigen_cache.h).
//
// Thread safety: Execute is safe from multiple threads against the same
// engine (the cache synchronizes internally; everything else is local or
// read-only).
//
// Deadlines: Execute takes an optional ExecutionContext carrying an
// absolute local deadline. The engine checks it between units of work —
// per classify point, per aggregate pool, per regenerate group (before
// paying for an eigendecomposition) — and abandons the request with
// kUnavailable the moment it expires, so a pile of slow regenerations
// cannot hold a session slot past the time the client stopped waiting.

#ifndef CONDENSA_QUERY_ENGINE_H_
#define CONDENSA_QUERY_ENGINE_H_

#include <chrono>
#include <cstddef>
#include <optional>

#include "common/status.h"
#include "query/eigen_cache.h"
#include "query/query.h"
#include "query/snapshot.h"

namespace condensa::query {

struct QueryEngineOptions {
  // Bound on cached eigendecompositions (LRU beyond it). Must be >= 1.
  std::size_t eigen_cache_capacity = 1024;
};

// Per-request execution limits. Default-constructed = unbounded.
struct ExecutionContext {
  // Absolute deadline on the engine's own steady clock; nullopt = none.
  std::optional<std::chrono::steady_clock::time_point> deadline;

  bool Expired() const {
    return deadline.has_value() && std::chrono::steady_clock::now() >= *deadline;
  }
  // Builds a context whose deadline is `budget_ms` from now; a budget of
  // 0 means no deadline (the wire encoding of "none").
  static ExecutionContext WithBudgetMs(double budget_ms);
};

class QueryEngine {
 public:
  explicit QueryEngine(QueryEngineOptions options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // Answers `query` against `snapshot`. kInvalidArgument for malformed
  // queries (dim mismatches, bad ranges, neighbors == 0);
  // kFailedPrecondition for queries the snapshot cannot answer (empty,
  // or classify without labeled pools); kUnavailable when the context
  // deadline expires mid-execution (the partial answer is discarded).
  StatusOr<QueryResult> Execute(const QuerySnapshot& snapshot,
                                const Query& query,
                                const ExecutionContext& context = {});

  const EigenCache& eigen_cache() const { return cache_; }

 private:
  StatusOr<ClassifyResult> ExecuteClassify(const QuerySnapshot& snapshot,
                                           const ClassifyQuery& query,
                                           const ExecutionContext& context)
      const;
  StatusOr<AggregateResult> ExecuteAggregate(
      const QuerySnapshot& snapshot, const AggregateQuery& query,
      const ExecutionContext& context) const;
  StatusOr<RegenerateResult> ExecuteRegenerate(
      const QuerySnapshot& snapshot, const RegenerateQuery& query,
      const ExecutionContext& context);

  QueryEngineOptions options_;
  EigenCache cache_;
};

}  // namespace condensa::query

#endif  // CONDENSA_QUERY_ENGINE_H_
