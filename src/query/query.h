// The query model: what a mining query against condensed statistics is.
//
// Three kinds (docs/query.md has the full language):
//
//   classify    k-NN against group centroids, votes weighted by group
//               mass n(G) — the paper's point that centroids + counts
//               are sufficient for nearest-neighbour classification.
//   aggregate   count / mean / variance / covariance over the groups
//               selected by a range predicate, computed EXACTLY from the
//               additive (n, Fs, Sc) moments — bit-identical to folding
//               GroupStatistics::Merge over the selection, because that
//               is literally how it is computed.
//   regenerate  anonymized records for the selected groups, sampled from
//               the cached eigendecomposition (core::SampleFromEigen) —
//               deterministic in the request seed.
//
// Selection is group-granular: a range predicate matches a group when
// the group's CENTROID falls inside the axis-aligned box. Groups are the
// privacy atom of the condensation model — record-granular selection
// would require the raw records the server deliberately does not have.

#ifndef CONDENSA_QUERY_QUERY_H_
#define CONDENSA_QUERY_QUERY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace condensa::query {

enum class QueryKind : std::uint8_t {
  kClassify = 0,
  kAggregate = 1,
  kRegenerate = 2,
};

const char* QueryKindName(QueryKind kind);

// Axis-aligned box over group centroids. No bounds = every group.
struct RangePredicate {
  struct Bound {
    std::size_t dim = 0;
    double lo = 0.0;
    double hi = 0.0;  // inclusive on both ends
  };
  std::vector<Bound> bounds;

  bool Matches(const linalg::Vector& centroid) const;
  // Bounds must name dims < `dim` and satisfy lo <= hi.
  Status Validate(std::size_t dim) const;
};

// Parses the CLI range syntax "dim:lo:hi[,dim:lo:hi...]" ("" = match
// all). kInvalidArgument on malformed specs.
StatusOr<RangePredicate> ParseRangeSpec(const std::string& spec);

struct ClassifyQuery {
  // Points to classify; every point must have the snapshot's dim.
  std::vector<linalg::Vector> points;
  // Number of nearest group centroids consulted per point (>= 1).
  std::size_t neighbors = 1;
};

struct AggregateQuery {
  RangePredicate range;
};

struct RegenerateQuery {
  RangePredicate range;
  // Seeds the sampling; the same (snapshot, query) pair always yields
  // the same records.
  std::uint64_t seed = 0;
  // Records per selected group; 0 means each group's own n(G).
  std::size_t records_per_group = 0;
};

struct Query {
  QueryKind kind = QueryKind::kAggregate;
  // Client's remaining time budget in milliseconds; 0 = no deadline.
  // Carried as a RELATIVE budget (not a wall-clock instant) so client
  // and server clocks never need to agree; the server anchors it to its
  // own clock the moment the frame arrives. A request whose budget is
  // already spent is shed with kUnavailable instead of doing work the
  // client will no longer read.
  double deadline_ms = 0.0;
  ClassifyQuery classify;
  AggregateQuery aggregate;
  RegenerateQuery regenerate;
};

struct ClassifyResult {
  // One predicted label per query point, in order.
  std::vector<int> labels;
};

struct AggregateResult {
  std::uint64_t groups_matched = 0;
  // Exact record count over the selection (Σ n(G)).
  std::uint64_t records = 0;
  // False when the selection is empty (mean/covariance undefined).
  bool has_moments = false;
  // Mean and covariance of the selected records, exactly as
  // GroupStatistics::Merge over the selection would report them.
  // Variance is the covariance diagonal; any covariance projection
  // vᵀCv is computable from the matrix.
  linalg::Vector mean;
  linalg::Matrix covariance;
};

struct RegenerateResult {
  std::uint64_t groups_matched = 0;
  std::vector<linalg::Vector> records;
};

struct QueryResult {
  // The snapshot the answer was computed against.
  std::uint64_t snapshot_version = 0;
  // Age of that snapshot (ms since it was published) as observed by the
  // server when it answered. Degraded serving makes staleness explicit:
  // when ingest stalls, the server keeps answering from the last
  // snapshot and the client decides whether the age is acceptable.
  double staleness_ms = 0.0;
  QueryKind kind = QueryKind::kAggregate;
  ClassifyResult classify;
  AggregateResult aggregate;
  RegenerateResult regenerate;
};

}  // namespace condensa::query

#endif  // CONDENSA_QUERY_QUERY_H_
