#include "query/engine.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "core/anonymizer.h"
#include "obs/metrics.h"
#include "obs/timing.h"
#include "simd/distance.h"
#include "simd/record_block.h"

namespace condensa::query {
namespace {

// One candidate neighbour for the classify vote. Ordering is (distance,
// pool, group) lexicographic so ties are deterministic across runs and
// platforms.
struct Neighbor {
  double distance_squared = 0.0;
  std::size_t pool = 0;
  std::size_t group = 0;
  int label = -1;
  std::uint64_t mass = 0;

  bool operator<(const Neighbor& other) const {
    if (distance_squared != other.distance_squared) {
      return distance_squared < other.distance_squared;
    }
    if (pool != other.pool) return pool < other.pool;
    return group < other.group;
  }
};

Status DeadlineExpired(const char* where) {
  return UnavailableError(std::string("deadline expired during ") + where);
}

}  // namespace

ExecutionContext ExecutionContext::WithBudgetMs(double budget_ms) {
  ExecutionContext context;
  if (budget_ms > 0.0) {
    context.deadline = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               budget_ms));
  }
  return context;
}

QueryEngine::QueryEngine(QueryEngineOptions options)
    : options_(options), cache_(options.eigen_cache_capacity) {}

StatusOr<QueryResult> QueryEngine::Execute(const QuerySnapshot& snapshot,
                                           const Query& query,
                                           const ExecutionContext& context) {
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  registry
      .GetCounter("condensa_query_requests_total",
                  {{"kind", QueryKindName(query.kind)}})
      .Increment();
  obs::Timer timer;

  QueryResult result;
  result.snapshot_version = snapshot.version;
  result.kind = query.kind;
  // Chaos probe: injects errors or latency into the execution path as if
  // the engine itself were slow or failing (kLatency mode stalls here,
  // which is how the soak simulates expensive factorizations).
  Status status = FailPoint::Maybe("query.execute");
  if (status.ok() && context.Expired()) {
    status = DeadlineExpired("admission to execute");
  }
  if (status.ok()) {
    switch (query.kind) {
      case QueryKind::kClassify: {
        StatusOr<ClassifyResult> classify =
            ExecuteClassify(snapshot, query.classify, context);
        if (classify.ok()) {
          result.classify = *std::move(classify);
        } else {
          status = classify.status();
        }
        break;
      }
      case QueryKind::kAggregate: {
        StatusOr<AggregateResult> aggregate =
            ExecuteAggregate(snapshot, query.aggregate, context);
        if (aggregate.ok()) {
          result.aggregate = *std::move(aggregate);
        } else {
          status = aggregate.status();
        }
        break;
      }
      case QueryKind::kRegenerate: {
        StatusOr<RegenerateResult> regenerate =
            ExecuteRegenerate(snapshot, query.regenerate, context);
        if (regenerate.ok()) {
          result.regenerate = *std::move(regenerate);
        } else {
          status = regenerate.status();
        }
        break;
      }
    }
  }

  registry
      .GetHistogram("condensa_query_request_seconds",
                    {{"kind", QueryKindName(query.kind)}})
      .Observe(timer.ElapsedSeconds());
  if (!status.ok()) {
    registry
        .GetCounter("condensa_query_request_failures_total",
                    {{"kind", QueryKindName(query.kind)}})
        .Increment();
    return status;
  }
  return result;
}

StatusOr<ClassifyResult> QueryEngine::ExecuteClassify(
    const QuerySnapshot& snapshot, const ClassifyQuery& query,
    const ExecutionContext& context) const {
  if (query.neighbors < 1) {
    return InvalidArgumentError("classify needs neighbors >= 1");
  }
  if (snapshot.TotalGroups() == 0) {
    return FailedPreconditionError("snapshot holds no groups");
  }
  bool labeled = false;
  for (const LabeledGroups& pool : snapshot.pools) {
    if (pool.label >= 0 && !pool.groups.empty()) {
      labeled = true;
      break;
    }
  }
  if (!labeled) {
    return FailedPreconditionError(
        "snapshot holds no labeled pools to classify against");
  }

  // Pack each labeled pool's centroids into blocked-SoA storage once per
  // call: every query point then scans a pool with one batch-distance
  // kernel call instead of a per-group virtual stride. The kernel's
  // per-record sum runs in dimension order over (centroid - point)
  // differences; GroupStatistics::SquaredDistanceToCentroid sums
  // (point - centroid) in the same order, and IEEE negation is exact, so
  // the distances — and hence the votes — are bit-identical to the
  // scalar path.
  struct PoolBlock {
    std::size_t pool = 0;
    int label = -1;
    simd::RecordBlock centroids{0};
    std::vector<std::uint64_t> mass;
  };
  std::vector<PoolBlock> pool_blocks;
  std::size_t max_groups = 0;
  for (std::size_t p = 0; p < snapshot.pools.size(); ++p) {
    const LabeledGroups& pool = snapshot.pools[p];
    if (pool.label < 0 || pool.groups.num_groups() == 0) continue;
    PoolBlock block;
    block.pool = p;
    block.label = pool.label;
    block.centroids = simd::RecordBlock(snapshot.dim);
    block.centroids.Reserve(pool.groups.num_groups());
    block.mass.reserve(pool.groups.num_groups());
    for (std::size_t g = 0; g < pool.groups.num_groups(); ++g) {
      const core::GroupStatistics& group = pool.groups.group(g);
      block.centroids.Append(group.Centroid());
      block.mass.push_back(group.count());
    }
    max_groups = std::max(max_groups, pool.groups.num_groups());
    pool_blocks.push_back(std::move(block));
  }

  ClassifyResult result;
  result.labels.reserve(query.points.size());
  std::vector<double> dist(max_groups);
  std::vector<Neighbor> nearest;  // max-heap of size <= neighbors
  for (const linalg::Vector& point : query.points) {
    if (context.Expired()) {
      return DeadlineExpired("classify");
    }
    if (point.dim() != snapshot.dim) {
      return InvalidArgumentError(
          "classify point has dimension " + std::to_string(point.dim()) +
          " but the snapshot has " + std::to_string(snapshot.dim));
    }
    nearest.clear();
    for (const PoolBlock& block : pool_blocks) {
      simd::SquaredDistanceBatch(block.centroids, point.data(), dist.data());
      for (std::size_t g = 0; g < block.centroids.size(); ++g) {
        const double d2 = dist[g];
        // Once the heap is full a strictly-greater distance can never
        // win — only an equal one can, via the (pool, group) tie-break —
        // so most groups drop here before the Neighbor is even built.
        if (nearest.size() == query.neighbors &&
            d2 > nearest.front().distance_squared) {
          continue;
        }
        Neighbor candidate{d2, block.pool, g, block.label, block.mass[g]};
        if (nearest.size() < query.neighbors) {
          nearest.push_back(candidate);
          std::push_heap(nearest.begin(), nearest.end());
        } else if (candidate < nearest.front()) {
          std::pop_heap(nearest.begin(), nearest.end());
          nearest.back() = candidate;
          std::push_heap(nearest.begin(), nearest.end());
        }
      }
    }
    // Mass-weighted vote: each neighbouring group speaks for all n(G)
    // records it condenses. std::map iterates labels ascending, so a
    // strict > comparison breaks weight ties toward the smaller label.
    std::map<int, std::uint64_t> votes;
    for (const Neighbor& neighbor : nearest) {
      votes[neighbor.label] += neighbor.mass;
    }
    int best_label = -1;
    std::uint64_t best_weight = 0;
    for (const auto& [label, weight] : votes) {
      if (weight > best_weight) {
        best_weight = weight;
        best_label = label;
      }
    }
    result.labels.push_back(best_label);
  }
  return result;
}

StatusOr<AggregateResult> QueryEngine::ExecuteAggregate(
    const QuerySnapshot& snapshot, const AggregateQuery& query,
    const ExecutionContext& context) const {
  CONDENSA_RETURN_IF_ERROR(query.range.Validate(snapshot.dim));

  // The whole answer is one fold of the additive moments — the result is
  // bit-identical to GroupStatistics::Merge over the selection because
  // it IS GroupStatistics::Merge over the selection, in (pool, group)
  // order.
  core::GroupStatistics folded(snapshot.dim);
  AggregateResult result;
  for (const LabeledGroups& pool : snapshot.pools) {
    if (context.Expired()) {
      return DeadlineExpired("aggregate");
    }
    for (std::size_t g = 0; g < pool.groups.num_groups(); ++g) {
      const core::GroupStatistics& group = pool.groups.group(g);
      if (!query.range.Matches(group.Centroid())) continue;
      folded.Merge(group);
      ++result.groups_matched;
    }
  }
  result.records = folded.count();
  if (!folded.empty()) {
    result.has_moments = true;
    result.mean = folded.Centroid();
    result.covariance = folded.Covariance();
  }
  return result;
}

StatusOr<RegenerateResult> QueryEngine::ExecuteRegenerate(
    const QuerySnapshot& snapshot, const RegenerateQuery& query,
    const ExecutionContext& context) {
  CONDENSA_RETURN_IF_ERROR(query.range.Validate(snapshot.dim));

  RegenerateResult result;
  // One substream per selected group, split in selection order — the
  // same discipline as Anonymizer::Generate, so the output is a pure
  // function of (snapshot, query).
  Rng rng(query.seed);
  for (const LabeledGroups& pool : snapshot.pools) {
    for (std::size_t g = 0; g < pool.groups.num_groups(); ++g) {
      const core::GroupStatistics& group = pool.groups.group(g);
      linalg::Vector centroid = group.Centroid();
      if (!query.range.Matches(centroid)) continue;
      // Checked per selected group, BEFORE paying for a factorization:
      // the eigendecomposition is the expensive unit of regenerate work.
      if (context.Expired()) {
        return DeadlineExpired("regenerate");
      }
      ++result.groups_matched;
      Rng stream = rng.Split();
      const std::size_t count = query.records_per_group > 0
                                    ? query.records_per_group
                                    : group.count();
      if (group.count() == 1) {
        // Zero covariance: the centroid is the exact record; no
        // factorization exists to cache.
        for (std::size_t i = 0; i < count; ++i) {
          result.records.push_back(centroid);
        }
        continue;
      }
      CONDENSA_ASSIGN_OR_RETURN(
          std::shared_ptr<const linalg::EigenDecomposition> eigen,
          cache_.Get(group));
      std::vector<linalg::Vector> sampled = core::SampleFromEigen(
          centroid, *eigen, count, core::SamplingDistribution::kUniform,
          stream);
      for (linalg::Vector& record : sampled) {
        result.records.push_back(std::move(record));
      }
    }
  }
  return result;
}

}  // namespace condensa::query
