#include "query/wire.h"

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "net/wire.h"

namespace condensa::query {
namespace {

using net::WireReader;
using net::WireWriter;

// Reuse the fabric's per-frame caps: a corrupt count or dimension must
// be rejected before it can drive allocation or per-element work.
constexpr std::uint64_t kMaxPoints = net::kMaxRecordsPerSubmit;
constexpr std::uint64_t kMaxDim = net::kMaxWireDim;
constexpr std::uint32_t kMaxBounds = static_cast<std::uint32_t>(kMaxDim);

void EncodeBounds(WireWriter& writer, const RangePredicate& range) {
  writer.PutU32(static_cast<std::uint32_t>(range.bounds.size()));
  for (const RangePredicate::Bound& bound : range.bounds) {
    writer.PutU64(static_cast<std::uint64_t>(bound.dim));
    writer.PutDouble(bound.lo);
    writer.PutDouble(bound.hi);
  }
}

Status DecodeBounds(WireReader& reader, RangePredicate* range) {
  std::uint32_t count = 0;
  CONDENSA_RETURN_IF_ERROR(reader.ReadU32(&count));
  if (count > kMaxBounds) {
    return DataLossError("range bound count " + std::to_string(count) +
                         " exceeds the cap");
  }
  // 20 bytes per bound; check before reserving.
  if (reader.remaining() < static_cast<std::size_t>(count) * 20) {
    return DataLossError("range bounds truncated");
  }
  range->bounds.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RangePredicate::Bound bound;
    std::uint64_t dim = 0;
    CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&dim));
    CONDENSA_RETURN_IF_ERROR(reader.ReadDouble(&bound.lo));
    CONDENSA_RETURN_IF_ERROR(reader.ReadDouble(&bound.hi));
    bound.dim = static_cast<std::size_t>(dim);
    range->bounds.push_back(bound);
  }
  return OkStatus();
}

void EncodePoints(WireWriter& writer, std::uint64_t dim,
                  const std::vector<linalg::Vector>& points) {
  writer.PutU64(dim);
  writer.PutU32(static_cast<std::uint32_t>(points.size()));
  for (const linalg::Vector& point : points) {
    for (std::size_t i = 0; i < point.dim(); ++i) {
      writer.PutDouble(point[i]);
    }
  }
}

Status DecodePoints(WireReader& reader, std::vector<linalg::Vector>* points,
                    std::size_t* dim_out) {
  std::uint64_t dim = 0;
  std::uint32_t count = 0;
  CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&dim));
  CONDENSA_RETURN_IF_ERROR(reader.ReadU32(&count));
  if (dim > kMaxDim) {
    return DataLossError("wire dimension " + std::to_string(dim) +
                         " exceeds the cap");
  }
  if (count > kMaxPoints) {
    return DataLossError("wire point count " + std::to_string(count) +
                         " exceeds the cap");
  }
  // count <= 2^20 and dim <= 2^16, so the product cannot overflow.
  const std::uint64_t bytes = static_cast<std::uint64_t>(count) * dim * 8;
  if (reader.remaining() < bytes) {
    return DataLossError("wire points truncated");
  }
  points->reserve(count);
  for (std::uint32_t p = 0; p < count; ++p) {
    linalg::Vector point(static_cast<std::size_t>(dim));
    for (std::uint64_t i = 0; i < dim; ++i) {
      CONDENSA_RETURN_IF_ERROR(reader.ReadDouble(&point[i]));
    }
    points->push_back(std::move(point));
  }
  *dim_out = static_cast<std::size_t>(dim);
  return OkStatus();
}

}  // namespace

std::string EncodeQuery(const Query& query) {
  WireWriter writer;
  writer.PutU8(static_cast<std::uint8_t>(query.kind));
  writer.PutDouble(query.deadline_ms);
  switch (query.kind) {
    case QueryKind::kClassify: {
      writer.PutU64(static_cast<std::uint64_t>(query.classify.neighbors));
      const std::uint64_t dim =
          query.classify.points.empty() ? 0 : query.classify.points[0].dim();
      EncodePoints(writer, dim, query.classify.points);
      break;
    }
    case QueryKind::kAggregate:
      EncodeBounds(writer, query.aggregate.range);
      break;
    case QueryKind::kRegenerate:
      EncodeBounds(writer, query.regenerate.range);
      writer.PutU64(query.regenerate.seed);
      writer.PutU64(
          static_cast<std::uint64_t>(query.regenerate.records_per_group));
      break;
  }
  return writer.Take();
}

StatusOr<Query> DecodeQuery(std::string_view payload) {
  WireReader reader(payload);
  std::uint8_t raw_kind = 0;
  CONDENSA_RETURN_IF_ERROR(reader.ReadU8(&raw_kind));
  if (raw_kind > static_cast<std::uint8_t>(QueryKind::kRegenerate)) {
    return DataLossError("unknown query kind " + std::to_string(raw_kind));
  }
  Query query;
  query.kind = static_cast<QueryKind>(raw_kind);
  CONDENSA_RETURN_IF_ERROR(reader.ReadDouble(&query.deadline_ms));
  if (!(query.deadline_ms >= 0.0)) {  // rejects negatives and NaN
    return DataLossError("negative or non-finite deadline");
  }
  switch (query.kind) {
    case QueryKind::kClassify: {
      std::uint64_t neighbors = 0;
      CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&neighbors));
      query.classify.neighbors = static_cast<std::size_t>(neighbors);
      std::size_t dim = 0;
      CONDENSA_RETURN_IF_ERROR(
          DecodePoints(reader, &query.classify.points, &dim));
      break;
    }
    case QueryKind::kAggregate:
      CONDENSA_RETURN_IF_ERROR(
          DecodeBounds(reader, &query.aggregate.range));
      break;
    case QueryKind::kRegenerate: {
      CONDENSA_RETURN_IF_ERROR(
          DecodeBounds(reader, &query.regenerate.range));
      CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&query.regenerate.seed));
      std::uint64_t per_group = 0;
      CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&per_group));
      query.regenerate.records_per_group =
          static_cast<std::size_t>(per_group);
      break;
    }
  }
  CONDENSA_RETURN_IF_ERROR(reader.ExpectDone());
  return query;
}

std::string EncodeQueryResult(const QueryResult& result) {
  WireWriter writer;
  writer.PutU64(result.snapshot_version);
  writer.PutDouble(result.staleness_ms);
  writer.PutU8(static_cast<std::uint8_t>(result.kind));
  switch (result.kind) {
    case QueryKind::kClassify:
      writer.PutU32(static_cast<std::uint32_t>(result.classify.labels.size()));
      for (int label : result.classify.labels) {
        writer.PutU64(
            static_cast<std::uint64_t>(static_cast<std::int64_t>(label)));
      }
      break;
    case QueryKind::kAggregate: {
      const AggregateResult& agg = result.aggregate;
      writer.PutU64(agg.groups_matched);
      writer.PutU64(agg.records);
      writer.PutU8(agg.has_moments ? 1 : 0);
      if (agg.has_moments) {
        const std::uint64_t dim = agg.mean.dim();
        writer.PutU64(dim);
        for (std::size_t i = 0; i < dim; ++i) {
          writer.PutDouble(agg.mean[i]);
        }
        for (std::size_t i = 0; i < dim; ++i) {
          for (std::size_t j = 0; j < dim; ++j) {
            writer.PutDouble(agg.covariance(i, j));
          }
        }
      }
      break;
    }
    case QueryKind::kRegenerate: {
      writer.PutU64(result.regenerate.groups_matched);
      const std::uint64_t dim = result.regenerate.records.empty()
                                    ? 0
                                    : result.regenerate.records[0].dim();
      EncodePoints(writer, dim, result.regenerate.records);
      break;
    }
  }
  return writer.Take();
}

StatusOr<QueryResult> DecodeQueryResult(std::string_view payload) {
  WireReader reader(payload);
  QueryResult result;
  CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&result.snapshot_version));
  CONDENSA_RETURN_IF_ERROR(reader.ReadDouble(&result.staleness_ms));
  if (!(result.staleness_ms >= 0.0)) {  // rejects negatives and NaN
    return DataLossError("negative or non-finite staleness");
  }
  std::uint8_t raw_kind = 0;
  CONDENSA_RETURN_IF_ERROR(reader.ReadU8(&raw_kind));
  if (raw_kind > static_cast<std::uint8_t>(QueryKind::kRegenerate)) {
    return DataLossError("unknown query result kind " +
                         std::to_string(raw_kind));
  }
  result.kind = static_cast<QueryKind>(raw_kind);
  switch (result.kind) {
    case QueryKind::kClassify: {
      std::uint32_t count = 0;
      CONDENSA_RETURN_IF_ERROR(reader.ReadU32(&count));
      if (count > kMaxPoints) {
        return DataLossError("label count " + std::to_string(count) +
                             " exceeds the cap");
      }
      if (reader.remaining() < static_cast<std::size_t>(count) * 8) {
        return DataLossError("labels truncated");
      }
      result.classify.labels.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint64_t raw = 0;
        CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&raw));
        const auto label = static_cast<std::int64_t>(raw);
        if (label < std::numeric_limits<int>::min() ||
            label > std::numeric_limits<int>::max()) {
          return DataLossError("label out of int range");
        }
        result.classify.labels.push_back(static_cast<int>(label));
      }
      break;
    }
    case QueryKind::kAggregate: {
      AggregateResult& agg = result.aggregate;
      CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&agg.groups_matched));
      CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&agg.records));
      std::uint8_t has_moments = 0;
      CONDENSA_RETURN_IF_ERROR(reader.ReadU8(&has_moments));
      if (has_moments > 1) {
        return DataLossError("bad has_moments flag");
      }
      agg.has_moments = has_moments == 1;
      if (agg.has_moments) {
        std::uint64_t dim = 0;
        CONDENSA_RETURN_IF_ERROR(reader.ReadU64(&dim));
        if (dim > kMaxDim) {
          return DataLossError("aggregate dimension exceeds the cap");
        }
        // dim + dim^2 doubles; dim <= 2^16 so no overflow.
        const std::uint64_t bytes = (dim + dim * dim) * 8;
        if (reader.remaining() < bytes) {
          return DataLossError("aggregate moments truncated");
        }
        agg.mean = linalg::Vector(static_cast<std::size_t>(dim));
        for (std::uint64_t i = 0; i < dim; ++i) {
          CONDENSA_RETURN_IF_ERROR(reader.ReadDouble(&agg.mean[i]));
        }
        agg.covariance = linalg::Matrix(static_cast<std::size_t>(dim),
                                        static_cast<std::size_t>(dim));
        for (std::uint64_t i = 0; i < dim; ++i) {
          for (std::uint64_t j = 0; j < dim; ++j) {
            CONDENSA_RETURN_IF_ERROR(
                reader.ReadDouble(&agg.covariance(i, j)));
          }
        }
      }
      break;
    }
    case QueryKind::kRegenerate: {
      CONDENSA_RETURN_IF_ERROR(
          reader.ReadU64(&result.regenerate.groups_matched));
      std::size_t dim = 0;
      CONDENSA_RETURN_IF_ERROR(
          DecodePoints(reader, &result.regenerate.records, &dim));
      break;
    }
  }
  CONDENSA_RETURN_IF_ERROR(reader.ExpectDone());
  return result;
}

}  // namespace condensa::query
