// The long-lived query server: the read-side peer of the shard fabric.
//
// Speaks the same framed protocol (net/frame.h) over the shared
// net::FramedServer loop. One request/response exchange per frame:
//
//   Query       -> decoded, executed against the CURRENT snapshot from
//                  the SnapshotStore, answered with QueryResult. The
//                  snapshot is pinned for the whole request, so every
//                  part of the answer reflects one group-set version
//                  even while ingest publishes newer snapshots
//                  concurrently; the answer carries that version.
//   Goodbye     -> clean session end (handled by FramedServer).
//   anything else, or a malformed/unanswerable Query -> in-band Error
//                  frame; the session continues.
//
// The server never mutates condensed state; it shares one QueryEngine
// (and thus one eigendecomposition cache) across all sessions.

#ifndef CONDENSA_QUERY_SERVER_H_
#define CONDENSA_QUERY_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/framed_server.h"
#include "query/engine.h"
#include "query/snapshot.h"

namespace condensa::query {

struct QueryServerConfig {
  std::string host = "127.0.0.1";
  // 0 picks a free port (see QueryServer::port()).
  std::uint16_t port = 0;
  // Per-frame send timeout within a session.
  double io_timeout_ms = 5000.0;
  // Accept/recv poll granularity; bounds Stop() latency.
  double poll_ms = 100.0;
  // A session silent for this long is dropped back to accept.
  double idle_timeout_ms = 30000.0;
  QueryEngineOptions engine;

  Status Validate() const;
};

class QueryServer {
 public:
  // Binds and listens; `store` supplies the snapshots to answer from
  // (publishing into it while the server runs is the intended use).
  static StatusOr<std::unique_ptr<QueryServer>> Create(
      QueryServerConfig config, std::shared_ptr<SnapshotStore> store);

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  std::uint16_t port() const { return server_->port(); }

  // Serves sessions until Stop(). Returns the first listener failure;
  // session and request errors are handled internally.
  Status Run();

  // Asks Run() to return at its next poll tick (thread-safe).
  void Stop() { server_->Stop(); }

  const QueryEngine& engine() const { return engine_; }

 private:
  QueryServer(QueryServerConfig config,
              std::shared_ptr<SnapshotStore> store);

  net::SessionAction Dispatch(net::TcpConnection& conn,
                              const net::Frame& frame);
  Status HandleQuery(net::TcpConnection& conn, const std::string& payload);

  QueryServerConfig config_;
  std::shared_ptr<SnapshotStore> store_;
  QueryEngine engine_;
  std::unique_ptr<net::FramedServer> server_;
};

}  // namespace condensa::query

#endif  // CONDENSA_QUERY_SERVER_H_
