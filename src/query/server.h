// The long-lived query server: the read-side peer of the shard fabric.
//
// Speaks the same framed protocol (net/frame.h) over the shared
// net::FramedServer loop. One request/response exchange per frame:
//
//   Query       -> decoded, executed against the CURRENT snapshot from
//                  the SnapshotStore, answered with QueryResult. The
//                  snapshot is pinned for the whole request, so every
//                  part of the answer reflects one group-set version
//                  even while ingest publishes newer snapshots
//                  concurrently; the answer carries that version and its
//                  age (staleness_ms) at answer time.
//   Goodbye     -> clean session end (handled by FramedServer).
//   anything else, or a malformed/unanswerable Query -> in-band Error
//                  frame; the session continues.
//
// Overload discipline (docs/resilience.md has the failure matrix):
//
//   * `max_sessions` concurrent sessions; a connection beyond the cap is
//     rejected in-band by FramedServer with kUnavailable + retry hint.
//   * `max_inflight` bounds requests actually executing across all
//     sessions (runtime::AdmissionGate); beyond it a request is shed
//     with kUnavailable reason=overload without touching the engine.
//   * A request whose client deadline budget has already elapsed — or
//     expires mid-execution — is shed with kUnavailable reason=deadline;
//     the engine aborts between units of work (per point / per group).
//   * After Stop(), requests still arriving on live sessions are shed
//     with kUnavailable reason=shutting-down instead of racing teardown.
//
// Degraded serving: the server always answers from the latest snapshot
// it has, however old; `staleness_ms` in the result makes the age the
// CLIENT's decision. Requests answered from a snapshot older than
// `stale_after_ms` are counted in condensa_query_stale_served_total.
//
// The server never mutates condensed state; it shares one QueryEngine
// (and thus one eigendecomposition cache) across all sessions. With
// max_sessions > 1 sessions run concurrently, which is safe: snapshots
// are immutable, the engine's cache synchronizes internally, and all
// per-request state is session-local.

#ifndef CONDENSA_QUERY_SERVER_H_
#define CONDENSA_QUERY_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/framed_server.h"
#include "query/engine.h"
#include "query/snapshot.h"
#include "runtime/admission.h"

namespace condensa::query {

struct QueryServerConfig {
  std::string host = "127.0.0.1";
  // 0 picks a free port (see QueryServer::port()).
  std::uint16_t port = 0;
  // Per-frame send timeout within a session.
  double io_timeout_ms = 5000.0;
  // Accept/recv poll granularity; bounds Stop() latency.
  double poll_ms = 100.0;
  // A session silent for this long is dropped back to accept.
  double idle_timeout_ms = 30000.0;
  // Concurrent session cap (see net::FramedServerConfig::max_sessions).
  std::size_t max_sessions = 8;
  // Requests executing concurrently across all sessions; beyond this a
  // request is shed in-band instead of queueing behind slow work.
  std::size_t max_inflight = 16;
  // Deadline applied to requests that carry none (0 = unbounded).
  double default_deadline_ms = 0.0;
  // Answers from snapshots older than this count as stale in
  // condensa_query_stale_served_total (0 = never stale). They are still
  // served — staleness is reported, not refused.
  double stale_after_ms = 0.0;
  QueryEngineOptions engine;

  Status Validate() const;
};

class QueryServer {
 public:
  // Binds and listens; `store` supplies the snapshots to answer from
  // (publishing into it while the server runs is the intended use).
  static StatusOr<std::unique_ptr<QueryServer>> Create(
      QueryServerConfig config, std::shared_ptr<SnapshotStore> store);

  // Serves on an already-bound listener. This is the crash-test seam:
  // a harness binds the listener in the parent, forks, and respawns a
  // killed server on the SAME port without a rebind race (the same
  // pattern as the fabric's WorkerServer::CreateWithListener).
  static StatusOr<std::unique_ptr<QueryServer>> CreateWithListener(
      QueryServerConfig config, std::shared_ptr<SnapshotStore> store,
      net::TcpListener listener);

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  std::uint16_t port() const { return server_->port(); }

  // Serves sessions until Stop(). Returns the first listener failure;
  // session and request errors are handled internally.
  Status Run();

  // Asks Run() to return at its next poll tick (thread-safe). Requests
  // arriving after this are shed as shutting-down.
  void Stop() { server_->Stop(); }

  const QueryEngine& engine() const { return engine_; }
  const runtime::AdmissionGate& admission() const { return gate_; }

 private:
  QueryServer(QueryServerConfig config,
              std::shared_ptr<SnapshotStore> store);

  net::SessionAction Dispatch(net::TcpConnection& conn,
                              const net::Frame& frame);
  Status HandleQuery(net::TcpConnection& conn, const std::string& payload);
  // Sheds one request in-band with kUnavailable, counting it under
  // condensa_query_rejected_total{reason}.
  void Shed(net::TcpConnection& conn, const char* reason,
            const std::string& detail);

  QueryServerConfig config_;
  std::shared_ptr<SnapshotStore> store_;
  QueryEngine engine_;
  runtime::AdmissionGate gate_;
  std::unique_ptr<net::FramedServer> server_;
};

}  // namespace condensa::query

#endif  // CONDENSA_QUERY_SERVER_H_
