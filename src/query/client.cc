#include "query/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/random.h"
#include "net/frame.h"
#include "net/wire.h"
#include "query/wire.h"

namespace condensa::query {

StatusOr<QueryClient> QueryClient::Connect(const std::string& host,
                                           std::uint16_t port,
                                           double timeout_ms) {
  CONDENSA_ASSIGN_OR_RETURN(net::TcpConnection conn,
                            net::TcpConnection::Connect(host, port,
                                                        timeout_ms));
  return QueryClient(std::move(conn), host, port, timeout_ms);
}

QueryClient::~QueryClient() { Close(); }

void QueryClient::Close() {
  if (conn_.ok()) {
    (void)conn_.SendFrame(net::FrameType::kGoodbye, "", timeout_ms_);
    conn_.Close();
  }
}

Status QueryClient::Redial(double timeout_ms) {
  conn_.Close();
  CONDENSA_ASSIGN_OR_RETURN(
      conn_, net::TcpConnection::Connect(host_, port_, timeout_ms));
  return OkStatus();
}

StatusOr<QueryResult> QueryClient::Execute(const Query& query,
                                           double timeout_ms) {
  if (!conn_.ok()) {
    return FailedPreconditionError("query client is closed");
  }
  Status sent = conn_.SendFrame(net::FrameType::kQuery, EncodeQuery(query),
                                timeout_ms);
  if (!sent.ok()) {
    conn_.Close();  // transport failure: no partial-frame state survives
    return sent;
  }
  StatusOr<net::Frame> frame = conn_.RecvFrame(timeout_ms);
  if (!frame.ok()) {
    conn_.Close();
    return frame.status();
  }
  if (frame->type == net::FrameType::kError) {
    CONDENSA_ASSIGN_OR_RETURN(net::ErrorMessage error,
                              net::DecodeError(frame->payload));
    return net::ErrorToStatus(error);
  }
  if (frame->type != net::FrameType::kQueryResult) {
    conn_.Close();  // protocol confusion: the stream cannot be trusted
    return DataLossError(std::string("expected QueryResult, got ") +
                         net::FrameTypeName(frame->type));
  }
  return DecodeQueryResult(frame->payload);
}

StatusOr<QueryResult> QueryClient::ExecuteWithRetry(
    const Query& query, const QueryRetryOptions& options,
    QueryRetryStats* stats) {
  const auto started = std::chrono::steady_clock::now();
  const bool bounded = options.deadline_ms > 0.0;
  auto remaining_ms = [&]() -> double {
    if (!bounded) {
      return 0.0;  // "no deadline" in Query::deadline_ms terms
    }
    const double elapsed = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - started)
                               .count();
    return options.deadline_ms - elapsed;
  };

  Rng rng(options.jitter_seed);
  QueryRetryStats local;
  Status last = OkStatus();
  const std::size_t max_attempts = std::max<std::size_t>(options.max_attempts,
                                                         1);
  for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    double budget = remaining_ms();
    if (bounded && budget <= 0.0) {
      break;  // the whole call's time is spent
    }
    if (!conn_.ok()) {
      // A previous attempt (or the caller) lost the transport; the
      // server may have restarted, so redial counts as part of the
      // attempt, under the same budget.
      Status redial = Redial(bounded ? budget : timeout_ms_);
      if (!redial.ok()) {
        last = redial;
        ++local.attempts;
      } else {
        ++local.redials;
      }
    }
    if (conn_.ok()) {
      ++local.attempts;
      Query attempt_query = query;
      if (bounded) {
        budget = remaining_ms();
        if (budget <= 0.0) {
          break;
        }
        // Forward what is left so the server sheds rather than answers
        // into the void.
        attempt_query.deadline_ms = budget;
      }
      const double io_timeout = bounded ? budget : timeout_ms_;
      StatusOr<QueryResult> result = Execute(attempt_query, io_timeout);
      if (result.ok()) {
        if (stats != nullptr) {
          *stats = local;
        }
        return result;
      }
      last = result.status();
      // In-band errors other than kUnavailable are deterministic —
      // retrying cannot change the answer. (conn_ still ok means the
      // error was in-band; transport errors closed it above.)
      if (conn_.ok() && !IsUnavailable(last)) {
        break;
      }
    }
    if (attempt < max_attempts) {
      double delay = runtime::BackoffDelayMs(options.backoff, attempt, rng);
      if (bounded) {
        delay = std::min(delay, remaining_ms());
        if (delay <= 0.0) {
          break;
        }
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay));
    }
  }
  if (stats != nullptr) {
    *stats = local;
  }
  if (last.ok()) {
    last = UnavailableError("retry deadline exhausted before any attempt");
  }
  return last;
}

}  // namespace condensa::query
