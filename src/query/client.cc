#include "query/client.h"

#include <utility>

#include "net/frame.h"
#include "net/wire.h"
#include "query/wire.h"

namespace condensa::query {

StatusOr<QueryClient> QueryClient::Connect(const std::string& host,
                                           std::uint16_t port,
                                           double timeout_ms) {
  CONDENSA_ASSIGN_OR_RETURN(net::TcpConnection conn,
                            net::TcpConnection::Connect(host, port,
                                                        timeout_ms));
  return QueryClient(std::move(conn));
}

QueryClient::~QueryClient() { Close(); }

void QueryClient::Close() {
  if (conn_.ok()) {
    (void)conn_.SendFrame(net::FrameType::kGoodbye, "", 1000.0);
    conn_.Close();
  }
}

StatusOr<QueryResult> QueryClient::Execute(const Query& query,
                                           double timeout_ms) {
  if (!conn_.ok()) {
    return FailedPreconditionError("query client is closed");
  }
  CONDENSA_RETURN_IF_ERROR(conn_.SendFrame(net::FrameType::kQuery,
                                           EncodeQuery(query), timeout_ms));
  CONDENSA_ASSIGN_OR_RETURN(net::Frame frame, conn_.RecvFrame(timeout_ms));
  if (frame.type == net::FrameType::kError) {
    CONDENSA_ASSIGN_OR_RETURN(net::ErrorMessage error,
                              net::DecodeError(frame.payload));
    return net::ErrorToStatus(error);
  }
  if (frame.type != net::FrameType::kQueryResult) {
    return DataLossError(std::string("expected QueryResult, got ") +
                         net::FrameTypeName(frame.type));
  }
  return DecodeQueryResult(frame.payload);
}

}  // namespace condensa::query
