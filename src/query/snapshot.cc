#include "query/snapshot.h"

#include <utility>

#include "obs/metrics.h"

namespace condensa::query {

std::size_t QuerySnapshot::TotalGroups() const {
  std::size_t total = 0;
  for (const LabeledGroups& pool : pools) {
    total += pool.groups.num_groups();
  }
  return total;
}

double QuerySnapshot::AgeMs(std::chrono::steady_clock::time_point now) const {
  if (published_at == std::chrono::steady_clock::time_point{}) {
    return 0.0;
  }
  const double ms =
      std::chrono::duration<double, std::milli>(now - published_at).count();
  return ms < 0.0 ? 0.0 : ms;
}

std::size_t QuerySnapshot::TotalRecords() const {
  std::size_t total = 0;
  for (const LabeledGroups& pool : pools) {
    total += pool.groups.TotalRecords();
  }
  return total;
}

QuerySnapshot SnapshotFromGroupSet(const core::CondensedGroupSet& groups) {
  QuerySnapshot snapshot;
  snapshot.dim = groups.dim();
  snapshot.records_seen = groups.TotalRecords();
  snapshot.pools.push_back(LabeledGroups{-1, groups});
  return snapshot;
}

QuerySnapshot SnapshotFromPools(const core::CondensedPools& pools) {
  QuerySnapshot snapshot;
  snapshot.dim = pools.CondensedDim();
  snapshot.pools.reserve(pools.pools.size());
  for (const core::CondensedPools::Pool& pool : pools.pools) {
    snapshot.records_seen += pool.groups.TotalRecords();
    snapshot.pools.push_back(LabeledGroups{pool.label, pool.groups});
  }
  return snapshot;
}

std::uint64_t SnapshotStore::Publish(QuerySnapshot snapshot) {
  std::shared_ptr<const QuerySnapshot> published;
  std::uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    version = next_version_++;
    snapshot.version = version;
    snapshot.published_at = std::chrono::steady_clock::now();
    published = std::make_shared<const QuerySnapshot>(std::move(snapshot));
    current_ = std::move(published);
  }
  obs::DefaultRegistry()
      .GetGauge("condensa_query_snapshot_version")
      .Set(static_cast<double>(version));
  return version;
}

std::shared_ptr<const QuerySnapshot> SnapshotStore::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

}  // namespace condensa::query
