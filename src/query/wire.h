// Wire payloads for the query protocol (FrameTypes kQuery/kQueryResult).
//
// Lives in src/query (not src/net) so the net layer stays ignorant of
// the query model; the codecs reuse net::WireWriter/WireReader and
// inherit their hardening contract — every length prefix is validated
// against the bytes present (and the per-frame caps from net/wire.h)
// BEFORE any allocation, decode failures are kDataLoss, and doubles
// travel as IEEE-754 bit patterns so results round-trip bit-exactly.

#ifndef CONDENSA_QUERY_WIRE_H_
#define CONDENSA_QUERY_WIRE_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "query/query.h"

namespace condensa::query {

std::string EncodeQuery(const Query& query);
StatusOr<Query> DecodeQuery(std::string_view payload);

std::string EncodeQueryResult(const QueryResult& result);
StatusOr<QueryResult> DecodeQueryResult(std::string_view payload);

}  // namespace condensa::query

#endif  // CONDENSA_QUERY_WIRE_H_
