#include "query/query.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace condensa::query {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kClassify: return "classify";
    case QueryKind::kAggregate: return "aggregate";
    case QueryKind::kRegenerate: return "regenerate";
  }
  return "unknown";
}

bool RangePredicate::Matches(const linalg::Vector& centroid) const {
  for (const Bound& bound : bounds) {
    const double value = centroid[bound.dim];
    if (value < bound.lo || value > bound.hi) {
      return false;
    }
  }
  return true;
}

Status RangePredicate::Validate(std::size_t dim) const {
  for (const Bound& bound : bounds) {
    if (bound.dim >= dim) {
      return InvalidArgumentError(
          "range bound names dimension " + std::to_string(bound.dim) +
          " but the data has " + std::to_string(dim) + " dimensions");
    }
    if (!(bound.lo <= bound.hi)) {
      return InvalidArgumentError(
          "range bound on dimension " + std::to_string(bound.dim) +
          " has lo > hi (or a NaN endpoint)");
    }
  }
  return OkStatus();
}

namespace {

Status ParseBound(const std::string& part, RangePredicate::Bound* bound) {
  std::istringstream in(part);
  std::string dim_text, lo_text, hi_text;
  if (!std::getline(in, dim_text, ':') || !std::getline(in, lo_text, ':') ||
      !std::getline(in, hi_text) || dim_text.empty() || lo_text.empty() ||
      hi_text.empty()) {
    return InvalidArgumentError("bad range bound '" + part +
                                "' (want dim:lo:hi)");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long dim = std::strtoull(dim_text.c_str(), &end, 10);
  if (errno != 0 || end == dim_text.c_str() || *end != '\0') {
    return InvalidArgumentError("bad range dimension '" + dim_text + "'");
  }
  const double lo = std::strtod(lo_text.c_str(), &end);
  if (end == lo_text.c_str() || *end != '\0') {
    return InvalidArgumentError("bad range lower bound '" + lo_text + "'");
  }
  const double hi = std::strtod(hi_text.c_str(), &end);
  if (end == hi_text.c_str() || *end != '\0') {
    return InvalidArgumentError("bad range upper bound '" + hi_text + "'");
  }
  bound->dim = static_cast<std::size_t>(dim);
  bound->lo = lo;
  bound->hi = hi;
  return OkStatus();
}

}  // namespace

StatusOr<RangePredicate> ParseRangeSpec(const std::string& spec) {
  RangePredicate range;
  if (spec.empty()) {
    return range;
  }
  // getline never yields the empty segment after a trailing comma, so
  // catch it here instead of silently accepting "0:1:2,".
  if (spec.back() == ',') {
    return InvalidArgumentError("trailing ',' in range spec '" + spec +
                                "'");
  }
  std::istringstream in(spec);
  std::string part;
  while (std::getline(in, part, ',')) {
    RangePredicate::Bound bound;
    CONDENSA_RETURN_IF_ERROR(ParseBound(part, &bound));
    range.bounds.push_back(bound);
  }
  return range;
}

}  // namespace condensa::query
