// Version-keyed LRU cache of per-group eigendecompositions.
//
// Regenerating records from a group needs its factorization C = P Λ Pᵀ
// (linalg/eigen) — by far the most expensive step of a regenerate query.
// The factorization depends only on the group's moment values, and
// GroupStatistics stamps every distinct moment value with a process-
// globally-unique version (GroupStatistics::version()), so that stamp is
// a complete cache key: a hit is guaranteed to be the factorization of
// exactly these moments, and any mutation (Add/Remove/Merge, a split's
// FromMoments, journal replay's FromRawSums, a set Absorb) produces a
// fresh stamp and therefore a miss. Stale-cache regeneration is
// structurally impossible — there is no invalidation protocol to get
// wrong.
//
// The cache is bounded (LRU eviction) and thread-safe; hit/miss/evict
// counts are exported via obs::DefaultRegistry() under
// condensa_query_eigen_cache_*.

#ifndef CONDENSA_QUERY_EIGEN_CACHE_H_
#define CONDENSA_QUERY_EIGEN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/status.h"
#include "core/group_statistics.h"
#include "linalg/eigen.h"

namespace condensa::query {

struct EigenCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;

  double HitRatio() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class EigenCache {
 public:
  // `capacity` is the maximum number of cached factorizations (>= 1).
  explicit EigenCache(std::size_t capacity);

  EigenCache(const EigenCache&) = delete;
  EigenCache& operator=(const EigenCache&) = delete;

  // Returns the factorization of `group`'s covariance, computing and
  // caching it on miss. The returned pointer stays valid after eviction
  // (shared ownership), so callers can hold it across further lookups.
  StatusOr<std::shared_ptr<const linalg::EigenDecomposition>> Get(
      const core::GroupStatistics& group);

  std::size_t capacity() const { return capacity_; }
  EigenCacheStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const linalg::EigenDecomposition> eigen;
    // Position in lru_ (front = most recently used).
    std::list<std::uint64_t>::iterator lru_position;
  };

  const std::size_t capacity_;

  mutable std::mutex mu_;
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace condensa::query

#endif  // CONDENSA_QUERY_EIGEN_CACHE_H_
