#include "query/eigen_cache.h"

#include <utility>

#include "common/check.h"
#include "obs/metrics.h"

namespace condensa::query {
namespace {

// Looked up per operation instead of cached as references so tests that
// Reset() the default registry cannot leave the cache holding dangling
// metric pointers; at query granularity the map lookup is noise.
void RecordLookup(bool hit) {
  obs::DefaultRegistry()
      .GetCounter(hit ? "condensa_query_eigen_cache_hits_total"
                      : "condensa_query_eigen_cache_misses_total")
      .Increment();
}

void PublishGauges(const EigenCacheStats& stats) {
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  registry.GetGauge("condensa_query_eigen_cache_size")
      .Set(static_cast<double>(stats.size));
  registry.GetGauge("condensa_query_eigen_cache_hit_ratio")
      .Set(stats.HitRatio());
}

}  // namespace

EigenCache::EigenCache(std::size_t capacity) : capacity_(capacity) {
  CONDENSA_CHECK_GT(capacity, 0u);
}

StatusOr<std::shared_ptr<const linalg::EigenDecomposition>> EigenCache::Get(
    const core::GroupStatistics& group) {
  const std::uint64_t key = group.version();
  std::lock_guard<std::mutex> lock(mu_);

  auto found = entries_.find(key);
  if (found != entries_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, found->second.lru_position);
    RecordLookup(/*hit=*/true);
    PublishGauges(EigenCacheStats{hits_, misses_, evictions_,
                                  entries_.size()});
    return found->second.eigen;
  }

  ++misses_;
  RecordLookup(/*hit=*/false);
  CONDENSA_ASSIGN_OR_RETURN(
      linalg::EigenDecomposition eigen,
      linalg::CovarianceEigenDecomposition(group.Covariance()));
  auto shared =
      std::make_shared<const linalg::EigenDecomposition>(std::move(eigen));

  while (entries_.size() >= capacity_) {
    const std::uint64_t oldest = lru_.back();
    lru_.pop_back();
    entries_.erase(oldest);
    ++evictions_;
    obs::DefaultRegistry()
        .GetCounter("condensa_query_eigen_cache_evictions_total")
        .Increment();
  }

  lru_.push_front(key);
  entries_.emplace(key, Entry{shared, lru_.begin()});
  PublishGauges(EigenCacheStats{hits_, misses_, evictions_, entries_.size()});
  return shared;
}

EigenCacheStats EigenCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return EigenCacheStats{hits_, misses_, evictions_, entries_.size()};
}

}  // namespace condensa::query
