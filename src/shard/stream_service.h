// Sharded durable streaming ingest: N independent StreamPipelines behind
// one Submit surface.
//
// ShardedStreamService is the streaming twin of ShardedCondenser: a
// Router assigns every arriving record to one of N shard Workers, each of
// which runs the full supervised runtime (bounded queue, quarantine,
// retry, circuit breaker) over its own crash-safe checkpoint directory
// <checkpoint_root>/shard-<i>. A crashed shard recovers alone on the next
// Start — the other shards' snapshots, journals, and spools are never
// touched. Finish drains every shard, verifies nothing, and gathers the
// shard-local aggregates into one global release structure through the
// Coordinator's exact-merge fold; the per-shard ledgers ride along so the
// caller can assert zero silent loss shard by shard.
//
// Throughput note (docs/scaling.md): dynamic condensation's per-record
// cost grows with the number of live groups G, so splitting one stream
// across N shards cuts each shard's G by ~N and speeds up ingest even on
// a single core. The gather step costs O(total groups) once at Finish.

#ifndef CONDENSA_SHARD_STREAM_SERVICE_H_
#define CONDENSA_SHARD_STREAM_SERVICE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/condensed_group_set.h"
#include "core/split.h"
#include "linalg/vector.h"
#include "runtime/pipeline.h"
#include "shard/coordinator.h"
#include "shard/router.h"
#include "shard/worker.h"

namespace condensa::shard {

struct ShardedStreamConfig {
  // Shard count N (>= 1) and how records map to shards.
  std::size_t num_shards = 1;
  ShardPolicy policy = ShardPolicy::kHash;

  // Record dimension (>= 1) and indistinguishability level k (>= 2, the
  // streaming runtime's floor).
  std::size_t dim = 0;
  std::size_t group_size = 10;
  core::SplitRule split_rule = core::SplitRule::kMomentConsistent;

  // Required. Shard i checkpoints under <checkpoint_root>/shard-<i>.
  std::string checkpoint_root;
  std::size_t snapshot_interval = 1024;
  bool sync_every_append = true;
  std::size_t queue_capacity = 1024;
  std::size_t batch_size = 32;

  // Root seed; per-shard pipeline seeds are derived via Rng::Split in
  // shard order, so a fixed (seed, num_shards) replays exactly.
  std::uint64_t seed = 42;

  // Anonymization backend id, resolved through backend::Registry at
  // Start; stamped into every shard's checkpoints and the gathered set.
  std::string backend = core::CondensedGroupSet::kDefaultBackendId;

  Status Validate() const;
};

struct ShardedStreamResult {
  core::CondensedGroupSet groups{0, 0};
  GatherReport gather;
  // One final ledger per shard, in shard order.
  std::vector<runtime::StreamPipelineStats> shard_stats;

  // True iff every shard's zero-silent-loss ledger balances.
  bool Balanced() const;
  // Sum of records accepted / applied across shards.
  std::size_t TotalAccepted() const;
  std::size_t TotalApplied() const;
};

class ShardedStreamService {
 public:
  // Validates the config and starts (or crash-recovers) all N shard
  // pipelines. Any shard failing to start fails the whole service.
  static StatusOr<std::unique_ptr<ShardedStreamService>> Start(
      ShardedStreamConfig config);

  ShardedStreamService(const ShardedStreamService&) = delete;
  ShardedStreamService& operator=(const ShardedStreamService&) = delete;

  const ShardedStreamConfig& config() const { return config_; }
  std::size_t num_shards() const { return config_.num_shards; }

  // Shard i's checkpoint directory.
  const std::string& checkpoint_dir(std::size_t shard) const;

  // Routes one record to its shard pipeline. Single-producer under
  // kRoundRobin (see Router::Route); kHash tolerates any producer count.
  Status Submit(const linalg::Vector& record);

  std::size_t records_submitted() const { return submitted_; }

  // Live per-shard ledgers, in shard order.
  std::vector<runtime::StreamPipelineStats> stats() const;

  // Drains and checkpoints every shard, then gathers the shard-local
  // aggregates into one global k-floor-satisfying set. Callable once.
  StatusOr<ShardedStreamResult> Finish();

 private:
  explicit ShardedStreamService(ShardedStreamConfig config);

  ShardedStreamConfig config_;
  Router router_;
  std::vector<std::unique_ptr<Worker>> workers_;
  // Per-shard substreams, split in shard order at Start (stream-mode
  // Finish consumes no randomness; kept so batch-mode reuse stays easy).
  std::vector<Rng> streams_;
  std::size_t submitted_ = 0;
  bool finished_ = false;
};

}  // namespace condensa::shard

#endif  // CONDENSA_SHARD_STREAM_SERVICE_H_
