#include "shard/coordinator.h"

#include <cstdio>
#include <limits>
#include <utility>

#include "common/check.h"
#include "core/centroid_index.h"
#include "core/group_statistics.h"
#include "obs/metrics.h"
#include "obs/timing.h"
#include "obs/trace.h"

namespace condensa::shard {
namespace {

struct CoordinatorMetrics {
  obs::Counter& gathers = obs::DefaultRegistry().GetCounter(
      "condensa_shard_gather_total");
  obs::Counter& merges = obs::DefaultRegistry().GetCounter(
      "condensa_shard_gather_merges_total");
  obs::Counter& splits = obs::DefaultRegistry().GetCounter(
      "condensa_shard_gather_splits_total");
  obs::Histogram& seconds = obs::DefaultRegistry().GetHistogram(
      "condensa_shard_gather_seconds");

  static CoordinatorMetrics& Get() {
    static CoordinatorMetrics metrics;
    return metrics;
  }
};

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

// Lowest-id group below the k-floor, or kNone.
std::size_t FindUndersized(const core::CondensedGroupSet& groups,
                           std::size_t k) {
  for (std::size_t i = 0; i < groups.num_groups(); ++i) {
    if (groups.group(i).count() < k) return i;
  }
  return kNone;
}

}  // namespace

std::string GatherReport::ToString() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "shards=%zu groups_in=%zu (undersized=%zu) records=%zu "
                "merges=%zu splits=%zu groups_out=%zu min_size=%zu",
                shards_in, groups_in, undersized_in, records_in, merges,
                splits, groups_out, min_group_size_out);
  return buffer;
}

Coordinator::Coordinator(CoordinatorOptions options) : options_(options) {
  CONDENSA_CHECK_GE(options_.group_size, 1u);
}

StatusOr<core::CondensedGroupSet> Coordinator::Gather(
    std::vector<core::CondensedGroupSet> shard_sets,
    GatherReport* report) const {
  CoordinatorMetrics& metrics = CoordinatorMetrics::Get();
  metrics.gathers.Increment();
  obs::ScopedTimer timer(&metrics.seconds);
  obs::TraceSpan span("shard.gather");

  GatherReport local;
  local.shards_in = shard_sets.size();

  // Dimension comes from the first non-empty shard; all must agree.
  std::size_t dim = 0;
  bool have_dim = false;
  std::size_t total_groups = 0;
  for (const core::CondensedGroupSet& set : shard_sets) {
    if (set.empty()) continue;
    if (!have_dim) {
      dim = set.dim();
      have_dim = true;
    } else if (set.dim() != dim) {
      return InvalidArgumentError(
          "shard group sets disagree on record dimension");
    }
    total_groups += set.num_groups();
  }

  // All shards must have condensed under the same backend — folding
  // groups built by different strategies into one release would void
  // both backends' guarantees.
  const std::size_t k = options_.group_size;
  core::CondensedGroupSet global(have_dim ? dim : 0, k);
  if (!shard_sets.empty()) {
    const core::CondensedGroupSet& first = shard_sets.front();
    for (const core::CondensedGroupSet& set : shard_sets) {
      if (set.backend_id() != first.backend_id()) {
        return InvalidArgumentError(
            "shards disagree on anonymization backend: '" +
            first.backend_id() + "' vs '" + set.backend_id() + "'");
      }
    }
    global.SetBackend(first.backend_id(), first.backend_version());
  }
  global.ReserveGroups(total_groups);
  for (core::CondensedGroupSet& set : shard_sets) {
    if (set.empty()) continue;
    for (const core::GroupStatistics& group : set.groups()) {
      local.records_in += group.count();
      if (group.count() < k) ++local.undersized_in;
    }
    global.Absorb(std::move(set));
  }
  local.groups_in = total_groups;

  // Fold loop: repair the k-floor with exact merges, splitting any fold
  // result that reaches 2k. Each iteration retires one undersized group
  // (split halves are always >= k), so the loop terminates.
  {
    obs::TraceSpan fold_span("shard.gather.fold");
    core::CentroidIndex index;
    while (global.num_groups() > 1) {
      const std::size_t victim = FindUndersized(global, k);
      if (victim == kNone) break;
      core::GroupStatistics undersized =
          std::move(global.mutable_group(victim));
      global.RemoveGroup(victim);
      index.Invalidate();
      const std::size_t target =
          index.NearestGroup(global, undersized.Centroid());
      global.mutable_group(target).Merge(undersized);
      index.NoteGroupUpdated(target);
      ++local.merges;
      metrics.merges.Increment();

      core::GroupStatistics& merged = global.mutable_group(target);
      if (merged.count() >= 2 * k) {
        CONDENSA_ASSIGN_OR_RETURN(
            core::SplitResult split,
            core::SplitGroupStatistics(merged, options_.split_rule));
        global.RemoveGroup(target);
        global.AddGroup(std::move(split.lower));
        global.AddGroup(std::move(split.upper));
        index.Invalidate();
        ++local.splits;
        metrics.splits.Increment();
      }
    }
  }

  const core::PrivacySummary summary = global.Summary();
  local.groups_out = summary.num_groups;
  local.min_group_size_out = summary.min_group_size;
  CONDENSA_DCHECK_EQ(global.TotalRecords(), local.records_in);
  if (report != nullptr) *report = local;
  return global;
}

}  // namespace condensa::shard
