#include "shard/stream_service.h"

#include <utility>

#include "backend/registry.h"
#include "common/check.h"
#include "obs/trace.h"

namespace condensa::shard {

Status ShardedStreamConfig::Validate() const {
  if (num_shards == 0) {
    return InvalidArgumentError("num_shards must be >= 1");
  }
  if (dim == 0) {
    return InvalidArgumentError("dim must be >= 1");
  }
  if (group_size < 2) {
    return InvalidArgumentError(
        "sharded streaming requires group_size >= 2 (streaming runtime "
        "floor)");
  }
  if (checkpoint_root.empty()) {
    return InvalidArgumentError("checkpoint_root is required");
  }
  if (backend.empty()) {
    return InvalidArgumentError("backend id must be non-empty");
  }
  return OkStatus();
}

bool ShardedStreamResult::Balanced() const {
  for (const runtime::StreamPipelineStats& stats : shard_stats) {
    if (!stats.Balanced()) return false;
  }
  return true;
}

std::size_t ShardedStreamResult::TotalAccepted() const {
  std::size_t total = 0;
  for (const runtime::StreamPipelineStats& stats : shard_stats) {
    total += stats.accepted;
  }
  return total;
}

std::size_t ShardedStreamResult::TotalApplied() const {
  std::size_t total = 0;
  for (const runtime::StreamPipelineStats& stats : shard_stats) {
    total += stats.applied;
  }
  return total;
}

ShardedStreamService::ShardedStreamService(ShardedStreamConfig config)
    : config_(std::move(config)),
      router_({.num_shards = config_.num_shards, .policy = config_.policy}) {}

StatusOr<std::unique_ptr<ShardedStreamService>> ShardedStreamService::Start(
    ShardedStreamConfig config) {
  CONDENSA_RETURN_IF_ERROR(config.Validate());
  std::unique_ptr<ShardedStreamService> service(
      new ShardedStreamService(std::move(config)));
  const ShardedStreamConfig& cfg = service->config_;

  CONDENSA_ASSIGN_OR_RETURN(
      const backend::AnonymizationBackend* anonymization_backend,
      backend::Registry::Global().Get(cfg.backend));

  Rng root(cfg.seed);
  service->streams_ = Router::SplitStreams(root, cfg.num_shards);

  service->workers_.reserve(cfg.num_shards);
  for (std::size_t shard = 0; shard < cfg.num_shards; ++shard) {
    WorkerOptions options;
    options.backend = anonymization_backend->info().id;
    options.backend_version = anonymization_backend->info().version;
    options.construction = anonymization_backend->ConstructionHook();
    options.mode = WorkerMode::kDurableStream;
    options.group_size = cfg.group_size;
    options.split_rule = cfg.split_rule;
    options.checkpoint_root = cfg.checkpoint_root;
    options.snapshot_interval = cfg.snapshot_interval;
    options.sync_every_append = cfg.sync_every_append;
    options.queue_capacity = cfg.queue_capacity;
    options.batch_size = cfg.batch_size;
    options.seed = service->streams_[shard].NextUint64();
    CONDENSA_ASSIGN_OR_RETURN(std::unique_ptr<Worker> worker,
                              Worker::Start(shard, cfg.dim, options));
    service->workers_.push_back(std::move(worker));
  }
  return service;
}

const std::string& ShardedStreamService::checkpoint_dir(
    std::size_t shard) const {
  CONDENSA_CHECK_LT(shard, workers_.size());
  return workers_[shard]->checkpoint_dir();
}

Status ShardedStreamService::Submit(const linalg::Vector& record) {
  if (finished_) {
    return FailedPreconditionError("Submit after Finish");
  }
  const std::size_t shard = router_.Route(record);
  CONDENSA_RETURN_IF_ERROR(workers_[shard]->Submit(record));
  ++submitted_;
  return OkStatus();
}

std::vector<runtime::StreamPipelineStats> ShardedStreamService::stats() const {
  std::vector<runtime::StreamPipelineStats> all;
  all.reserve(workers_.size());
  for (const std::unique_ptr<Worker>& worker : workers_) {
    std::optional<runtime::StreamPipelineStats> stats =
        worker->live_stream_stats();
    CONDENSA_CHECK(stats.has_value());
    all.push_back(*stats);
  }
  return all;
}

StatusOr<ShardedStreamResult> ShardedStreamService::Finish() {
  if (finished_) {
    return FailedPreconditionError("Finish was already called");
  }
  finished_ = true;
  obs::TraceSpan span("shard.stream.finish");

  ShardedStreamResult result;
  std::vector<core::CondensedGroupSet> shard_sets;
  shard_sets.reserve(workers_.size());
  for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
    CONDENSA_ASSIGN_OR_RETURN(core::CondensedGroupSet set,
                              workers_[shard]->Finish(streams_[shard]));
    const std::optional<runtime::StreamPipelineStats>& stats =
        workers_[shard]->stream_stats();
    CONDENSA_CHECK(stats.has_value());
    result.shard_stats.push_back(*stats);
    shard_sets.push_back(std::move(set));
  }

  Coordinator coordinator(
      {.group_size = config_.group_size, .split_rule = config_.split_rule});
  CONDENSA_ASSIGN_OR_RETURN(
      result.groups,
      coordinator.Gather(std::move(shard_sets), &result.gather));
  return result;
}

}  // namespace condensa::shard
