#include "shard/worker.h"

#include <string>
#include <utility>

#include "core/group_statistics.h"
#include "core/static_condenser.h"
#include "obs/metrics.h"

namespace condensa::shard {
namespace {

// Per-shard series carry the stable worker identity alongside the shard
// index, so a restarted or rejoined worker resumes its series instead of
// minting a duplicate per-incarnation one.
obs::Counter& ShardRecordsCounter(std::size_t shard_id,
                                  const std::string& worker_id) {
  return obs::DefaultRegistry().GetCounter(
      "condensa_shard_records_total",
      {{"shard", std::to_string(shard_id)}, {"worker", worker_id}});
}

obs::Gauge& ShardGroupsGauge(std::size_t shard_id,
                             const std::string& worker_id) {
  return obs::DefaultRegistry().GetGauge(
      "condensa_shard_groups",
      {{"shard", std::to_string(shard_id)}, {"worker", worker_id}});
}

}  // namespace

Worker::Worker(std::size_t shard_id, std::size_t dim, WorkerOptions options)
    : shard_id_(shard_id), dim_(dim), options_(std::move(options)) {}

StatusOr<std::unique_ptr<Worker>> Worker::Start(
    std::size_t shard_id, std::size_t dim, const WorkerOptions& options) {
  if (dim == 0) {
    return InvalidArgumentError("worker dimension must be >= 1");
  }
  if (options.group_size == 0) {
    return InvalidArgumentError("group_size must be >= 1");
  }
  if (options.backend.empty() || options.backend_version < 1) {
    return InvalidArgumentError("worker backend id/version must be set");
  }
  if (options.mode == WorkerMode::kStaticBatch &&
      options.backend != core::CondensedGroupSet::kDefaultBackendId &&
      !options.construction) {
    return InvalidArgumentError(
        "backend '" + options.backend +
        "' needs a group-construction hook in batch mode; resolve the id "
        "through backend::Registry");
  }
  std::unique_ptr<Worker> worker(new Worker(shard_id, dim, options));
  worker->worker_id_ = options.worker_id.empty()
                           ? "w" + std::to_string(shard_id)
                           : options.worker_id;
  if (options.mode == WorkerMode::kDurableStream) {
    if (options.checkpoint_root.empty()) {
      return InvalidArgumentError(
          "kDurableStream requires a checkpoint_root");
    }
    worker->checkpoint_dir_ =
        options.checkpoint_root + "/shard-" + std::to_string(shard_id);
    runtime::StreamPipelineConfig config;
    config.dim = dim;
    config.group_size = options.group_size;
    config.split_rule = options.split_rule;
    config.checkpoint_dir = worker->checkpoint_dir_;
    config.snapshot_interval = options.snapshot_interval;
    config.sync_every_append = options.sync_every_append;
    config.queue_capacity = options.queue_capacity;
    config.batch_size = options.batch_size;
    config.seed = options.seed;
    config.backend = options.backend;
    config.backend_version = options.backend_version;
    CONDENSA_ASSIGN_OR_RETURN(worker->pipeline_,
                              runtime::StreamPipeline::Start(config));
  }
  return worker;
}

Status Worker::Submit(const linalg::Vector& record) {
  if (finished_) {
    return FailedPreconditionError("Submit after Finish");
  }
  if (pipeline_ != nullptr) {
    CONDENSA_RETURN_IF_ERROR(pipeline_->Submit(record));
  } else {
    if (record.dim() != dim_) {
      return InvalidArgumentError("record dimension mismatch");
    }
    buffer_.push_back(record);
  }
  ++submitted_;
  ShardRecordsCounter(shard_id_, worker_id_).Increment();
  return OkStatus();
}

Status Worker::Flush(double timeout_ms) {
  if (finished_) {
    return FailedPreconditionError("Flush after Finish");
  }
  if (pipeline_ == nullptr) {
    return OkStatus();
  }
  return pipeline_->Flush(timeout_ms);
}

std::size_t Worker::durable_total() const {
  if (pipeline_ == nullptr) {
    return buffer_.size();
  }
  const runtime::StreamPipelineStats live = pipeline_->stats();
  return pipeline_->records_seen() + live.quarantined + live.spool_remaining;
}

StatusOr<core::CondensedGroupSet> Worker::Finish(Rng& rng) {
  if (finished_) {
    return FailedPreconditionError("Finish was already called");
  }
  finished_ = true;

  core::CondensedGroupSet groups(dim_, options_.group_size);
  groups.SetBackend(options_.backend, options_.backend_version);
  if (pipeline_ != nullptr) {
    CONDENSA_ASSIGN_OR_RETURN(stream_stats_, pipeline_->Finish());
    CONDENSA_ASSIGN_OR_RETURN(groups, pipeline_->TakeGroups());
  } else if (buffer_.size() >= options_.group_size) {
    if (options_.construction) {
      CONDENSA_ASSIGN_OR_RETURN(
          groups, options_.construction(buffer_, options_.group_size, rng));
      groups.SetBackend(options_.backend, options_.backend_version);
    } else {
      core::StaticCondenser condenser(
          {.group_size = options_.group_size});
      CONDENSA_ASSIGN_OR_RETURN(groups, condenser.Condense(buffer_, rng));
      groups.SetBackend(options_.backend, options_.backend_version);
    }
    buffer_.clear();
  } else if (!buffer_.empty()) {
    // Partition below the k-floor: emit the remainder as one sub-k group
    // for the coordinator to fold globally — dropping it would break
    // record conservation.
    core::GroupStatistics remainder(dim_);
    for (const linalg::Vector& record : buffer_) {
      remainder.Add(record);
    }
    groups.AddGroup(std::move(remainder));
    buffer_.clear();
  }
  ShardGroupsGauge(shard_id_, worker_id_).Set(
      static_cast<double>(groups.num_groups()));
  return groups;
}

}  // namespace condensa::shard
