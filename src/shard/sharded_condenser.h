// Scatter/gather condensation facade: Router + N Workers + Coordinator.
//
// Condenses a point set by deterministically partitioning it across N
// shards, condensing each shard independently (optionally in parallel,
// optionally durable), and exact-merging the shard-local aggregates into
// one global release structure.
//
// Determinism contract (tested; see docs/scaling.md): for a fixed
// (rng seed, num_shards, policy, mode) the output group set is
// bit-identical across runs and across num_threads values — the router
// is a pure function of (record, index), the per-shard Rng substreams
// are split in shard order on the calling thread, workers write into
// pre-allocated slots, and the gather is a deterministic fold.
// Changing num_shards changes the partition and therefore the grouping;
// the *moment statistics* each group carries remain exact either way.

#ifndef CONDENSA_SHARD_SHARDED_CONDENSER_H_
#define CONDENSA_SHARD_SHARDED_CONDENSER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/condensed_group_set.h"
#include "core/split.h"
#include "linalg/vector.h"
#include "shard/coordinator.h"
#include "shard/router.h"
#include "shard/worker.h"

namespace condensa::shard {

struct ShardedCondenserConfig {
  // Shard count N. Must be >= 1.
  std::size_t num_shards = 1;
  ShardPolicy policy = ShardPolicy::kHash;
  WorkerMode mode = WorkerMode::kStaticBatch;
  // The indistinguishability level k. Must be >= 1 (>= 2 for
  // kDurableStream, matching the streaming runtime's floor).
  std::size_t group_size = 10;
  core::SplitRule split_rule = core::SplitRule::kMomentConsistent;
  // kDurableStream: parent of the per-shard checkpoint directories.
  std::string checkpoint_root;
  std::size_t snapshot_interval = 1024;
  bool sync_every_append = true;
  // Worker threads for the per-shard condense fan-out; 0 = one per
  // hardware thread. Output is identical at any thread count.
  std::size_t num_threads = 0;
  // Base seed for per-shard pipeline jitter (kDurableStream).
  std::uint64_t seed = 42;

  // Anonymization backend id, resolved through backend::Registry at
  // Condense time; every shard condenses under it and the gathered
  // release carries its stamp. Unknown ids fail with NotFound listing
  // the available backends.
  std::string backend = core::CondensedGroupSet::kDefaultBackendId;

  Status Validate() const;
};

// Per-shard accounting from one Condense call.
struct ShardReport {
  std::size_t shard_id = 0;
  std::size_t records = 0;
  std::size_t groups = 0;
  std::size_t min_group_size = 0;
};

struct ShardedCondenseResult {
  core::CondensedGroupSet groups{0, 0};
  GatherReport gather;
  std::vector<ShardReport> shards;
};

class ShardedCondenser {
 public:
  // Stores the config as-is; validation happens on Condense so a bad
  // config yields a Status, never an abort.
  explicit ShardedCondenser(ShardedCondenserConfig config);

  const ShardedCondenserConfig& config() const { return config_; }

  // Scatter -> condense-per-shard -> gather. Fails on invalid config,
  // empty input, or mixed record dimensions; propagates worker and
  // coordinator failures. The result satisfies the global k-floor
  // whenever at least k records were supplied.
  StatusOr<ShardedCondenseResult> Condense(
      const std::vector<linalg::Vector>& points, Rng& rng) const;

 private:
  ShardedCondenserConfig config_;
};

}  // namespace condensa::shard

#endif  // CONDENSA_SHARD_SHARDED_CONDENSER_H_
