// Gather half of scatter/gather condensation: exact merge of shard-local
// group sets into one global release structure.
//
// Because a condensed group is fully described by its additive moments
// (Fs, Sc, n) — the paper's Observations 1-2 — concatenating shard-local
// group sets IS the exact global condensation of the union of the shard
// inputs under each shard's own grouping. The gather step therefore
// introduces zero statistical approximation for groups that already
// satisfy the k-floor; the only approximate operation is
// SplitGroupStatistics (the paper's own Figure 3 machinery), applied when
// folding pushes a group past 2k.
//
// Invariants Gather establishes, in order:
//   1. record conservation — the output represents exactly the sum of the
//      input sets' records (merges are exact, splits conserve n and Fs);
//   2. global k-floor — every sub-k group (shard warm-up remainders,
//      shards that saw fewer than k records) is folded into the group
//      with the nearest centroid, located through CentroidIndex exactly
//      as the dynamic condenser does;
//   3. size ceiling — any fold result at or past 2k is split, keeping
//      groups inside the dynamic regime's [k, 2k) band.
// The whole pass is deterministic: shards are concatenated in shard
// order, the lowest-id undersized group is folded first, and
// CentroidIndex answers bit-identically to the linear scan — so a fixed
// (seed, shard count) reproduces a bit-identical global structure.

#ifndef CONDENSA_SHARD_COORDINATOR_H_
#define CONDENSA_SHARD_COORDINATOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/condensed_group_set.h"
#include "core/split.h"

namespace condensa::shard {

struct CoordinatorOptions {
  // The global indistinguishability level k. Must be >= 1.
  std::size_t group_size = 10;
  // Split formula for oversize fold results (see core/split.h).
  core::SplitRule split_rule = core::SplitRule::kMomentConsistent;
};

// Accounting for one Gather call.
struct GatherReport {
  std::size_t shards_in = 0;
  std::size_t groups_in = 0;
  // Input groups below the k-floor (what the fold loop had to repair).
  std::size_t undersized_in = 0;
  std::size_t records_in = 0;
  // Fold merges performed and oversize splits of fold results.
  std::size_t merges = 0;
  std::size_t splits = 0;
  std::size_t groups_out = 0;
  std::size_t min_group_size_out = 0;

  std::string ToString() const;
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions options);

  const CoordinatorOptions& options() const { return options_; }

  // Merges the shard-local sets (consumed) into one global set built for
  // options().group_size. Empty shard sets are skipped; if every set is
  // empty the result is an empty set of dimension 0. Fails on dimension
  // mismatch between non-empty sets and propagates eigensolver failures
  // from oversize splits. On success the output satisfies the global
  // k-floor except in the one unavoidable case: fewer than k records
  // exist in total, which leaves a single undersized group rather than
  // dropping records.
  StatusOr<core::CondensedGroupSet> Gather(
      std::vector<core::CondensedGroupSet> shard_sets,
      GatherReport* report = nullptr) const;

 private:
  CoordinatorOptions options_;
};

}  // namespace condensa::shard

#endif  // CONDENSA_SHARD_COORDINATOR_H_
