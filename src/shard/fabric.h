// The coordinator side of the networked shard fabric.
//
// FabricService is the multi-process sibling of ShardedStreamService:
// the same scatter (Router), the same per-shard seed derivation, the
// same gather (Coordinator) — but each shard's Worker lives in its own
// process behind the wire protocol (shard/worker_server.h). Because the
// routing, seeds, per-shard ingest order, and gather fold are all
// byte-identical to the in-process service, a clean fabric run releases
// a BIT-IDENTICAL group set for the same (seed, shard count, policy).
//
// Membership and failure handling (the point of the fabric):
//
//   register/handshake   The coordinator dials every endpoint at Start
//                        and exchanges Hello/HelloAck. The HelloAck's
//                        durable_total becomes the peer's custody
//                        baseline.
//   liveness             A heartbeat thread probes idle peers every
//                        heartbeat_interval_ms; a peer silent past
//                        heartbeat_timeout_ms enters reconnect.
//   reconnect            Redials with runtime::retry exponential
//                        backoff. The re-handshake's durable_total tells
//                        the coordinator exactly which prefix of its
//                        unacknowledged outbox the worker already owns
//                        durably — that prefix is trimmed, the rest is
//                        re-sent. Delivery is exactly-once across any
//                        number of connection drops.
//   handoff on death     When reconnecting fails, the peer is declared
//                        dead and its unacknowledged records are
//                        re-routed among the surviving members
//                        (Router::ShardAmong — deterministic in the
//                        member set). Acked records are NOT re-routed:
//                        they are durable in the dead worker's
//                        checkpoint dir and come back when it rejoins
//                        (or via local takeover). Re-routed in-flight
//                        records can duplicate if the dead worker had
//                        absorbed them before dying; the rejoin
//                        handshake detects exactly how many
//                        (duplicates_detected), so the loss ledger
//                        stays exact: accepted = submitted + duplicates.
//   rejoin               Dead peers are redialed in the background; a
//                        revived worker resumes from its own checkpoint.
//   local fallback       With local_fallback_root set (same filesystem),
//                        a peer that cannot be revived is taken over by
//                        an in-process Worker on the same checkpoint
//                        dir — recovering its durable state exactly. On
//                        total network failure every shard degrades this
//                        way and the run completes in-process.
//
// Thread model: Submit/Finish are single-producer (like the in-process
// service's bit-identity contract); one background thread handles
// heartbeats and revival. Per-peer state is mutex-protected; the
// heartbeat thread only try_locks, so it never delays the ingest path.

#ifndef CONDENSA_SHARD_FABRIC_H_
#define CONDENSA_SHARD_FABRIC_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/condensed_group_set.h"
#include "core/split.h"
#include "linalg/vector.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/pipeline.h"
#include "runtime/retry.h"
#include "shard/coordinator.h"
#include "shard/router.h"
#include "shard/worker.h"

namespace condensa::shard {

struct FabricEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct FabricConfig {
  // workers[i] serves shard i; the shard count is workers.size().
  std::vector<FabricEndpoint> workers;

  // Condensation parameters — must match the workers' expectations and,
  // for bit-identity, the in-process run being mirrored.
  std::size_t dim = 0;
  std::size_t group_size = 10;
  core::SplitRule split_rule = core::SplitRule::kMomentConsistent;
  ShardPolicy policy = ShardPolicy::kHash;
  std::uint64_t seed = 42;

  // Anonymization backend id, resolved through backend::Registry at
  // Start and carried to every worker in the Hello; a worker that
  // cannot resolve it rejects the session.
  std::string backend = core::CondensedGroupSet::kDefaultBackendId;

  // Worker tuning forwarded in the Hello (same fields as
  // ShardedStreamConfig so the two services stay interchangeable).
  std::size_t snapshot_interval = 1024;
  bool sync_every_append = true;
  std::size_t queue_capacity = 1024;
  std::size_t batch_size = 32;

  // Records per Submit frame. Larger batches amortize the per-RPC flush
  // barrier; smaller ones shrink the re-send window after a crash.
  std::size_t wire_batch = 64;

  double connect_timeout_ms = 2000.0;
  double io_timeout_ms = 5000.0;
  // The SubmitAck wait: bounded by the worker's durable flush, not by
  // per-frame I/O, so it sits above the worker's flush_timeout_ms.
  double ack_timeout_ms = 35000.0;
  // Finish condenses and checkpoints on the worker; allow it time.
  double finish_timeout_ms = 60000.0;
  double heartbeat_interval_ms = 200.0;
  // A peer silent this long is put through reconnect, then declared
  // dead.
  double heartbeat_timeout_ms = 1500.0;

  // Backoff schedule between redial attempts (max_attempts bounds each
  // reconnect incident).
  runtime::RetryPolicy reconnect;

  // When non-empty: checkpoint root for in-process takeover of
  // unreachable peers. Point it at the same directory tree the workers
  // use (shared filesystem) so takeover recovers their durable state.
  // Empty disables takeover — an unreachable peer at Finish is an error.
  std::string local_fallback_root;

  Status Validate() const;
};

// Counters describing the fabric's life, snapshot via report().
struct FabricReport {
  std::size_t connects = 0;
  std::size_t reconnects = 0;
  std::size_t heartbeats = 0;
  std::size_t heartbeat_misses = 0;
  // Peers declared dead (each one is a handoff incident).
  std::size_t handoffs = 0;
  // Records re-routed off a dead peer to survivors.
  std::size_t rerouted_records = 0;
  // Re-routed records later found to have also been durably absorbed by
  // the dead worker (counted at rejoin/takeover via durable_total).
  std::size_t duplicates_detected = 0;
  std::size_t rejoins = 0;
  std::size_t local_takeovers = 0;

  std::string ToString() const;
};

struct FabricResult {
  core::CondensedGroupSet groups{0, 0};
  GatherReport gather;
  // Per-shard final ledgers, in shard order.
  std::vector<runtime::StreamPipelineStats> shard_stats;
  FabricReport report;

  // Zero-silent-loss across the fabric: every shard ledger balances.
  bool Balanced() const;
  std::size_t TotalAccepted() const;
  std::size_t TotalApplied() const;
};

class FabricService {
 public:
  // Connects and handshakes every worker, starts the heartbeat thread.
  // Endpoints that cannot be dialed at Start are handled like any other
  // death: re-routed around, revived in the background, or (with
  // local_fallback_root) taken over — Start only fails outright when no
  // shard can accept records at all.
  static StatusOr<std::unique_ptr<FabricService>> Start(FabricConfig config);

  FabricService(const FabricService&) = delete;
  FabricService& operator=(const FabricService&) = delete;

  // Joins the heartbeat thread; closes connections (without Finish the
  // workers keep their durable state for the next run).
  ~FabricService();

  std::size_t num_shards() const { return config_.workers.size(); }

  // Routes and (batched) delivers one record; single producer.
  Status Submit(const linalg::Vector& record);
  std::size_t records_submitted() const { return submitted_; }

  // Flushes every outbox, runs Finish on every worker (over the wire,
  // or locally for taken-over shards), gathers in shard order, and
  // returns the global release. Callable once.
  StatusOr<FabricResult> Finish();

  FabricReport report() const;

 private:
  enum class PeerState { kConnected, kDead, kLocal };

  struct Peer {
    std::mutex mu;
    PeerState state = PeerState::kDead;
    net::TcpConnection conn;
    std::string worker_id;
    // True once the first successful handshake fixed base_durable.
    bool baselined = false;
    // durable_total at the first handshake: state from previous runs.
    std::uint64_t base_durable = 0;
    // Records of THIS run known durably delivered to the worker.
    std::uint64_t acked = 0;
    // acked at the moment the peer was last declared dead (duplicate
    // detection baseline).
    std::uint64_t acked_at_death = 0;
    bool handed_off = false;
    // Accepted-but-unacknowledged records with their arrival indices.
    std::deque<std::pair<std::size_t, linalg::Vector>> outbox;
    double last_ok_ms = 0.0;
    // Consecutive failed revival attempts (drives the backoff schedule).
    std::size_t redial_failures = 0;
    double next_redial_ms = 0.0;
    // In-process takeover worker (state == kLocal).
    std::unique_ptr<Worker> local;
  };

  explicit FabricService(FabricConfig config);

  // --- connection management (peer->mu held) ---
  Status HandshakeLocked(std::size_t shard, Peer& peer);
  // Reconnect with backoff; declares the peer dead on exhaustion.
  void ReviveOrDeclareDeadLocked(std::size_t shard, Peer& peer);
  void DeclareDeadLocked(std::size_t shard, Peer& peer);
  // Sends up to wire_batch records from the outbox front and waits for
  // the durable ack; trims the acked prefix.
  Status SendBatchLocked(std::size_t shard, Peer& peer);
  Status FlushOutboxLocked(std::size_t shard, Peer& peer,
                           std::size_t low_water);
  // Applies the durable_total learned from a handshake: trims the
  // already-owned outbox prefix and books duplicate detections.
  void AbsorbDurableTotalLocked(Peer& peer, std::uint64_t durable_total);
  // In-process takeover over local_fallback_root.
  Status LocalTakeoverLocked(std::size_t shard, Peer& peer);

  // --- re-routing (takes orphans_mu_, then peer mutexes) ---
  void OrphanOutboxLocked(Peer& peer);
  Status DrainOrphans();
  // Finish's pre-gather barrier: loops DrainOrphans + full outbox
  // flushes until no record is in flight anywhere, so that no worker
  // Finish can strand an orphan.
  Status SettleDeliveries();
  std::vector<std::size_t> LiveMembers();

  void HeartbeatLoop();
  Status ProbePeerLocked(std::size_t shard, Peer& peer);

  FabricConfig config_;
  Router router_;
  std::vector<Rng> streams_;
  std::vector<std::uint64_t> shard_seeds_;
  std::vector<std::unique_ptr<Peer>> peers_;

  std::mutex orphans_mu_;
  std::deque<std::pair<std::size_t, linalg::Vector>> orphans_;

  std::thread heartbeat_;
  std::atomic<bool> shutdown_{false};
  // Ingest-path backoff jitter and heartbeat-thread jitter draw from
  // separate streams (Rng is not thread-safe).
  Rng backoff_rng_;
  Rng hb_rng_;

  std::size_t submitted_ = 0;
  bool finished_ = false;

  std::atomic<std::size_t> connects_{0};
  std::atomic<std::size_t> reconnects_{0};
  std::atomic<std::size_t> heartbeats_{0};
  std::atomic<std::size_t> heartbeat_misses_{0};
  std::atomic<std::size_t> handoffs_{0};
  std::atomic<std::size_t> rerouted_records_{0};
  std::atomic<std::size_t> duplicates_detected_{0};
  std::atomic<std::size_t> rejoins_{0};
  std::atomic<std::size_t> local_takeovers_{0};
};

}  // namespace condensa::shard

#endif  // CONDENSA_SHARD_FABRIC_H_
