#include "shard/fabric.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "backend/registry.h"
#include "common/check.h"
#include "core/serialization.h"
#include "net/frame.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace condensa::shard {
namespace {

double SteadyNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Labels ShardLabels(std::size_t shard) {
  return {{"shard", std::to_string(shard)}};
}

obs::Counter& ConnectsCounter(std::size_t shard) {
  return obs::DefaultRegistry().GetCounter("condensa_fabric_connects_total",
                                           ShardLabels(shard));
}

obs::Counter& ReconnectsCounter(std::size_t shard) {
  return obs::DefaultRegistry().GetCounter(
      "condensa_fabric_reconnects_total", ShardLabels(shard));
}

obs::Counter& HeartbeatsCounter(std::size_t shard) {
  return obs::DefaultRegistry().GetCounter(
      "condensa_fabric_heartbeats_total", ShardLabels(shard));
}

obs::Counter& HeartbeatMissesCounter(std::size_t shard) {
  return obs::DefaultRegistry().GetCounter(
      "condensa_fabric_heartbeat_misses_total", ShardLabels(shard));
}

obs::Counter& RetransmitsCounter(std::size_t shard) {
  return obs::DefaultRegistry().GetCounter(
      "condensa_fabric_rerouted_records_total", ShardLabels(shard));
}

obs::Gauge& PeerUpGauge(std::size_t shard) {
  return obs::DefaultRegistry().GetGauge("condensa_fabric_peer_up",
                                         ShardLabels(shard));
}

obs::Histogram& RpcSeconds(const char* op) {
  return obs::DefaultRegistry().GetHistogram(
      "condensa_fabric_rpc_seconds", {{"op", op}},
      obs::RpcLatencyBucketsSeconds());
}

}  // namespace

Status FabricConfig::Validate() const {
  if (workers.empty()) {
    return InvalidArgumentError("fabric needs at least one worker endpoint");
  }
  for (const FabricEndpoint& endpoint : workers) {
    if (endpoint.host.empty() || endpoint.port == 0) {
      return InvalidArgumentError(
          "every fabric endpoint needs a host and a non-zero port");
    }
  }
  if (dim == 0) {
    return InvalidArgumentError("dim must be >= 1");
  }
  if (group_size < 2) {
    return InvalidArgumentError(
        "the fabric runs the streaming runtime, which requires "
        "group_size >= 2");
  }
  if (wire_batch == 0) {
    return InvalidArgumentError("wire_batch must be >= 1");
  }
  // NotFound here lists the registered ids, which the CLI surfaces.
  CONDENSA_RETURN_IF_ERROR(backend::Registry::Global().Get(backend).status());
  if (dim > net::kMaxWireDim) {
    return InvalidArgumentError(
        "dim " + std::to_string(dim) + " exceeds the wire cap of " +
        std::to_string(net::kMaxWireDim));
  }
  if (wire_batch > net::kMaxRecordsPerSubmit) {
    return InvalidArgumentError(
        "wire_batch " + std::to_string(wire_batch) +
        " exceeds the per-frame record cap of " +
        std::to_string(net::kMaxRecordsPerSubmit));
  }
  // EncodeFrame CHECK-fails on payloads at or above kMaxFramePayload, so
  // the largest Submit batch a config can produce must fit under the cap
  // — otherwise a legal-looking config would crash the coordinator at
  // the first full outbox instead of failing here with a Status.
  const std::uint64_t max_submit_payload =
      net::kSubmitOverheadBytes +
      static_cast<std::uint64_t>(wire_batch) * dim * sizeof(double);
  if (max_submit_payload >= net::kMaxFramePayload) {
    return InvalidArgumentError(
        "wire_batch " + std::to_string(wire_batch) + " at dim " +
        std::to_string(dim) + " makes a " +
        std::to_string(max_submit_payload) +
        "-byte Submit payload, above the frame cap of " +
        std::to_string(net::kMaxFramePayload) +
        " bytes; lower wire_batch");
  }
  if (connect_timeout_ms <= 0 || io_timeout_ms <= 0 ||
      ack_timeout_ms <= 0 || finish_timeout_ms <= 0 ||
      heartbeat_interval_ms <= 0 || heartbeat_timeout_ms <= 0) {
    return InvalidArgumentError("fabric timeouts must be positive");
  }
  if (heartbeat_timeout_ms < heartbeat_interval_ms) {
    return InvalidArgumentError(
        "heartbeat_timeout_ms must be >= heartbeat_interval_ms");
  }
  return OkStatus();
}

std::string FabricReport::ToString() const {
  std::ostringstream os;
  os << "connects=" << connects << " reconnects=" << reconnects
     << " heartbeats=" << heartbeats << " misses=" << heartbeat_misses
     << " handoffs=" << handoffs << " rerouted=" << rerouted_records
     << " duplicates=" << duplicates_detected << " rejoins=" << rejoins
     << " local_takeovers=" << local_takeovers;
  return os.str();
}

bool FabricResult::Balanced() const {
  for (const runtime::StreamPipelineStats& stats : shard_stats) {
    if (!stats.Balanced()) return false;
  }
  return true;
}

std::size_t FabricResult::TotalAccepted() const {
  std::size_t total = 0;
  for (const runtime::StreamPipelineStats& stats : shard_stats) {
    total += stats.accepted;
  }
  return total;
}

std::size_t FabricResult::TotalApplied() const {
  std::size_t total = 0;
  for (const runtime::StreamPipelineStats& stats : shard_stats) {
    total += stats.applied;
  }
  return total;
}

FabricService::FabricService(FabricConfig config)
    : config_(std::move(config)),
      router_({.num_shards = config_.workers.size(),
               .policy = config_.policy}),
      backoff_rng_(config_.seed ^ 0x9E3779B97F4A7C15ull),
      hb_rng_(config_.seed ^ 0xC2B2AE3D27D4EB4Full) {}

StatusOr<std::unique_ptr<FabricService>> FabricService::Start(
    FabricConfig config) {
  CONDENSA_RETURN_IF_ERROR(config.Validate());
  std::unique_ptr<FabricService> service(
      new FabricService(std::move(config)));
  const FabricConfig& cfg = service->config_;
  const std::size_t shards = cfg.workers.size();

  // Identical seed derivation to ShardedStreamService::Start — the first
  // half of the bit-identity contract (the second is gather order).
  Rng root(cfg.seed);
  service->streams_ = Router::SplitStreams(root, shards);
  service->shard_seeds_.reserve(shards);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    service->shard_seeds_.push_back(service->streams_[shard].NextUint64());
  }

  service->peers_.reserve(shards);
  std::size_t reachable = 0;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    service->peers_.push_back(std::make_unique<Peer>());
    Peer& peer = *service->peers_.back();
    std::lock_guard<std::mutex> lock(peer.mu);
    Status handshake = service->HandshakeLocked(shard, peer);
    if (handshake.ok()) {
      service->connects_.fetch_add(1, std::memory_order_relaxed);
      ConnectsCounter(shard).Increment();
      ++reachable;
    } else {
      // Start does not block on a down endpoint: the heartbeat thread
      // keeps redialing, and records route around it meanwhile.
      peer.state = PeerState::kDead;
      peer.redial_failures = 1;
      peer.next_redial_ms = SteadyNowMs();
      PeerUpGauge(shard).Set(0.0);
    }
  }
  if (reachable == 0 && cfg.local_fallback_root.empty()) {
    return UnavailableError(
        "no fabric worker endpoint is reachable and no "
        "local_fallback_root is configured");
  }
  service->heartbeat_ = std::thread(&FabricService::HeartbeatLoop,
                                    service.get());
  return service;
}

FabricService::~FabricService() {
  shutdown_.store(true, std::memory_order_relaxed);
  if (heartbeat_.joinable()) {
    heartbeat_.join();
  }
  for (std::size_t shard = 0; shard < peers_.size(); ++shard) {
    Peer& peer = *peers_[shard];
    std::lock_guard<std::mutex> lock(peer.mu);
    if (peer.state == PeerState::kConnected && peer.conn.ok()) {
      (void)peer.conn.SendFrame(net::FrameType::kGoodbye, "",
                                config_.io_timeout_ms);
    }
    peer.conn.Close();
  }
}

Status FabricService::HandshakeLocked(std::size_t shard, Peer& peer) {
  obs::TraceSpan span("fabric.handshake");
  const FabricEndpoint& endpoint = config_.workers[shard];
  peer.conn.Close();
  CONDENSA_ASSIGN_OR_RETURN(
      net::TcpConnection conn,
      net::TcpConnection::Connect(endpoint.host, endpoint.port,
                                  config_.connect_timeout_ms));
  net::HelloMessage hello;
  hello.shard_id = shard;
  hello.dim = config_.dim;
  hello.group_size = config_.group_size;
  hello.split_rule = static_cast<std::uint16_t>(config_.split_rule);
  hello.snapshot_interval = config_.snapshot_interval;
  hello.sync_every_append = config_.sync_every_append ? 1 : 0;
  hello.queue_capacity = config_.queue_capacity;
  hello.batch_size = config_.batch_size;
  hello.seed = shard_seeds_[shard];
  hello.backend = config_.backend;
  CONDENSA_RETURN_IF_ERROR(conn.SendFrame(net::FrameType::kHello,
                                          net::EncodeHello(hello),
                                          config_.io_timeout_ms));
  CONDENSA_ASSIGN_OR_RETURN(net::Frame frame,
                            conn.RecvFrame(config_.io_timeout_ms));
  if (frame.type == net::FrameType::kError) {
    CONDENSA_ASSIGN_OR_RETURN(net::ErrorMessage error,
                              net::DecodeError(frame.payload));
    return net::ErrorToStatus(error);
  }
  if (frame.type != net::FrameType::kHelloAck) {
    return DataLossError(std::string("expected HelloAck, got ") +
                         net::FrameTypeName(frame.type));
  }
  CONDENSA_ASSIGN_OR_RETURN(net::HelloAckMessage ack,
                            net::DecodeHelloAck(frame.payload));
  peer.worker_id = ack.worker_id;
  if (!peer.baselined) {
    peer.base_durable = ack.durable_total;
    peer.baselined = true;
  } else {
    AbsorbDurableTotalLocked(peer, ack.durable_total);
  }
  peer.conn = std::move(conn);
  peer.state = PeerState::kConnected;
  peer.last_ok_ms = SteadyNowMs();
  peer.redial_failures = 0;
  PeerUpGauge(shard).Set(1.0);
  return OkStatus();
}

void FabricService::AbsorbDurableTotalLocked(Peer& peer,
                                             std::uint64_t durable_total) {
  // A worker whose durable_total went backwards lost its checkpoint dir;
  // nothing to trim, and the acked records it held are gone from its
  // side (they survive only if they were also re-routed).
  if (durable_total < peer.base_durable) {
    return;
  }
  const std::uint64_t delivered = durable_total - peer.base_durable;
  if (delivered <= peer.acked) {
    return;
  }
  std::uint64_t extra = delivered - peer.acked;
  // The worker processes its substream in order, so whatever it absorbed
  // beyond our ack watermark is a prefix of the outbox.
  const std::uint64_t trim =
      std::min<std::uint64_t>(extra, peer.outbox.size());
  peer.outbox.erase(peer.outbox.begin(),
                    peer.outbox.begin() + static_cast<long>(trim));
  extra -= trim;
  if (extra > 0) {
    // Absorbed records we no longer hold: they were handed off to
    // survivors when this peer died, so the fabric now carries both
    // copies. Exactness is preserved by counting them.
    duplicates_detected_.fetch_add(extra, std::memory_order_relaxed);
  }
  peer.acked = delivered;
  peer.handed_off = false;
}

Status FabricService::SendBatchLocked(std::size_t shard, Peer& peer) {
  obs::TraceSpan span("fabric.submit.batch");
  obs::Timer timer;
  const std::size_t count =
      std::min(config_.wire_batch, peer.outbox.size());
  CONDENSA_CHECK_GT(count, 0u);
  net::SubmitMessage msg;
  msg.base_sequence = peer.outbox.front().first;
  msg.dim = config_.dim;
  msg.records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    msg.records.push_back(peer.outbox[i].second);
  }
  Status sent = peer.conn.SendFrame(net::FrameType::kSubmit,
                                    net::EncodeSubmit(msg),
                                    config_.io_timeout_ms);
  if (!sent.ok()) {
    peer.conn.Close();
    return sent;
  }
  // The worker flushes to durable custody before acking, so the ack wait
  // is bounded by its flush timeout, not the per-frame I/O timeout.
  StatusOr<net::Frame> frame = peer.conn.RecvFrame(config_.ack_timeout_ms);
  if (!frame.ok()) {
    peer.conn.Close();
    return frame.status();
  }
  if (frame->type == net::FrameType::kError) {
    peer.conn.Close();
    StatusOr<net::ErrorMessage> error = net::DecodeError(frame->payload);
    return error.ok() ? net::ErrorToStatus(*error) : error.status();
  }
  if (frame->type != net::FrameType::kSubmitAck) {
    peer.conn.Close();
    return DataLossError(std::string("expected SubmitAck, got ") +
                         net::FrameTypeName(frame->type));
  }
  StatusOr<net::SubmitAckMessage> ack =
      net::DecodeSubmitAck(frame->payload);
  if (!ack.ok()) {
    peer.conn.Close();
    return ack.status();
  }
  AbsorbDurableTotalLocked(peer, ack->durable_total);
  peer.last_ok_ms = SteadyNowMs();
  RpcSeconds("submit").Observe(timer.ElapsedSeconds());
  (void)shard;
  return OkStatus();
}

Status FabricService::FlushOutboxLocked(std::size_t shard, Peer& peer,
                                        std::size_t low_water) {
  while (peer.state == PeerState::kConnected &&
         peer.outbox.size() > low_water) {
    CONDENSA_RETURN_IF_ERROR(SendBatchLocked(shard, peer));
  }
  return OkStatus();
}

void FabricService::ReviveOrDeclareDeadLocked(std::size_t shard,
                                              Peer& peer) {
  peer.conn.Close();
  for (std::size_t attempt = 1; attempt <= config_.reconnect.max_attempts;
       ++attempt) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        runtime::BackoffDelayMs(config_.reconnect, attempt,
                                backoff_rng_)));
    if (HandshakeLocked(shard, peer).ok()) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      ReconnectsCounter(shard).Increment();
      return;
    }
  }
  DeclareDeadLocked(shard, peer);
}

void FabricService::DeclareDeadLocked(std::size_t shard, Peer& peer) {
  if (peer.state == PeerState::kDead) {
    return;
  }
  obs::TraceSpan span("fabric.handoff");
  peer.conn.Close();
  peer.state = PeerState::kDead;
  peer.acked_at_death = peer.acked;
  peer.next_redial_ms = SteadyNowMs();
  PeerUpGauge(shard).Set(0.0);
  handoffs_.fetch_add(1, std::memory_order_relaxed);
  if (!peer.outbox.empty()) {
    peer.handed_off = true;
    OrphanOutboxLocked(peer);
  }
}

void FabricService::OrphanOutboxLocked(Peer& peer) {
  std::lock_guard<std::mutex> lock(orphans_mu_);
  while (!peer.outbox.empty()) {
    orphans_.push_back(std::move(peer.outbox.front()));
    peer.outbox.pop_front();
  }
}

std::vector<std::size_t> FabricService::LiveMembers() {
  std::vector<std::size_t> members;
  members.reserve(peers_.size());
  for (std::size_t shard = 0; shard < peers_.size(); ++shard) {
    Peer& peer = *peers_[shard];
    std::lock_guard<std::mutex> lock(peer.mu);
    if (peer.state != PeerState::kDead) {
      members.push_back(shard);
    }
  }
  return members;
}

Status FabricService::LocalTakeoverLocked(std::size_t shard, Peer& peer) {
  if (config_.local_fallback_root.empty()) {
    return UnavailableError(
        "shard " + std::to_string(shard) +
        " is unreachable and no local_fallback_root is configured");
  }
  WorkerOptions options;
  options.mode = WorkerMode::kDurableStream;
  options.group_size = config_.group_size;
  options.split_rule = config_.split_rule;
  // Validate() pinned the id to a registered backend, so the lookup
  // cannot fail here.
  if (StatusOr<const backend::AnonymizationBackend*> resolved =
          backend::Registry::Global().Get(config_.backend);
      resolved.ok()) {
    options.backend = (*resolved)->info().id;
    options.backend_version = (*resolved)->info().version;
    options.construction = (*resolved)->ConstructionHook();
  }
  options.checkpoint_root = config_.local_fallback_root;
  options.snapshot_interval = config_.snapshot_interval;
  options.sync_every_append = config_.sync_every_append;
  options.queue_capacity = config_.queue_capacity;
  options.batch_size = config_.batch_size;
  options.seed = shard_seeds_[shard];
  options.worker_id = peer.worker_id;
  CONDENSA_ASSIGN_OR_RETURN(peer.local,
                            Worker::Start(shard, config_.dim, options));
  // Recovering over the worker's own checkpoint dir restores its acked
  // records exactly; trim what the recovery already owns, then deliver
  // the rest of the outbox in-process.
  if (!peer.baselined) {
    peer.base_durable = peer.local->durable_total();
    peer.baselined = true;
  } else {
    AbsorbDurableTotalLocked(peer, peer.local->durable_total());
  }
  while (!peer.outbox.empty()) {
    CONDENSA_RETURN_IF_ERROR(
        peer.local->Submit(peer.outbox.front().second));
    peer.outbox.pop_front();
  }
  peer.conn.Close();
  peer.state = PeerState::kLocal;
  local_takeovers_.fetch_add(1, std::memory_order_relaxed);
  PeerUpGauge(shard).Set(1.0);
  return OkStatus();
}

Status FabricService::SettleDeliveries() {
  // Runs before any worker is allowed to Finish: repeatedly re-places
  // orphans and flushes every surviving outbox until both are empty. A
  // peer dying mid-pass re-orphans its outbox, which the next pass
  // re-places, so each unsettled pass either converges or shrinks the
  // member set — bounding the pass count by the shard count (doubled to
  // allow one revive-then-die flap per peer).
  const std::size_t max_passes = 2 * peers_.size() + 2;
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    CONDENSA_RETURN_IF_ERROR(DrainOrphans());
    bool settled = true;
    for (std::size_t shard = 0; shard < peers_.size(); ++shard) {
      Peer& peer = *peers_[shard];
      std::lock_guard<std::mutex> lock(peer.mu);
      if (peer.state != PeerState::kConnected || peer.outbox.empty()) {
        continue;
      }
      Status flushed = FlushOutboxLocked(shard, peer, 0);
      if (!flushed.ok()) {
        ReviveOrDeclareDeadLocked(shard, peer);
        // Revived: the backlog flushes next pass. Declared dead: the
        // backlog was orphaned and re-places next pass.
        settled = false;
      }
    }
    {
      std::lock_guard<std::mutex> lock(orphans_mu_);
      if (!orphans_.empty()) {
        settled = false;
      }
    }
    if (settled) {
      return OkStatus();
    }
  }
  return UnavailableError(
      "fabric could not settle in-flight records before the gather");
}

Status FabricService::DrainOrphans() {
  // Each pass either places every orphan or shrinks the member set (a
  // peer dying re-orphans its outbox); the pass count is bounded by the
  // shard count plus the final fallback pass.
  for (std::size_t pass = 0; pass <= peers_.size() + 1; ++pass) {
    std::deque<std::pair<std::size_t, linalg::Vector>> batch;
    {
      std::lock_guard<std::mutex> lock(orphans_mu_);
      std::swap(batch, orphans_);
    }
    if (batch.empty()) {
      return OkStatus();
    }
    const std::vector<std::size_t> members = LiveMembers();
    for (auto& [index, record] : batch) {
      const std::size_t home = router_.ShardOf(record, index);
      {
        // A record keeps its home shard whenever the home can accept it:
        // over the wire, through an existing local takeover, or — when a
        // fallback root is configured — through a fresh takeover. Only a
        // dead home with no fallback displaces the record onto a
        // survivor, so the degraded fabric preserves the single-process
        // routing (and therefore the bit-identical release) as long as
        // it has anywhere local to put the shard.
        Peer& home_peer = *peers_[home];
        std::lock_guard<std::mutex> lock(home_peer.mu);
        if (home_peer.state == PeerState::kDead &&
            !config_.local_fallback_root.empty()) {
          Status takeover = LocalTakeoverLocked(home, home_peer);
          if (!takeover.ok()) {
            std::lock_guard<std::mutex> orphans_lock(orphans_mu_);
            orphans_.push_back({index, std::move(record)});
            return takeover;
          }
        }
        if (home_peer.state == PeerState::kLocal) {
          CONDENSA_RETURN_IF_ERROR(home_peer.local->Submit(record));
          continue;
        }
        if (home_peer.state == PeerState::kConnected) {
          home_peer.outbox.push_back({index, std::move(record)});
          if (home_peer.outbox.size() >= config_.wire_batch) {
            Status flushed =
                FlushOutboxLocked(home, home_peer, config_.wire_batch - 1);
            if (!flushed.ok()) {
              ReviveOrDeclareDeadLocked(home, home_peer);
            }
          }
          continue;
        }
      }
      // Dead home, no fallback: displace onto a survivor (home is not in
      // `members`, so target != home by construction).
      if (members.empty()) {
        std::lock_guard<std::mutex> orphans_lock(orphans_mu_);
        orphans_.push_back({index, std::move(record)});
        continue;
      }
      const std::size_t target = router_.ShardAmong(record, index, members);
      Peer& peer = *peers_[target];
      std::lock_guard<std::mutex> lock(peer.mu);
      if (peer.state == PeerState::kLocal) {
        CONDENSA_RETURN_IF_ERROR(peer.local->Submit(record));
      } else if (peer.state == PeerState::kConnected) {
        peer.outbox.push_back({index, std::move(record)});
        if (peer.outbox.size() >= config_.wire_batch) {
          Status flushed =
              FlushOutboxLocked(target, peer, config_.wire_batch - 1);
          if (!flushed.ok()) {
            ReviveOrDeclareDeadLocked(target, peer);
          }
        }
      } else {
        // Died between the member snapshot and now; try again next pass.
        std::lock_guard<std::mutex> orphans_lock(orphans_mu_);
        orphans_.push_back({index, std::move(record)});
        continue;
      }
      rerouted_records_.fetch_add(1, std::memory_order_relaxed);
      RetransmitsCounter(home).Increment();
    }
  }
  std::lock_guard<std::mutex> lock(orphans_mu_);
  if (!orphans_.empty()) {
    return UnavailableError("could not place " +
                            std::to_string(orphans_.size()) +
                            " re-routed records on any live shard");
  }
  return OkStatus();
}

Status FabricService::Submit(const linalg::Vector& record) {
  if (finished_) {
    return FailedPreconditionError("Submit after Finish");
  }
  // EncodeSubmit packs exactly config_.dim doubles per record, so a
  // wrong-dimension record would make every batch sharing a frame with
  // it undecodable — a poison pill the worker rejects forever, which
  // reads as a dead shard. Reject it here, before it takes an arrival
  // index or touches any outbox.
  if (record.dim() != config_.dim) {
    return InvalidArgumentError(
        "record dimension " + std::to_string(record.dim()) +
        " does not match the fabric dimension " +
        std::to_string(config_.dim));
  }
  const std::size_t index = submitted_;
  const std::size_t shard = router_.Route(record);
  ++submitted_;
  {
    Peer& peer = *peers_[shard];
    std::lock_guard<std::mutex> lock(peer.mu);
    switch (peer.state) {
      case PeerState::kLocal:
        CONDENSA_RETURN_IF_ERROR(peer.local->Submit(record));
        break;
      case PeerState::kConnected: {
        peer.outbox.push_back({index, record});
        if (peer.outbox.size() >= config_.wire_batch) {
          Status flushed =
              FlushOutboxLocked(shard, peer, config_.wire_batch - 1);
          if (!flushed.ok()) {
            ReviveOrDeclareDeadLocked(shard, peer);
            if (peer.state == PeerState::kConnected) {
              CONDENSA_RETURN_IF_ERROR(
                  FlushOutboxLocked(shard, peer, config_.wire_batch - 1));
            }
          }
        }
        break;
      }
      case PeerState::kDead: {
        // Route around the outage immediately; the record keeps its
        // arrival index so the re-route is deterministic in the member
        // set.
        std::lock_guard<std::mutex> orphans_lock(orphans_mu_);
        orphans_.push_back({index, record});
        break;
      }
    }
  }
  bool have_orphans;
  {
    std::lock_guard<std::mutex> lock(orphans_mu_);
    have_orphans = !orphans_.empty();
  }
  if (have_orphans) {
    CONDENSA_RETURN_IF_ERROR(DrainOrphans());
  }
  return OkStatus();
}

Status FabricService::ProbePeerLocked(std::size_t shard, Peer& peer) {
  obs::Timer timer;
  net::HeartbeatMessage beat;
  beat.nonce = hb_rng_.NextUint64();
  CONDENSA_RETURN_IF_ERROR(peer.conn.SendFrame(net::FrameType::kHeartbeat,
                                               net::EncodeHeartbeat(beat),
                                               config_.io_timeout_ms));
  CONDENSA_ASSIGN_OR_RETURN(
      net::Frame frame, peer.conn.RecvFrame(config_.heartbeat_timeout_ms));
  if (frame.type != net::FrameType::kHeartbeatAck) {
    return DataLossError(std::string("expected HeartbeatAck, got ") +
                         net::FrameTypeName(frame.type));
  }
  CONDENSA_ASSIGN_OR_RETURN(net::HeartbeatAckMessage ack,
                            net::DecodeHeartbeatAck(frame.payload));
  if (ack.nonce != beat.nonce) {
    return DataLossError("heartbeat ack nonce mismatch");
  }
  heartbeats_.fetch_add(1, std::memory_order_relaxed);
  HeartbeatsCounter(shard).Increment();
  peer.last_ok_ms = SteadyNowMs();
  RpcSeconds("heartbeat").Observe(timer.ElapsedSeconds());
  return OkStatus();
}

void FabricService::HeartbeatLoop() {
  const auto tick = std::chrono::duration<double, std::milli>(
      std::min(config_.heartbeat_interval_ms, 50.0));
  while (!shutdown_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(tick);
    const double now = SteadyNowMs();
    for (std::size_t shard = 0; shard < peers_.size(); ++shard) {
      if (shutdown_.load(std::memory_order_relaxed)) {
        return;
      }
      Peer& peer = *peers_[shard];
      // Never contend with the ingest path: a peer busy in an RPC is
      // proving its liveness already.
      std::unique_lock<std::mutex> lock(peer.mu, std::try_to_lock);
      if (!lock.owns_lock()) {
        continue;
      }
      if (peer.state == PeerState::kConnected) {
        if (now - peer.last_ok_ms < config_.heartbeat_interval_ms) {
          continue;
        }
        if (!peer.conn.ok() || !ProbePeerLocked(shard, peer).ok()) {
          heartbeat_misses_.fetch_add(1, std::memory_order_relaxed);
          HeartbeatMissesCounter(shard).Increment();
          peer.conn.Close();
          // One immediate redial; past the liveness window the peer is
          // declared dead and its backlog handed off.
          if (HandshakeLocked(shard, peer).ok()) {
            reconnects_.fetch_add(1, std::memory_order_relaxed);
            ReconnectsCounter(shard).Increment();
          } else if (SteadyNowMs() - peer.last_ok_ms >
                     config_.heartbeat_timeout_ms) {
            DeclareDeadLocked(shard, peer);
          }
        }
      } else if (peer.state == PeerState::kDead) {
        if (now < peer.next_redial_ms) {
          continue;
        }
        if (HandshakeLocked(shard, peer).ok()) {
          rejoins_.fetch_add(1, std::memory_order_relaxed);
          reconnects_.fetch_add(1, std::memory_order_relaxed);
          ReconnectsCounter(shard).Increment();
        } else {
          ++peer.redial_failures;
          peer.next_redial_ms =
              SteadyNowMs() + runtime::BackoffDelayMs(config_.reconnect,
                                                      peer.redial_failures,
                                                      hb_rng_);
        }
      }
    }
  }
}

StatusOr<FabricResult> FabricService::Finish() {
  if (finished_) {
    return FailedPreconditionError("Finish was already called");
  }
  finished_ = true;
  obs::TraceSpan span("fabric.finish");

  // Quiesce the background thread first: Finish owns every peer from
  // here on, so no revival can race the final flush.
  shutdown_.store(true, std::memory_order_relaxed);
  if (heartbeat_.joinable()) {
    heartbeat_.join();
  }

  // Deliver every in-flight record BEFORE any worker runs Finish. Once
  // the gather below starts, a record can no longer be re-placed: its
  // home may already be gathered (its groups fixed) or finished (Submit
  // would fail), so any orphan surviving into the gather is either data
  // loss or an abort. Settling first empties every outbox and the
  // orphan queue, which also means a worker death DURING the gather
  // orphans nothing — its acked state recovers alone via takeover.
  CONDENSA_RETURN_IF_ERROR(SettleDeliveries());

  FabricResult result;
  std::vector<core::CondensedGroupSet> shard_sets;
  shard_sets.reserve(peers_.size());
  for (std::size_t shard = 0; shard < peers_.size(); ++shard) {
    Peer& peer = *peers_[shard];
    std::lock_guard<std::mutex> lock(peer.mu);

    if (peer.state == PeerState::kDead) {
      // Last chance over the wire before degrading.
      if (HandshakeLocked(shard, peer).ok()) {
        rejoins_.fetch_add(1, std::memory_order_relaxed);
        reconnects_.fetch_add(1, std::memory_order_relaxed);
      } else if (!peer.baselined ||
                 (peer.base_durable == 0 && peer.acked == 0 &&
                  peer.outbox.empty())) {
        // The peer owns no durable state of any run and no backlog —
        // an empty shard, skipped exactly.
        shard_sets.push_back(
            core::CondensedGroupSet(config_.dim, config_.group_size));
        result.shard_stats.push_back(runtime::StreamPipelineStats{});
        continue;
      } else {
        CONDENSA_RETURN_IF_ERROR(LocalTakeoverLocked(shard, peer));
      }
    }

    if (peer.state == PeerState::kConnected) {
      Status finished_remote = [&]() -> Status {
        CONDENSA_RETURN_IF_ERROR(FlushOutboxLocked(shard, peer, 0));
        obs::Timer timer;
        CONDENSA_RETURN_IF_ERROR(peer.conn.SendFrame(
            net::FrameType::kFinish, "", config_.io_timeout_ms));
        CONDENSA_ASSIGN_OR_RETURN(
            net::Frame frame,
            peer.conn.RecvFrame(config_.finish_timeout_ms));
        if (frame.type == net::FrameType::kError) {
          CONDENSA_ASSIGN_OR_RETURN(net::ErrorMessage error,
                                    net::DecodeError(frame.payload));
          return net::ErrorToStatus(error);
        }
        if (frame.type != net::FrameType::kFinishResult) {
          return DataLossError(std::string("expected FinishResult, got ") +
                               net::FrameTypeName(frame.type));
        }
        CONDENSA_ASSIGN_OR_RETURN(net::FinishResultMessage finish,
                                  net::DecodeFinishResult(frame.payload));
        CONDENSA_ASSIGN_OR_RETURN(
            core::CondensedGroupSet set,
            core::DeserializeGroupSet(finish.groups_text));
        RpcSeconds("finish").Observe(timer.ElapsedSeconds());
        shard_sets.push_back(std::move(set));
        result.shard_stats.push_back(finish.stats);
        return OkStatus();
      }();
      if (!finished_remote.ok()) {
        // The worker died (or the wire broke) inside the gather; its
        // durable state is still on disk, so hand the shard over. The
        // outbox is empty (SettleDeliveries ran), so declaring the peer
        // dead here orphans nothing.
        DeclareDeadLocked(shard, peer);
        CONDENSA_RETURN_IF_ERROR(LocalTakeoverLocked(shard, peer));
      }
    }

    if (peer.state == PeerState::kLocal) {
      CONDENSA_ASSIGN_OR_RETURN(core::CondensedGroupSet set,
                                peer.local->Finish(streams_[shard]));
      CONDENSA_CHECK(peer.local->stream_stats().has_value());
      shard_sets.push_back(std::move(set));
      result.shard_stats.push_back(*peer.local->stream_stats());
    }
  }

  // Invariant: SettleDeliveries emptied every outbox before the gather,
  // so the loop above cannot have orphaned anything. A leftover here
  // has no live shard to land on — surface it instead of dropping it.
  {
    std::lock_guard<std::mutex> lock(orphans_mu_);
    if (!orphans_.empty()) {
      return InternalError("gather left " +
                           std::to_string(orphans_.size()) +
                           " records unplaced; refusing to drop them");
    }
  }

  Coordinator coordinator(
      {.group_size = config_.group_size, .split_rule = config_.split_rule});
  CONDENSA_ASSIGN_OR_RETURN(
      result.groups,
      coordinator.Gather(std::move(shard_sets), &result.gather));
  result.report = report();
  return result;
}

FabricReport FabricService::report() const {
  FabricReport out;
  out.connects = connects_.load(std::memory_order_relaxed);
  out.reconnects = reconnects_.load(std::memory_order_relaxed);
  out.heartbeats = heartbeats_.load(std::memory_order_relaxed);
  out.heartbeat_misses = heartbeat_misses_.load(std::memory_order_relaxed);
  out.handoffs = handoffs_.load(std::memory_order_relaxed);
  out.rerouted_records = rerouted_records_.load(std::memory_order_relaxed);
  out.duplicates_detected =
      duplicates_detected_.load(std::memory_order_relaxed);
  out.rejoins = rejoins_.load(std::memory_order_relaxed);
  out.local_takeovers = local_takeovers_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace condensa::shard
