// The standalone side of the networked shard fabric: a shard::Worker
// behind the wire protocol.
//
// `condensa worker` (and WorkerProcess in tests) runs one WorkerServer.
// The server listens on a TCP port and serves one coordinator session at
// a time, strictly request/response:
//
//   Hello        -> builds (or, after a crash, RECOVERS) the shard's
//                   Worker from the parameters in the message, under
//                   <checkpoint_root>/shard-<id>. Replies HelloAck with
//                   the worker's stable identity and durable_total — the
//                   record count already durably in custody, which the
//                   coordinator uses to trim re-sends exactly.
//   Submit       -> feeds the batch through the shard's supervised
//                   pipeline, then BLOCKS on Worker::Flush before
//                   replying SubmitAck. The ack therefore certifies
//                   durable custody: a kill -9 any time after the ack
//                   loses none of the acked records.
//   Heartbeat    -> HeartbeatAck echoing the nonce (liveness). The
//                   failpoint "fabric.heartbeat" is probed here so chaos
//                   tests can inject missed/slow beats.
//   Finish       -> drains the pipeline, condenses, and replies
//                   FinishResult (final ledger + serialized group set);
//                   the server then exits its Run loop.
//
// A connection error of any kind drops the session and returns to
// accept — the coordinator redials and re-handshakes, so no stale
// framing state can leak across failures. Request-level failures are
// reported in-band as Error frames; the session survives them.

#ifndef CONDENSA_SHARD_WORKER_SERVER_H_
#define CONDENSA_SHARD_WORKER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/framed_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "shard/worker.h"

namespace condensa::shard {

struct WorkerServerConfig {
  std::string host = "127.0.0.1";
  // 0 picks a free port (see WorkerServer::port()).
  std::uint16_t port = 0;
  // Parent directory for the shard checkpoint; required. The shard id
  // arrives in the Hello, so one root can serve any shard.
  std::string checkpoint_root;
  // Stable metric identity; empty defaults to "w<shard_id>" at Hello.
  std::string worker_id;
  // Per-frame send/recv timeout within a session.
  double io_timeout_ms = 5000.0;
  // How long Submit may wait for durable custody before failing the
  // request (the coordinator then treats the peer as unhealthy).
  double flush_timeout_ms = 30000.0;
  // Accept/recv poll granularity; bounds Stop() latency.
  double poll_ms = 100.0;
  // A session silent for this long is dropped back to accept, so a
  // coordinator that vanished without closing cannot wedge the server.
  double idle_timeout_ms = 30000.0;

  Status Validate() const;
};

class WorkerServer {
 public:
  // Binds and listens; the bound port is available via port() before
  // Run() (WorkerProcess reads it in the parent before forking).
  static StatusOr<std::unique_ptr<WorkerServer>> Create(
      WorkerServerConfig config);
  // As Create, but serves on an already-bound listener.
  static StatusOr<std::unique_ptr<WorkerServer>> CreateWithListener(
      WorkerServerConfig config, net::TcpListener listener);

  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

  std::uint16_t port() const { return server_->port(); }

  // Serves sessions until a Finish completes or Stop() is called.
  // Returns the first non-recoverable error (listener failure); session
  // and request errors are handled internally. The accept/recv/dispatch
  // loop itself lives in net::FramedServer (shared with QueryServer).
  Status Run();

  // Asks Run() to return at its next poll tick (thread-safe).
  void Stop() { server_->Stop(); }

  // True once a Finish request has been served.
  bool finished() const { return finished_.load(std::memory_order_relaxed); }

 private:
  explicit WorkerServer(WorkerServerConfig config);

  // Maps one decoded frame to a handler; request-level failures are
  // reported in-band and the session continues, transport failures end
  // the session, a served Finish stops the server.
  net::SessionAction Dispatch(net::TcpConnection& conn,
                              const net::Frame& frame);
  Status HandleHello(net::TcpConnection& conn, const std::string& payload);
  Status HandleSubmit(net::TcpConnection& conn, const std::string& payload);
  Status HandleHeartbeat(net::TcpConnection& conn,
                         const std::string& payload);
  Status HandleFinish(net::TcpConnection& conn);
  // Reports a request-level failure in-band; the session continues.
  void SendError(net::TcpConnection& conn, const Status& status);

  WorkerServerConfig config_;
  std::unique_ptr<net::FramedServer> server_;
  std::unique_ptr<Worker> worker_;
  // The Hello that built worker_ (re-handshakes must match it).
  net::HelloMessage hello_;
  std::atomic<bool> finished_{false};
};

}  // namespace condensa::shard

#endif  // CONDENSA_SHARD_WORKER_SERVER_H_
