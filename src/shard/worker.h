// One shard's condenser: the middle of scatter/gather condensation.
//
// A Worker owns exactly one shard's partition of the stream and condenses
// it independently of every other shard — no cross-shard locks, no shared
// state. Two execution modes:
//
//   kStaticBatch    records are buffered and condensed in one
//                   CreateCondensedGroups pass at Finish (paper Fig. 1).
//                   The cheapest mode when the whole partition fits in
//                   memory and durability is not required.
//   kDurableStream  records flow through the full supervised streaming
//                   runtime (runtime::StreamPipeline): bounded queue,
//                   retry/backoff, quarantine, circuit breaker, and a
//                   crash-safe snapshot+journal checkpoint under
//                   <checkpoint_root>/shard-<id>. Because every shard
//                   has its own checkpoint directory, a crashed shard
//                   recovers alone — the other shards' state is never
//                   read, locked, or rewritten.
//
// A shard whose partition ends below the k-floor (fewer than k records)
// emits its remainder as a single sub-k group; the coordinator folds
// those into the global structure so no record is dropped (see
// shard/coordinator.h). Per-shard ingest volume is exported as
// condensa_shard_records_total{shard="<id>"}.

#ifndef CONDENSA_SHARD_WORKER_H_
#define CONDENSA_SHARD_WORKER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/backend_hooks.h"
#include "core/condensed_group_set.h"
#include "core/split.h"
#include "linalg/vector.h"
#include "runtime/pipeline.h"

namespace condensa::shard {

enum class WorkerMode {
  kStaticBatch = 0,
  kDurableStream = 1,
};

struct WorkerOptions {
  WorkerMode mode = WorkerMode::kStaticBatch;
  // The indistinguishability level k. Must be >= 1 (>= 2 in
  // kDurableStream mode — the streaming runtime refuses k = 1).
  std::size_t group_size = 10;
  core::SplitRule split_rule = core::SplitRule::kMomentConsistent;

  // kDurableStream only: parent directory; shard i checkpoints under
  // <checkpoint_root>/shard-<i>. Required in that mode.
  std::string checkpoint_root;
  std::size_t snapshot_interval = 1024;
  bool sync_every_append = true;
  // Queue bound and batch size forwarded to the shard's StreamPipeline.
  std::size_t queue_capacity = 1024;
  std::size_t batch_size = 32;
  // Seeds the shard pipeline's retry jitter. Derive per-shard values from
  // Rng::Split substreams (Router::SplitStreams) so shards never share a
  // stream.
  std::uint64_t seed = 42;

  // Stable identity for metric labels: condensa_shard_*{shard=i,
  // worker=<id>}. A restarted or rejoined worker that keeps its identity
  // keeps its series — no duplicate per-incarnation series. Empty picks
  // the default "w<shard_id>".
  std::string worker_id;

  // Anonymization backend (docs/backends.md) stamped into this shard's
  // group set and checkpoints. Callers resolve the id through
  // backend::Registry; a non-default backend needs `construction` set
  // for kStaticBatch mode (Start rejects the combination otherwise).
  std::string backend = core::CondensedGroupSet::kDefaultBackendId;
  int backend_version = 1;
  // kStaticBatch group construction strategy; null runs the built-in
  // condensation pass.
  core::GroupConstructionFn construction;
};

class Worker {
 public:
  // Validates options and (in kDurableStream mode) starts the shard's
  // pipeline, creating or recovering <checkpoint_root>/shard-<id>.
  static StatusOr<std::unique_ptr<Worker>> Start(std::size_t shard_id,
                                                 std::size_t dim,
                                                 const WorkerOptions& options);

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  std::size_t shard_id() const { return shard_id_; }
  std::size_t dim() const { return dim_; }
  const WorkerOptions& options() const { return options_; }

  // The shard's checkpoint directory ("" in kStaticBatch mode).
  const std::string& checkpoint_dir() const { return checkpoint_dir_; }

  // The resolved metric-label identity (options().worker_id or the
  // "w<shard_id>" default).
  const std::string& worker_id() const { return worker_id_; }

  // Accepts one record: buffered (batch) or enqueued (stream). Safe for
  // one producer; kDurableStream tolerates many (the queue is MPSC).
  Status Submit(const linalg::Vector& record);

  // Records accepted so far via Submit.
  std::size_t records_submitted() const { return submitted_; }

  // Blocks until every submitted record is durably in the shard's
  // custody (journaled, quarantined, or spooled) or `timeout_ms` elapses.
  // kStaticBatch mode returns OK immediately — the buffer is the custody
  // (no durability to wait for). The fabric worker acks a Submit batch
  // only after Flush, which is what makes a post-ack kill -9 lossless.
  Status Flush(double timeout_ms);

  // Records durably in this shard's custody right now: condensed records
  // recovered or applied (the checkpoint), plus live quarantine entries
  // and spooled backlog. Monotonic across restarts for clean data; the
  // fabric uses it to trim already-delivered prefixes on reconnect.
  // kStaticBatch mode counts the in-memory buffer.
  std::size_t durable_total() const;

  // Finishes ingest and surrenders the shard-local group set. Batch mode
  // condenses the buffer with `rng` (pass this shard's Router::SplitStreams
  // substream); stream mode drains and checkpoints the pipeline (rng
  // unused — pure streaming consumes no randomness, which is why the
  // sharded release is reproducible from the seed alone). Callable once.
  StatusOr<core::CondensedGroupSet> Finish(Rng& rng);

  // Stream-mode ledger from Finish (nullopt in batch mode or before
  // Finish). The caller asserts Balanced() for zero-silent-loss runs.
  const std::optional<runtime::StreamPipelineStats>& stream_stats() const {
    return stream_stats_;
  }

  // Live stream-mode counters at any point in the worker's life (nullopt
  // in batch mode). After Finish the final ledger is the better source.
  std::optional<runtime::StreamPipelineStats> live_stream_stats() const {
    if (pipeline_ == nullptr) return std::nullopt;
    return pipeline_->stats();
  }

 private:
  Worker(std::size_t shard_id, std::size_t dim, WorkerOptions options);

  const std::size_t shard_id_;
  const std::size_t dim_;
  const WorkerOptions options_;
  std::string checkpoint_dir_;
  std::string worker_id_;

  // kStaticBatch buffer.
  std::vector<linalg::Vector> buffer_;
  // kDurableStream pipeline.
  std::unique_ptr<runtime::StreamPipeline> pipeline_;
  std::optional<runtime::StreamPipelineStats> stream_stats_;

  std::size_t submitted_ = 0;
  bool finished_ = false;
};

}  // namespace condensa::shard

#endif  // CONDENSA_SHARD_WORKER_H_
