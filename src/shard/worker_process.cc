#include "shard/worker_process.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <utility>

namespace condensa::shard {

WorkerProcess::~WorkerProcess() { Kill(); }

WorkerProcess::WorkerProcess(WorkerProcess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      port_(std::exchange(other.port_, 0)) {}

WorkerProcess& WorkerProcess::operator=(WorkerProcess&& other) noexcept {
  if (this != &other) {
    Kill();
    pid_ = std::exchange(other.pid_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

StatusOr<WorkerProcess> WorkerProcess::Spawn(WorkerServerConfig config) {
  CONDENSA_RETURN_IF_ERROR(config.Validate());
  // Bind in the parent so the resolved port is known here and a respawn
  // on an explicit port fails loudly (kUnavailable) instead of silently
  // listening elsewhere.
  CONDENSA_ASSIGN_OR_RETURN(
      net::TcpListener listener,
      net::TcpListener::Listen(config.host, config.port));
  const std::uint16_t port = listener.port();
  const pid_t pid = ::fork();
  if (pid < 0) {
    return UnavailableError("fork failed");
  }
  if (pid == 0) {
    // Child: serve until Finish, then leave without running any parent
    // state's destructors (tests hold pipelines, metrics, etc. that must
    // not be torn down twice).
    StatusOr<std::unique_ptr<WorkerServer>> server =
        WorkerServer::CreateWithListener(std::move(config),
                                         std::move(listener));
    if (!server.ok()) {
      ::_exit(3);
    }
    Status run = (*server)->Run();
    ::_exit(run.ok() ? 0 : 4);
  }
  // Parent: the child owns the listening socket now.
  listener.Close();
  WorkerProcess process;
  process.pid_ = pid;
  process.port_ = port;
  return process;
}

void WorkerProcess::Kill() {
  if (pid_ <= 0) {
    return;
  }
  ::kill(pid_, SIGKILL);
  int status = 0;
  ::waitpid(pid_, &status, 0);
  pid_ = -1;
}

StatusOr<int> WorkerProcess::Wait() {
  if (pid_ <= 0) {
    return FailedPreconditionError("no child to wait for");
  }
  int status = 0;
  const pid_t reaped = ::waitpid(pid_, &status, 0);
  if (reaped != pid_) {
    return UnavailableError("waitpid failed");
  }
  pid_ = -1;
  return status;
}

}  // namespace condensa::shard
