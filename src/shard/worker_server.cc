#include "shard/worker_server.h"

#include <utility>

#include "backend/registry.h"
#include "common/failpoint.h"
#include "core/serialization.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace condensa::shard {
namespace {

obs::Counter& SessionsCounter(const std::string& worker_id) {
  return obs::DefaultRegistry().GetCounter(
      "condensa_fabric_worker_sessions_total", {{"worker", worker_id}});
}

obs::Histogram& FlushSeconds(const std::string& worker_id) {
  return obs::DefaultRegistry().GetHistogram(
      "condensa_fabric_worker_flush_seconds", {{"worker", worker_id}},
      obs::RpcLatencyBucketsSeconds());
}

Status ValidateSplitRule(std::uint16_t raw) {
  if (raw > static_cast<std::uint16_t>(core::SplitRule::kPaperVerbatim)) {
    return DataLossError("Hello carries unknown split rule " +
                         std::to_string(raw));
  }
  return OkStatus();
}

}  // namespace

Status WorkerServerConfig::Validate() const {
  if (checkpoint_root.empty()) {
    return InvalidArgumentError("worker server requires a checkpoint_root");
  }
  if (io_timeout_ms <= 0 || flush_timeout_ms <= 0 || poll_ms <= 0 ||
      idle_timeout_ms <= 0) {
    return InvalidArgumentError("worker server timeouts must be positive");
  }
  return OkStatus();
}

WorkerServer::WorkerServer(WorkerServerConfig config)
    : config_(std::move(config)) {}

StatusOr<std::unique_ptr<WorkerServer>> WorkerServer::Create(
    WorkerServerConfig config) {
  CONDENSA_ASSIGN_OR_RETURN(
      net::TcpListener listener,
      net::TcpListener::Listen(config.host, config.port));
  return CreateWithListener(std::move(config), std::move(listener));
}

StatusOr<std::unique_ptr<WorkerServer>> WorkerServer::CreateWithListener(
    WorkerServerConfig config, net::TcpListener listener) {
  CONDENSA_RETURN_IF_ERROR(config.Validate());
  if (!listener.ok()) {
    return FailedPreconditionError("worker server needs a live listener");
  }
  net::FramedServerConfig loop;
  loop.poll_ms = config.poll_ms;
  loop.idle_timeout_ms = config.idle_timeout_ms;
  std::unique_ptr<WorkerServer> server(new WorkerServer(std::move(config)));
  server->server_ = std::make_unique<net::FramedServer>(std::move(listener),
                                                        loop);
  WorkerServer* raw = server.get();
  server->server_->set_on_session(
      [raw](net::TcpConnection&) -> std::shared_ptr<void> {
        SessionsCounter(raw->config_.worker_id.empty()
                            ? "unassigned"
                            : raw->config_.worker_id)
            .Increment();
        // The span lives as the session context, so it measures the
        // whole session exactly as the pre-FramedServer loop did.
        return std::make_shared<obs::TraceSpan>("fabric.worker.session");
      });
  return server;
}

Status WorkerServer::Run() {
  return server_->Run(
      [this](net::TcpConnection& conn, const net::Frame& frame) {
        return Dispatch(conn, frame);
      });
}

net::SessionAction WorkerServer::Dispatch(net::TcpConnection& conn,
                                          const net::Frame& frame) {
  Status handled = OkStatus();
  switch (frame.type) {
    case net::FrameType::kHello:
      handled = HandleHello(conn, frame.payload);
      break;
    case net::FrameType::kSubmit:
      handled = HandleSubmit(conn, frame.payload);
      break;
    case net::FrameType::kHeartbeat:
      handled = HandleHeartbeat(conn, frame.payload);
      break;
    case net::FrameType::kFinish:
      handled = HandleFinish(conn);
      break;
    default:
      SendError(conn, InvalidArgumentError(
                          std::string("unexpected frame ") +
                          net::FrameTypeName(frame.type)));
      return net::SessionAction::kContinue;
  }
  if (!handled.ok()) {
    // Reply failures (broken pipe and friends) end the session; the
    // coordinator redials.
    return net::SessionAction::kEndSession;
  }
  if (finished_.load(std::memory_order_relaxed)) {
    return net::SessionAction::kStopServer;
  }
  return net::SessionAction::kContinue;
}

Status WorkerServer::HandleHello(net::TcpConnection& conn,
                                 const std::string& payload) {
  StatusOr<net::HelloMessage> hello = net::DecodeHello(payload);
  if (!hello.ok()) {
    SendError(conn, hello.status());
    return OkStatus();
  }
  if (worker_ == nullptr) {
    Status rule = ValidateSplitRule(hello->split_rule);
    if (!rule.ok()) {
      SendError(conn, rule);
      return OkStatus();
    }
    // The coordinator names the anonymization backend in the hello; an
    // id this build cannot resolve rejects the session up front instead
    // of condensing under the wrong strategy.
    StatusOr<const backend::AnonymizationBackend*> resolved =
        backend::Registry::Global().Get(hello->backend);
    if (!resolved.ok()) {
      SendError(conn, resolved.status());
      return OkStatus();
    }
    WorkerOptions options;
    options.backend = (*resolved)->info().id;
    options.backend_version = (*resolved)->info().version;
    options.construction = (*resolved)->ConstructionHook();
    options.mode = WorkerMode::kDurableStream;
    options.group_size = static_cast<std::size_t>(hello->group_size);
    options.split_rule = static_cast<core::SplitRule>(hello->split_rule);
    options.checkpoint_root = config_.checkpoint_root;
    options.snapshot_interval =
        static_cast<std::size_t>(hello->snapshot_interval);
    options.sync_every_append = hello->sync_every_append != 0;
    options.queue_capacity = static_cast<std::size_t>(hello->queue_capacity);
    options.batch_size = static_cast<std::size_t>(hello->batch_size);
    options.seed = hello->seed;
    options.worker_id = config_.worker_id;
    StatusOr<std::unique_ptr<Worker>> worker = Worker::Start(
        static_cast<std::size_t>(hello->shard_id),
        static_cast<std::size_t>(hello->dim), options);
    if (!worker.ok()) {
      SendError(conn, worker.status());
      return OkStatus();
    }
    worker_ = *std::move(worker);
    hello_ = *hello;
  } else if (hello->shard_id != hello_.shard_id ||
             hello->dim != hello_.dim ||
             hello->group_size != hello_.group_size ||
             hello->seed != hello_.seed ||
             hello->backend != hello_.backend) {
    // A re-handshake (reconnect) must describe the same shard; anything
    // else is a mis-wired coordinator.
    SendError(conn, FailedPreconditionError(
                        "Hello does not match this worker's session "
                        "(already serving shard " +
                        std::to_string(hello_.shard_id) + ")"));
    return OkStatus();
  }
  net::HelloAckMessage ack;
  ack.worker_id = worker_->worker_id();
  ack.durable_total = worker_->durable_total();
  return conn.SendFrame(net::FrameType::kHelloAck,
                        net::EncodeHelloAck(ack), config_.io_timeout_ms);
}

Status WorkerServer::HandleSubmit(net::TcpConnection& conn,
                                  const std::string& payload) {
  if (worker_ == nullptr) {
    SendError(conn, FailedPreconditionError("Submit before Hello"));
    return OkStatus();
  }
  StatusOr<net::SubmitMessage> submit = net::DecodeSubmit(payload);
  if (!submit.ok()) {
    SendError(conn, submit.status());
    return OkStatus();
  }
  for (const linalg::Vector& record : submit->records) {
    Status status = worker_->Submit(record);
    if (!status.ok()) {
      SendError(conn, status);
      return OkStatus();
    }
  }
  {
    obs::Timer timer;
    Status flushed = worker_->Flush(config_.flush_timeout_ms);
    FlushSeconds(worker_->worker_id()).Observe(timer.ElapsedSeconds());
    if (!flushed.ok()) {
      SendError(conn, flushed);
      return OkStatus();
    }
  }
  net::SubmitAckMessage ack;
  ack.durable_total = worker_->durable_total();
  return conn.SendFrame(net::FrameType::kSubmitAck,
                        net::EncodeSubmitAck(ack), config_.io_timeout_ms);
}

Status WorkerServer::HandleHeartbeat(net::TcpConnection& conn,
                                     const std::string& payload) {
  // Chaos hook: an armed "fabric.heartbeat" probe makes this worker miss
  // (kError) or delay (kLatency) beats, driving the coordinator's
  // liveness machinery without touching the network.
  Status injected = FailPoint::Maybe("fabric.heartbeat");
  if (!injected.ok()) {
    return OkStatus();  // swallow the beat: the coordinator times out
  }
  StatusOr<net::HeartbeatMessage> beat = net::DecodeHeartbeat(payload);
  if (!beat.ok()) {
    SendError(conn, beat.status());
    return OkStatus();
  }
  net::HeartbeatAckMessage ack;
  ack.nonce = beat->nonce;
  ack.durable_total = worker_ != nullptr ? worker_->durable_total() : 0;
  return conn.SendFrame(net::FrameType::kHeartbeatAck,
                        net::EncodeHeartbeatAck(ack),
                        config_.io_timeout_ms);
}

Status WorkerServer::HandleFinish(net::TcpConnection& conn) {
  if (worker_ == nullptr) {
    SendError(conn, FailedPreconditionError("Finish before Hello"));
    return OkStatus();
  }
  obs::TraceSpan span("fabric.worker.finish");
  // Pure streaming consumes no randomness; the seed only feeds retry
  // jitter inside the pipeline.
  Rng rng(hello_.seed);
  StatusOr<core::CondensedGroupSet> groups = worker_->Finish(rng);
  if (!groups.ok()) {
    SendError(conn, groups.status());
    return OkStatus();
  }
  net::FinishResultMessage result;
  CONDENSA_CHECK(worker_->stream_stats().has_value());
  result.stats = *worker_->stream_stats();
  result.groups_text = core::SerializeGroupSet(*groups);
  Status sent =
      conn.SendFrame(net::FrameType::kFinishResult,
                     net::EncodeFinishResult(result), config_.io_timeout_ms);
  if (sent.ok()) {
    finished_.store(true, std::memory_order_relaxed);
  }
  return sent;
}

void WorkerServer::SendError(net::TcpConnection& conn,
                             const Status& status) {
  net::SendErrorFrame(conn, status, config_.io_timeout_ms);
}

}  // namespace condensa::shard
