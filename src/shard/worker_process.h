// Fork-based process harness for fabric workers.
//
// Spawns a WorkerServer in a child process, with the listening socket
// bound in the PARENT before fork — so the parent knows the port without
// a rendezvous, and a respawn can reclaim the exact same port
// (SO_REUSEADDR) to model a worker restarting in place. The chaos soak
// uses Kill() (SIGKILL — no shutdown handler runs, the durability
// guarantee has to carry the crash) followed by a respawn on the
// original port to exercise recover-and-rejoin.
//
// The child serves until Finish and then _exit()s without running parent
// destructors. Under TSan, fork from a threaded parent needs
// TSAN_OPTIONS=die_after_fork=0 (set in the CI chaos job).

#ifndef CONDENSA_SHARD_WORKER_PROCESS_H_
#define CONDENSA_SHARD_WORKER_PROCESS_H_

#include <sys/types.h>

#include <cstdint>
#include <string>

#include "common/status.h"
#include "shard/worker_server.h"

namespace condensa::shard {

class WorkerProcess {
 public:
  WorkerProcess() = default;
  // Kills (SIGKILL) and reaps a still-running child.
  ~WorkerProcess();

  WorkerProcess(WorkerProcess&& other) noexcept;
  WorkerProcess& operator=(WorkerProcess&& other) noexcept;
  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;

  // Binds `config.host:config.port` (0 = pick a free port), forks, and
  // runs a WorkerServer over the bound listener in the child. On return
  // the parent holds the pid and resolved port; the child never returns.
  static StatusOr<WorkerProcess> Spawn(WorkerServerConfig config);

  bool running() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }
  std::uint16_t port() const { return port_; }

  // SIGKILL + reap. No-op when not running.
  void Kill();

  // Blocks until the child exits, reaps it, and returns its wait status
  // (as from waitpid). kFailedPrecondition when not running.
  StatusOr<int> Wait();

 private:
  pid_t pid_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace condensa::shard

#endif  // CONDENSA_SHARD_WORKER_PROCESS_H_
