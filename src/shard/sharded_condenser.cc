#include "shard/sharded_condenser.h"

#include <functional>
#include <memory>
#include <utility>

#include "backend/registry.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace condensa::shard {

Status ShardedCondenserConfig::Validate() const {
  if (num_shards == 0) {
    return InvalidArgumentError("num_shards must be >= 1");
  }
  if (group_size == 0) {
    return InvalidArgumentError("group_size must be >= 1");
  }
  if (mode == WorkerMode::kDurableStream) {
    if (group_size < 2) {
      return InvalidArgumentError(
          "kDurableStream requires group_size >= 2 (streaming runtime "
          "floor)");
    }
    if (checkpoint_root.empty()) {
      return InvalidArgumentError("kDurableStream requires a checkpoint_root");
    }
  }
  if (backend.empty()) {
    return InvalidArgumentError("backend id must be non-empty");
  }
  return OkStatus();
}

ShardedCondenser::ShardedCondenser(ShardedCondenserConfig config)
    : config_(std::move(config)) {}

StatusOr<ShardedCondenseResult> ShardedCondenser::Condense(
    const std::vector<linalg::Vector>& points, Rng& rng) const {
  CONDENSA_RETURN_IF_ERROR(config_.Validate());
  if (points.empty()) {
    return InvalidArgumentError("cannot condense an empty point set");
  }
  const std::size_t dim = points.front().dim();
  for (const linalg::Vector& point : points) {
    if (point.dim() != dim) {
      return InvalidArgumentError("points disagree on record dimension");
    }
  }

  obs::TraceSpan span("shard.condense");
  const std::size_t n = config_.num_shards;

  Router router({.num_shards = n, .policy = config_.policy});
  std::vector<std::vector<linalg::Vector>> partitions;
  {
    obs::TraceSpan scatter_span("shard.scatter");
    partitions = router.Scatter(points);
  }

  CONDENSA_ASSIGN_OR_RETURN(
      const backend::AnonymizationBackend* anonymization_backend,
      backend::Registry::Global().Get(config_.backend));

  WorkerOptions worker_options;
  worker_options.mode = config_.mode;
  worker_options.group_size = config_.group_size;
  worker_options.split_rule = config_.split_rule;
  worker_options.checkpoint_root = config_.checkpoint_root;
  worker_options.snapshot_interval = config_.snapshot_interval;
  worker_options.sync_every_append = config_.sync_every_append;
  worker_options.backend = anonymization_backend->info().id;
  worker_options.backend_version = anonymization_backend->info().version;
  worker_options.construction = anonymization_backend->ConstructionHook();

  // Substreams and seeds are derived in shard order on this thread, so
  // the per-shard randomness is fixed before any worker runs.
  std::vector<Rng> streams = Router::SplitStreams(rng, n);

  // One task per shard, each writing into its pre-allocated slot; the
  // fan-out is bit-identical at any thread count.
  std::vector<StatusOr<core::CondensedGroupSet>> shard_groups(
      n, StatusOr<core::CondensedGroupSet>(core::CondensedGroupSet(0, 0)));
  std::vector<ShardReport> reports(n);
  {
    obs::TraceSpan condense_span("shard.condense.workers");
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (std::size_t shard = 0; shard < n; ++shard) {
      tasks.push_back([&, shard]() {
        WorkerOptions options = worker_options;
        options.seed = streams[shard].NextUint64();
        StatusOr<std::unique_ptr<Worker>> worker =
            Worker::Start(shard, dim, options);
        if (!worker.ok()) {
          shard_groups[shard] = worker.status();
          return;
        }
        for (const linalg::Vector& record : partitions[shard]) {
          Status submitted = (*worker)->Submit(record);
          if (!submitted.ok()) {
            shard_groups[shard] = std::move(submitted);
            return;
          }
        }
        shard_groups[shard] = (*worker)->Finish(streams[shard]);
        reports[shard] = ShardReport{
            .shard_id = shard,
            .records = (*worker)->records_submitted(),
        };
      });
    }
    ParallelRun(ThreadPool::ResolveThreadCount(config_.num_threads), tasks);
  }

  std::vector<core::CondensedGroupSet> shard_sets;
  shard_sets.reserve(n);
  for (std::size_t shard = 0; shard < n; ++shard) {
    CONDENSA_ASSIGN_OR_RETURN(core::CondensedGroupSet set,
                              std::move(shard_groups[shard]));
    const core::PrivacySummary summary = set.Summary();
    reports[shard].groups = summary.num_groups;
    reports[shard].min_group_size = summary.min_group_size;
    shard_sets.push_back(std::move(set));
  }

  ShardedCondenseResult result;
  result.shards = std::move(reports);
  Coordinator coordinator(
      {.group_size = config_.group_size, .split_rule = config_.split_rule});
  CONDENSA_ASSIGN_OR_RETURN(
      result.groups,
      coordinator.Gather(std::move(shard_sets), &result.gather));
  return result;
}

}  // namespace condensa::shard
