// Deterministic record-to-shard routing for scatter/gather condensation.
//
// The condensed representation is additive (Observations 1-2): a group is
// fully described by (Fs, Sc, n), and GroupStatistics::Merge combines two
// groups' moments exactly. That makes condensation shardable with zero
// statistical approximation in the gather step — each shard condenses its
// partition independently and the coordinator merges the shard-local
// aggregates (see shard/coordinator.h). The router is the scatter half:
// a pure function from (record, arrival index) to a shard id, so a fixed
// (policy, shard count) replays the exact same partition on every run —
// the first link in the determinism contract documented in
// docs/scaling.md.
//
// Policies:
//   kHash        shard = mix(record bytes) mod N. Content-addressed:
//                replays identically under reordering-free restarts and
//                keeps duplicate records on one shard. The hash mixes the
//                IEEE-754 bit patterns, so -0.0 and 0.0 route differently
//                (bitwise determinism is the contract, not numeric
//                equivalence).
//   kRoundRobin  shard = arrival index mod N. Perfectly balanced and
//                locality-free; the right choice for adversarially
//                clustered streams where a hash would still be balanced
//                but each shard sees only one region of space.

#ifndef CONDENSA_SHARD_ROUTER_H_
#define CONDENSA_SHARD_ROUTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "linalg/vector.h"

namespace condensa::shard {

enum class ShardPolicy {
  kHash = 0,
  kRoundRobin = 1,
};

struct RouterOptions {
  // Number of shards N. Must be >= 1.
  std::size_t num_shards = 1;
  ShardPolicy policy = ShardPolicy::kHash;
};

class Router {
 public:
  explicit Router(RouterOptions options);

  std::size_t num_shards() const { return options_.num_shards; }
  ShardPolicy policy() const { return options_.policy; }

  // Shard id for the record that arrived `index`-th (0-based). Pure:
  // depends only on (record, index, options).
  std::size_t ShardOf(const linalg::Vector& record, std::size_t index) const;

  // Streaming form: routes `record` as the next arrival and advances the
  // internal arrival counter. Thread-safe; under kRoundRobin the shard
  // assignment of concurrent callers depends on their interleaving, so
  // the bit-identical-replay contract requires a single producer (kHash
  // is order-free and keeps the contract for any producer count).
  std::size_t Route(const linalg::Vector& record);

  // Membership-aware form: routes among an explicit set of live shard
  // ids instead of the full 0..N-1 range. Pure in (record, index,
  // members) — removing a member and later re-adding it reproduces the
  // original assignment for the surviving set exactly, which is what
  // lets the fabric re-route in-flight records during an outage without
  // perturbing the shards that stayed up. `members` must be non-empty;
  // with the full membership {0..N-1} in order this is ShardOf.
  std::size_t ShardAmong(const linalg::Vector& record, std::size_t index,
                         const std::vector<std::size_t>& members) const;

  // Partitions a batch, preserving arrival order within each shard.
  // Every record lands in exactly one partition.
  std::vector<std::vector<linalg::Vector>> Scatter(
      const std::vector<linalg::Vector>& records) const;

  // One statistically independent Rng substream per shard, derived from
  // `rng` in shard order — the per-shard seeds depend only on the parent
  // seed and the shard count, never on thread scheduling.
  static std::vector<Rng> SplitStreams(Rng& rng, std::size_t num_shards);

  // Stable 64-bit content hash of a record's IEEE-754 bit patterns
  // (exposed for tests and for deduplication tooling).
  static std::uint64_t HashRecord(const linalg::Vector& record);

 private:
  RouterOptions options_;
  std::atomic<std::size_t> next_index_{0};
};

}  // namespace condensa::shard

#endif  // CONDENSA_SHARD_ROUTER_H_
