#include "shard/router.h"

#include <cstring>

#include "common/check.h"

namespace condensa::shard {
namespace {

// SplitMix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

Router::Router(RouterOptions options) : options_(options) {
  CONDENSA_CHECK_GE(options_.num_shards, 1u);
}

std::uint64_t Router::HashRecord(const linalg::Vector& record) {
  std::uint64_t hash = Mix64(record.dim());
  for (std::size_t i = 0; i < record.dim(); ++i) {
    std::uint64_t bits = 0;
    const double value = record[i];
    std::memcpy(&bits, &value, sizeof(bits));
    hash = Mix64(hash ^ bits);
  }
  return hash;
}

std::size_t Router::ShardOf(const linalg::Vector& record,
                            std::size_t index) const {
  if (options_.num_shards == 1) return 0;
  switch (options_.policy) {
    case ShardPolicy::kRoundRobin:
      return index % options_.num_shards;
    case ShardPolicy::kHash:
      return static_cast<std::size_t>(HashRecord(record) %
                                      options_.num_shards);
  }
  return 0;  // unreachable
}

std::size_t Router::ShardAmong(
    const linalg::Vector& record, std::size_t index,
    const std::vector<std::size_t>& members) const {
  CONDENSA_CHECK(!members.empty());
  if (members.size() == 1) return members[0];
  switch (options_.policy) {
    case ShardPolicy::kRoundRobin:
      return members[index % members.size()];
    case ShardPolicy::kHash:
      return members[static_cast<std::size_t>(HashRecord(record) %
                                              members.size())];
  }
  return members[0];  // unreachable
}

std::size_t Router::Route(const linalg::Vector& record) {
  const std::size_t index =
      next_index_.fetch_add(1, std::memory_order_relaxed);
  return ShardOf(record, index);
}

std::vector<std::vector<linalg::Vector>> Router::Scatter(
    const std::vector<linalg::Vector>& records) const {
  std::vector<std::vector<linalg::Vector>> partitions(options_.num_shards);
  if (options_.num_shards > 1) {
    // Pre-size: round-robin is exact, hash is approximately uniform.
    const std::size_t expected =
        records.size() / options_.num_shards + 1;
    for (auto& partition : partitions) {
      partition.reserve(expected);
    }
  } else if (!partitions.empty()) {
    partitions[0].reserve(records.size());
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    partitions[ShardOf(records[i], i)].push_back(records[i]);
  }
  return partitions;
}

std::vector<Rng> Router::SplitStreams(Rng& rng, std::size_t num_shards) {
  std::vector<Rng> streams;
  streams.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    streams.push_back(rng.Split());
  }
  return streams;
}

}  // namespace condensa::shard
