// Cholesky (L Lᵀ) factorization of symmetric positive-definite matrices.
//
// Used by the synthetic data generators to draw correlated Gaussian vectors
// (x = mean + L z with z ~ N(0, I)), and available as a library utility.

#ifndef CONDENSA_LINALG_CHOLESKY_H_
#define CONDENSA_LINALG_CHOLESKY_H_

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace condensa::linalg {

// Returns the lower-triangular L with A = L Lᵀ. Fails with InvalidArgument
// when `a` is empty, non-square, or non-symmetric, and with
// FailedPrecondition when `a` is not positive definite (a non-positive
// pivot is encountered beyond round-off tolerance).
StatusOr<Matrix> CholeskyFactor(const Matrix& a);

// Solves A x = b given the Cholesky factor L of A (forward + back
// substitution). `l` must be lower-triangular with positive diagonal.
Vector CholeskySolve(const Matrix& l, const Vector& b);

// Log-determinant of A from its Cholesky factor: 2 Σ log L_ii.
double CholeskyLogDet(const Matrix& l);

}  // namespace condensa::linalg

#endif  // CONDENSA_LINALG_CHOLESKY_H_
