// Principal component analysis.
//
// PCA is the purest second-order analysis: its output is exactly the
// eigenstructure the condensation approach is designed to preserve. The
// benches use it (with PrincipalSubspaceAffinity) to show that the leading
// components of an anonymized release span the same subspace as the
// original data's.

#ifndef CONDENSA_LINALG_PCA_H_
#define CONDENSA_LINALG_PCA_H_

#include <vector>

#include "common/status.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace condensa::linalg {

struct PcaResult {
  Vector mean;
  // Column i is the i-th principal direction (unit length), sorted by
  // decreasing explained variance.
  Matrix components;
  // Variance along each component (eigenvalues of the covariance).
  Vector explained_variance;

  // Fraction of total variance captured by the first `count` components.
  double ExplainedVarianceRatio(std::size_t count) const;

  // Projects a point onto the first `count` components.
  Vector Project(const Vector& point, std::size_t count) const;

  // Reconstructs a point from its `count`-dimensional projection.
  Vector Reconstruct(const Vector& projection, std::size_t count) const;
};

// Fits PCA on `points` (non-empty, consistent dims).
StatusOr<PcaResult> ComputePca(const std::vector<Vector>& points);

// Mean squared residual of projecting `points` onto the first `count`
// components of `pca` and reconstructing.
double ReconstructionError(const PcaResult& pca,
                           const std::vector<Vector>& points,
                           std::size_t count);

// Affinity in [0, 1] between the subspaces spanned by the first `count`
// components of two PCA fits: the normalized Frobenius inner product of
// the projection operators (1 = identical subspaces, 0 = orthogonal).
// Invariant to the sign/rotation ambiguity of individual components.
StatusOr<double> PrincipalSubspaceAffinity(const PcaResult& a,
                                           const PcaResult& b,
                                           std::size_t count);

}  // namespace condensa::linalg

#endif  // CONDENSA_LINALG_PCA_H_
