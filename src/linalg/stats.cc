#include "linalg/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace condensa::linalg {

Vector MeanVector(const std::vector<Vector>& points) {
  CONDENSA_CHECK(!points.empty());
  Vector mean(points.front().dim());
  for (const Vector& p : points) {
    mean += p;
  }
  mean /= static_cast<double>(points.size());
  return mean;
}

Matrix CovarianceMatrix(const std::vector<Vector>& points) {
  CONDENSA_CHECK(!points.empty());
  const std::size_t d = points.front().dim();
  Vector mean = MeanVector(points);
  Matrix cov(d, d);
  for (const Vector& p : points) {
    for (std::size_t i = 0; i < d; ++i) {
      double di = p[i] - mean[i];
      for (std::size_t j = i; j < d; ++j) {
        cov(i, j) += di * (p[j] - mean[j]);
      }
    }
  }
  double inv_n = 1.0 / static_cast<double>(points.size());
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      cov(i, j) *= inv_n;
      cov(j, i) = cov(i, j);
    }
  }
  return cov;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  CONDENSA_CHECK_EQ(xs.size(), ys.size());
  CONDENSA_CHECK_GE(xs.size(), 2u);
  const double n = static_cast<double>(xs.size());
  double mean_x = 0.0, mean_y = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mean_x += xs[i];
    mean_y += ys[i];
  }
  mean_x /= n;
  mean_y /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double dx = xs[i] - mean_x;
    double dy = ys[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

ScalarStats ComputeScalarStats(const std::vector<double>& values) {
  CONDENSA_CHECK(!values.empty());
  ScalarStats stats;
  stats.min = values.front();
  stats.max = values.front();
  double total = 0.0;
  for (double v : values) {
    total += v;
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
  }
  stats.mean = total / static_cast<double>(values.size());
  double ssq = 0.0;
  for (double v : values) {
    double d = v - stats.mean;
    ssq += d * d;
  }
  stats.stddev = std::sqrt(ssq / static_cast<double>(values.size()));
  return stats;
}

}  // namespace condensa::linalg
