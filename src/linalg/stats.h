// Descriptive statistics over collections of points.

#ifndef CONDENSA_LINALG_STATS_H_
#define CONDENSA_LINALG_STATS_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace condensa::linalg {

// Mean of `points` (all the same dimension; `points` must be non-empty).
Vector MeanVector(const std::vector<Vector>& points);

// Population covariance matrix of `points` (divides by n, matching the
// paper's Observation 2, not by n-1). Requires a non-empty input.
Matrix CovarianceMatrix(const std::vector<Vector>& points);

// Pearson correlation of two equal-length sequences. Returns 0 when either
// sequence has zero variance. Requires size >= 2.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

// Mean and population standard deviation of a scalar sequence.
struct ScalarStats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};
ScalarStats ComputeScalarStats(const std::vector<double>& values);

}  // namespace condensa::linalg

#endif  // CONDENSA_LINALG_STATS_H_
