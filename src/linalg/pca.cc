#include "linalg/pca.h"

#include <cmath>

#include "common/check.h"
#include "linalg/stats.h"

namespace condensa::linalg {

double PcaResult::ExplainedVarianceRatio(std::size_t count) const {
  CONDENSA_CHECK_LE(count, explained_variance.dim());
  double total = explained_variance.Sum();
  if (total <= 0.0) return count > 0 ? 1.0 : 0.0;
  double kept = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    kept += explained_variance[i];
  }
  return kept / total;
}

Vector PcaResult::Project(const Vector& point, std::size_t count) const {
  CONDENSA_CHECK_EQ(point.dim(), mean.dim());
  CONDENSA_CHECK_LE(count, components.cols());
  Vector centred = point - mean;
  Vector projection(count);
  for (std::size_t j = 0; j < count; ++j) {
    double total = 0.0;
    for (std::size_t r = 0; r < centred.dim(); ++r) {
      total += components(r, j) * centred[r];
    }
    projection[j] = total;
  }
  return projection;
}

Vector PcaResult::Reconstruct(const Vector& projection,
                              std::size_t count) const {
  CONDENSA_CHECK_EQ(projection.dim(), count);
  CONDENSA_CHECK_LE(count, components.cols());
  Vector point = mean;
  for (std::size_t j = 0; j < count; ++j) {
    for (std::size_t r = 0; r < point.dim(); ++r) {
      point[r] += projection[j] * components(r, j);
    }
  }
  return point;
}

StatusOr<PcaResult> ComputePca(const std::vector<Vector>& points) {
  if (points.empty()) {
    return InvalidArgumentError("cannot fit PCA on an empty point set");
  }
  const std::size_t d = points.front().dim();
  for (const Vector& p : points) {
    if (p.dim() != d) {
      return InvalidArgumentError("points have inconsistent dimensions");
    }
  }

  PcaResult result;
  result.mean = MeanVector(points);
  Matrix covariance = CovarianceMatrix(points);
  CONDENSA_ASSIGN_OR_RETURN(EigenDecomposition eigen,
                            CovarianceEigenDecomposition(covariance));
  result.components = std::move(eigen.eigenvectors);
  result.explained_variance = std::move(eigen.eigenvalues);
  return result;
}

double ReconstructionError(const PcaResult& pca,
                           const std::vector<Vector>& points,
                           std::size_t count) {
  CONDENSA_CHECK(!points.empty());
  double total = 0.0;
  for (const Vector& p : points) {
    Vector reconstructed = pca.Reconstruct(pca.Project(p, count), count);
    total += SquaredDistance(p, reconstructed);
  }
  return total / static_cast<double>(points.size());
}

StatusOr<double> PrincipalSubspaceAffinity(const PcaResult& a,
                                           const PcaResult& b,
                                           std::size_t count) {
  if (count == 0) {
    return InvalidArgumentError("subspace dimension must be positive");
  }
  if (a.components.rows() != b.components.rows()) {
    return InvalidArgumentError("PCA dimensions differ");
  }
  if (count > a.components.cols() || count > b.components.cols()) {
    return InvalidArgumentError("count exceeds available components");
  }

  // ‖A_kᵀ B_k‖_F² / k where A_k, B_k hold the leading k components: this
  // equals (1/k) Σ cos²(principal angles), so 1 iff identical subspaces.
  double total = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = 0; j < count; ++j) {
      double dot = 0.0;
      for (std::size_t r = 0; r < a.components.rows(); ++r) {
        dot += a.components(r, i) * b.components(r, j);
      }
      total += dot * dot;
    }
  }
  return total / static_cast<double>(count);
}

}  // namespace condensa::linalg
