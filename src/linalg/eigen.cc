#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace condensa::linalg {
namespace {

// Counters are looked up per flush (not cached as references): a test
// calling MetricsRegistry::Reset() destroys every registered series, so
// a cached reference would dangle across the reset. Lookups happen at
// flush granularity (every kFlushEvery decompositions), where the map
// walk is noise.

// A 2x2 decomposition runs in ~200ns, so even two relaxed fetch_adds
// per call are measurable. Successful runs therefore tally into
// thread-locals and flush to the registry every kFlushEvery runs (and
// at thread exit; the registry is a leaked singleton, so flushing from
// a thread_local destructor is safe).
struct EigenTally {
  std::uint64_t runs = 0;
  std::uint64_t sweeps = 0;

  static constexpr std::uint64_t kFlushEvery = 16;

  void Record(int sweep_count) {
    ++runs;
    sweeps += static_cast<std::uint64_t>(sweep_count);
    if (runs >= kFlushEvery) Flush();
  }

  void Flush() {
    if (runs == 0) return;
    obs::MetricsRegistry& registry = obs::DefaultRegistry();
    registry.GetCounter("condensa_eigen_decompositions_total")
        .Increment(runs);
    registry.GetCounter("condensa_eigen_sweeps_total").Increment(sweeps);
    runs = 0;
    sweeps = 0;
  }

  ~EigenTally() { Flush(); }
};

thread_local EigenTally eigen_tally;

// Sum of squared off-diagonal entries.
double OffDiagonalNorm(const Matrix& a) {
  double total = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = r + 1; c < a.cols(); ++c) {
      total += 2.0 * a(r, c) * a(r, c);
    }
  }
  return std::sqrt(total);
}

}  // namespace

Matrix EigenDecomposition::Reconstruct() const {
  Matrix lambda = Matrix::Diagonal(eigenvalues);
  return MatMul(MatMul(eigenvectors, lambda), eigenvectors.Transposed());
}

StatusOr<EigenDecomposition> JacobiEigenDecomposition(
    const Matrix& a, const JacobiOptions& options) {
  if (a.empty()) {
    return InvalidArgumentError("eigendecomposition of empty matrix");
  }
  if (a.rows() != a.cols()) {
    return InvalidArgumentError("eigendecomposition requires a square matrix");
  }
  double scale = std::max(1.0, a.MaxAbs());
  if (!a.IsSymmetric(1e-8 * scale)) {
    return InvalidArgumentError("eigendecomposition requires symmetry");
  }

  const std::size_t n = a.rows();
  Matrix work = a;
  // Symmetrize exactly to eliminate tiny asymmetries.
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r + 1; c < n; ++c) {
      double avg = 0.5 * (work(r, c) + work(c, r));
      work(r, c) = avg;
      work(c, r) = avg;
    }
  }
  Matrix vectors = Matrix::Identity(n);

  // Tests arm this probe to exercise the non-convergence path without
  // having to construct a pathological matrix.
  if (Status forced = FailPoint::Maybe("eigen.jacobi"); !forced.ok()) {
    return forced;
  }

  const double tolerance = options.relative_tolerance * scale;
  int sweep = 0;
  while (OffDiagonalNorm(work) > tolerance) {
    if (++sweep > options.max_sweeps) {
      obs::DefaultRegistry()
          .GetCounter("condensa_eigen_failures_total")
          .Increment();
      return InternalError("Jacobi eigendecomposition failed to converge");
    }
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double apq = work(p, q);
        if (std::abs(apq) <= tolerance * 1e-2) continue;
        double app = work(p, p);
        double aqq = work(q, q);
        // Classic Jacobi rotation: choose t = tan(theta) so that the (p,q)
        // entry is annihilated, via the stable formula using theta-cotangent.
        double tau = (aqq - app) / (2.0 * apq);
        double t;
        if (tau >= 0.0) {
          t = 1.0 / (tau + std::sqrt(1.0 + tau * tau));
        } else {
          t = -1.0 / (-tau + std::sqrt(1.0 + tau * tau));
        }
        double c = 1.0 / std::sqrt(1.0 + t * t);
        double s = t * c;

        // Apply the rotation A <- Jᵀ A J on rows/columns p and q.
        for (std::size_t i = 0; i < n; ++i) {
          double aip = work(i, p);
          double aiq = work(i, q);
          work(i, p) = c * aip - s * aiq;
          work(i, q) = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          double api = work(p, i);
          double aqi = work(q, i);
          work(p, i) = c * api - s * aqi;
          work(q, i) = s * api + c * aqi;
        }
        // Accumulate eigenvectors: V <- V J.
        for (std::size_t i = 0; i < n; ++i) {
          double vip = vectors(i, p);
          double viq = vectors(i, q);
          vectors(i, p) = c * vip - s * viq;
          vectors(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  eigen_tally.Record(sweep);

  // Collect and sort eigenpairs by decreasing eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> raw(n);
  for (std::size_t i = 0; i < n; ++i) raw[i] = work(i, i);
  std::stable_sort(order.begin(), order.end(),
                   [&raw](std::size_t x, std::size_t y) {
                     return raw[x] > raw[y];
                   });

  EigenDecomposition result;
  result.eigenvalues = Vector(n);
  result.eigenvectors = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    result.eigenvalues[i] = raw[order[i]];
    for (std::size_t r = 0; r < n; ++r) {
      result.eigenvectors(r, i) = vectors(r, order[i]);
    }
  }
  return result;
}

StatusOr<EigenDecomposition> CovarianceEigenDecomposition(
    const Matrix& covariance, const JacobiOptions& options) {
  CONDENSA_ASSIGN_OR_RETURN(EigenDecomposition decomposition,
                            JacobiEigenDecomposition(covariance, options));
  for (std::size_t i = 0; i < decomposition.eigenvalues.dim(); ++i) {
    if (decomposition.eigenvalues[i] < 0.0) {
      decomposition.eigenvalues[i] = 0.0;
      obs::DefaultRegistry()
          .GetCounter("condensa_eigen_clamped_eigenvalues_total")
          .Increment();
    }
  }
  return decomposition;
}

}  // namespace condensa::linalg
