// Dense real vector with the small set of operations condensa needs.
//
// `Vector` is a value type wrapping std::vector<double>. It is deliberately
// minimal — the library operates on group statistics and covariance
// matrices of modest dimension (d <= ~50 in all paper workloads), so
// clarity beats micro-optimization here.

#ifndef CONDENSA_LINALG_VECTOR_H_
#define CONDENSA_LINALG_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"

namespace condensa::linalg {

class Vector {
 public:
  Vector() = default;
  // Creates a zero vector of the given dimension.
  explicit Vector(std::size_t dim) : values_(dim, 0.0) {}
  Vector(std::size_t dim, double fill) : values_(dim, fill) {}
  Vector(std::initializer_list<double> values) : values_(values) {}
  explicit Vector(std::vector<double> values) : values_(std::move(values)) {}

  Vector(const Vector&) = default;
  Vector& operator=(const Vector&) = default;
  Vector(Vector&&) = default;
  Vector& operator=(Vector&&) = default;

  std::size_t dim() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double operator[](std::size_t i) const {
    CONDENSA_DCHECK_LT(i, values_.size());
    return values_[i];
  }
  double& operator[](std::size_t i) {
    CONDENSA_DCHECK_LT(i, values_.size());
    return values_[i];
  }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  const double* data() const { return values_.data(); }
  double* data() { return values_.data(); }

  auto begin() const { return values_.begin(); }
  auto end() const { return values_.end(); }
  auto begin() { return values_.begin(); }
  auto end() { return values_.end(); }

  // Element-wise arithmetic. Dimensions must match.
  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double scale);
  Vector& operator/=(double scale);

  // Euclidean norm and its square.
  double Norm() const;
  double SquaredNorm() const;

  // Sum of entries.
  double Sum() const;

  // Returns a copy scaled to unit Euclidean norm. Requires Norm() > 0.
  Vector Normalized() const;

  // Renders "[v0, v1, ...]" with 6 significant digits (debugging aid).
  std::string ToString() const;

 private:
  std::vector<double> values_;
};

Vector operator+(Vector a, const Vector& b);
Vector operator-(Vector a, const Vector& b);
Vector operator*(Vector v, double scale);
Vector operator*(double scale, Vector v);
Vector operator/(Vector v, double scale);

// Inner product. Dimensions must match.
double Dot(const Vector& a, const Vector& b);

// Euclidean distance and its square. Dimensions must match.
double Distance(const Vector& a, const Vector& b);
double SquaredDistance(const Vector& a, const Vector& b);

// The shared inner loop of SquaredDistance: sums (a[i] - b[i])^2 over
// `dim` doubles in index order, with no dimension check. For per-record
// hot loops that have already validated dimensions once per batch at the
// API boundary — everything else should call SquaredDistance.
double SquaredDistanceSpan(const double* a, const double* b,
                           std::size_t dim);

// True when |a[i] - b[i]| <= tolerance for all i (and dims match).
bool ApproxEqual(const Vector& a, const Vector& b, double tolerance);

}  // namespace condensa::linalg

#endif  // CONDENSA_LINALG_VECTOR_H_
