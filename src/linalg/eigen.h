// Eigendecomposition of real symmetric matrices.
//
// This is the `C(G) = P(G) Λ(G) P(G)ᵀ` step of the paper (Section 2.1,
// Equation 1): condensa uses it to find the orthonormal axis system of a
// condensed group's covariance matrix, both for anonymized-data generation
// and for the dynamic split along the largest eigenvector.
//
// Algorithm: cyclic Jacobi rotations with an off-diagonal threshold. For the
// symmetric PSD matrices and modest dimensions (d <= ~50) of the paper's
// workloads this is simple, numerically robust, and produces an orthonormal
// eigenvector set directly.

#ifndef CONDENSA_LINALG_EIGEN_H_
#define CONDENSA_LINALG_EIGEN_H_

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace condensa::linalg {

// Result of a symmetric eigendecomposition, sorted by decreasing eigenvalue
// as the paper assumes (λ₁ >= λ₂ >= ... >= λ_d).
struct EigenDecomposition {
  // eigenvalues[i] is the i-th largest eigenvalue.
  Vector eigenvalues;
  // Column i of `eigenvectors` is the unit eigenvector for eigenvalues[i].
  Matrix eigenvectors;

  // Returns eigenvector i as a Vector (column copy).
  Vector Eigenvector(std::size_t i) const { return eigenvectors.Col(i); }

  // Reconstructs P Λ Pᵀ.
  Matrix Reconstruct() const;
};

struct JacobiOptions {
  // Stop when every off-diagonal entry is <= tolerance * max(1, |A|_max).
  double relative_tolerance = 1e-12;
  // Safety bound on full sweeps; Jacobi converges quadratically, so this is
  // generous for any realistic input.
  int max_sweeps = 64;
};

// Decomposes the symmetric matrix `a`. Fails with InvalidArgument when `a`
// is empty, non-square or not symmetric (to 1e-8 relative), and with
// Internal when the sweep limit is exhausted (pathological input).
StatusOr<EigenDecomposition> JacobiEigenDecomposition(
    const Matrix& a, const JacobiOptions& options = {});

// Convenience: eigendecomposition with eigenvalues clamped at >= 0, for
// covariance matrices whose tiny negative eigenvalues are round-off.
StatusOr<EigenDecomposition> CovarianceEigenDecomposition(
    const Matrix& covariance, const JacobiOptions& options = {});

}  // namespace condensa::linalg

#endif  // CONDENSA_LINALG_EIGEN_H_
