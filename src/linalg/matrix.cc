#include "linalg/matrix.h"

#include <cmath>
#include <cstdio>

namespace condensa::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  values_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    CONDENSA_CHECK_EQ(row.size(), cols_);
    for (double v : row) {
      values_.push_back(v);
    }
  }
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    out(i, i) = 1.0;
  }
  return out;
}

Matrix Matrix::Diagonal(const Vector& diagonal) {
  Matrix out(diagonal.dim(), diagonal.dim());
  for (std::size_t i = 0; i < diagonal.dim(); ++i) {
    out(i, i) = diagonal[i];
  }
  return out;
}

Vector Matrix::Row(std::size_t r) const {
  CONDENSA_CHECK_LT(r, rows_);
  Vector out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) {
    out[c] = (*this)(r, c);
  }
  return out;
}

Vector Matrix::Col(std::size_t c) const {
  CONDENSA_CHECK_LT(c, cols_);
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    out[r] = (*this)(r, c);
  }
  return out;
}

void Matrix::SetRow(std::size_t r, const Vector& row) {
  CONDENSA_CHECK_LT(r, rows_);
  CONDENSA_CHECK_EQ(row.dim(), cols_);
  for (std::size_t c = 0; c < cols_; ++c) {
    (*this)(r, c) = row[c];
  }
}

void Matrix::SetCol(std::size_t c, const Vector& col) {
  CONDENSA_CHECK_LT(c, cols_);
  CONDENSA_CHECK_EQ(col.dim(), rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    (*this)(r, c) = col[r];
  }
}

Matrix& Matrix::operator+=(const Matrix& other) {
  CONDENSA_CHECK_EQ(rows_, other.rows_);
  CONDENSA_CHECK_EQ(cols_, other.cols_);
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] += other.values_[i];
  }
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  CONDENSA_CHECK_EQ(rows_, other.rows_);
  CONDENSA_CHECK_EQ(cols_, other.cols_);
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] -= other.values_[i];
  }
  return *this;
}

Matrix& Matrix::operator*=(double scale) {
  for (double& v : values_) v *= scale;
  return *this;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

double Matrix::Trace() const {
  CONDENSA_CHECK_EQ(rows_, cols_);
  double total = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    total += (*this)(i, i);
  }
  return total;
}

double Matrix::MaxAbs() const {
  double max_abs = 0.0;
  for (double v : values_) {
    max_abs = std::max(max_abs, std::abs(v));
  }
  return max_abs;
}

bool Matrix::IsSymmetric(double tolerance) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tolerance) {
        return false;
      }
    }
  }
  return true;
}

std::string Matrix::ToString() const {
  std::string out;
  char buffer[32];
  for (std::size_t r = 0; r < rows_; ++r) {
    out += r == 0 ? "[[" : " [";
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c > 0) out += ", ";
      std::snprintf(buffer, sizeof(buffer), "%.6g", (*this)(r, c));
      out += buffer;
    }
    out += r + 1 == rows_ ? "]]" : "]\n";
  }
  return out;
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}

Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}

Matrix operator*(Matrix m, double scale) {
  m *= scale;
  return m;
}

Matrix operator*(double scale, Matrix m) {
  m *= scale;
  return m;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  CONDENSA_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      double a_rk = a(r, k);
      if (a_rk == 0.0) continue;
      for (std::size_t c = 0; c < b.cols(); ++c) {
        out(r, c) += a_rk * b(k, c);
      }
    }
  }
  return out;
}

Vector MatVec(const Matrix& a, const Vector& v) {
  CONDENSA_CHECK_EQ(a.cols(), v.dim());
  Vector out(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) {
      total += a(r, c) * v[c];
    }
    out[r] = total;
  }
  return out;
}

Matrix TransposeMatMul(const Matrix& a, const Matrix& b) {
  CONDENSA_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    for (std::size_t r = 0; r < a.cols(); ++r) {
      double a_kr = a(k, r);
      if (a_kr == 0.0) continue;
      for (std::size_t c = 0; c < b.cols(); ++c) {
        out(r, c) += a_kr * b(k, c);
      }
    }
  }
  return out;
}

Matrix OuterProduct(const Vector& v, const Vector& w) {
  Matrix out(v.dim(), w.dim());
  for (std::size_t r = 0; r < v.dim(); ++r) {
    for (std::size_t c = 0; c < w.dim(); ++c) {
      out(r, c) = v[r] * w[c];
    }
  }
  return out;
}

bool ApproxEqual(const Matrix& a, const Matrix& b, double tolerance) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      if (std::abs(a(r, c) - b(r, c)) > tolerance) return false;
    }
  }
  return true;
}

double FrobeniusDistance(const Matrix& a, const Matrix& b) {
  CONDENSA_CHECK_EQ(a.rows(), b.rows());
  CONDENSA_CHECK_EQ(a.cols(), b.cols());
  double total = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      double diff = a(r, c) - b(r, c);
      total += diff * diff;
    }
  }
  return std::sqrt(total);
}

}  // namespace condensa::linalg
