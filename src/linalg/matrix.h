// Dense row-major real matrix.
//
// Covers exactly what the condensation pipeline needs: covariance matrices
// (symmetric d x d), eigenvector bases, and small products. Dimensions in
// all paper workloads are <= ~50, so the implementation favours clarity.

#ifndef CONDENSA_LINALG_MATRIX_H_
#define CONDENSA_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"
#include "linalg/vector.h"

namespace condensa::linalg {

class Matrix {
 public:
  Matrix() = default;
  // Creates a zero matrix of the given shape.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), values_(rows * cols, 0.0) {}
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), values_(rows * cols, fill) {}
  // Row-major brace construction: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  // Returns the n x n identity.
  static Matrix Identity(std::size_t n);
  // Returns a square matrix with `diagonal` on the diagonal.
  static Matrix Diagonal(const Vector& diagonal);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return values_.empty(); }

  double operator()(std::size_t r, std::size_t c) const {
    CONDENSA_DCHECK_LT(r, rows_);
    CONDENSA_DCHECK_LT(c, cols_);
    return values_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) {
    CONDENSA_DCHECK_LT(r, rows_);
    CONDENSA_DCHECK_LT(c, cols_);
    return values_[r * cols_ + c];
  }

  const std::vector<double>& values() const { return values_; }

  // Returns row `r` / column `c` as a Vector copy.
  Vector Row(std::size_t r) const;
  Vector Col(std::size_t c) const;
  // Overwrites row `r` / column `c`. Dimensions must match.
  void SetRow(std::size_t r, const Vector& row);
  void SetCol(std::size_t c, const Vector& col);

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scale);

  // Returns the transpose.
  Matrix Transposed() const;

  // Sum of diagonal entries (square matrices only).
  double Trace() const;

  // Largest absolute entry (0 for empty matrices).
  double MaxAbs() const;

  // True when the matrix is square and |A - Aᵀ| <= tolerance entry-wise.
  bool IsSymmetric(double tolerance) const;

  // Multi-line human-readable rendering (debugging aid).
  std::string ToString() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> values_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix m, double scale);
Matrix operator*(double scale, Matrix m);

// Matrix product. Inner dimensions must match.
Matrix MatMul(const Matrix& a, const Matrix& b);

// Matrix-vector product. a.cols() must equal v.dim().
Vector MatVec(const Matrix& a, const Vector& v);

// Returns aᵀ b computed without forming the transpose.
Matrix TransposeMatMul(const Matrix& a, const Matrix& b);

// Outer product v wᵀ.
Matrix OuterProduct(const Vector& v, const Vector& w);

// True when shapes match and |a - b| <= tolerance entry-wise.
bool ApproxEqual(const Matrix& a, const Matrix& b, double tolerance);

// Frobenius norm of (a - b). Shapes must match.
double FrobeniusDistance(const Matrix& a, const Matrix& b);

}  // namespace condensa::linalg

#endif  // CONDENSA_LINALG_MATRIX_H_
