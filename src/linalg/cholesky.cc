#include "linalg/cholesky.h"

#include <cmath>

namespace condensa::linalg {

StatusOr<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.empty()) {
    return InvalidArgumentError("Cholesky of empty matrix");
  }
  if (a.rows() != a.cols()) {
    return InvalidArgumentError("Cholesky requires a square matrix");
  }
  double scale = std::max(1.0, a.MaxAbs());
  if (!a.IsSymmetric(1e-8 * scale)) {
    return InvalidArgumentError("Cholesky requires symmetry");
  }

  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) {
      diag -= l(j, k) * l(j, k);
    }
    if (diag <= 1e-12 * scale) {
      return FailedPreconditionError(
          "Cholesky requires a positive definite matrix");
    }
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double value = a(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        value -= l(i, k) * l(j, k);
      }
      l(i, j) = value / l(j, j);
    }
  }
  return l;
}

Vector CholeskySolve(const Matrix& l, const Vector& b) {
  CONDENSA_CHECK_EQ(l.rows(), l.cols());
  CONDENSA_CHECK_EQ(l.rows(), b.dim());
  const std::size_t n = l.rows();

  // Forward substitution: L y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double value = b[i];
    for (std::size_t k = 0; k < i; ++k) {
      value -= l(i, k) * y[k];
    }
    CONDENSA_CHECK_NE(l(i, i), 0.0);
    y[i] = value / l(i, i);
  }

  // Back substitution: Lᵀ x = y.
  Vector x(n);
  for (std::size_t i = n; i-- > 0;) {
    double value = y[i];
    for (std::size_t k = i + 1; k < n; ++k) {
      value -= l(k, i) * x[k];
    }
    x[i] = value / l(i, i);
  }
  return x;
}

double CholeskyLogDet(const Matrix& l) {
  CONDENSA_CHECK_EQ(l.rows(), l.cols());
  double total = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) {
    CONDENSA_CHECK_GT(l(i, i), 0.0);
    total += std::log(l(i, i));
  }
  return 2.0 * total;
}

}  // namespace condensa::linalg
