#include "linalg/vector.h"

#include <cmath>
#include <cstdio>

namespace condensa::linalg {

Vector& Vector::operator+=(const Vector& other) {
  CONDENSA_CHECK_EQ(dim(), other.dim());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] += other.values_[i];
  }
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  CONDENSA_CHECK_EQ(dim(), other.dim());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] -= other.values_[i];
  }
  return *this;
}

Vector& Vector::operator*=(double scale) {
  for (double& v : values_) v *= scale;
  return *this;
}

Vector& Vector::operator/=(double scale) {
  CONDENSA_CHECK_NE(scale, 0.0);
  for (double& v : values_) v /= scale;
  return *this;
}

double Vector::Norm() const { return std::sqrt(SquaredNorm()); }

double Vector::SquaredNorm() const {
  double total = 0.0;
  for (double v : values_) total += v * v;
  return total;
}

double Vector::Sum() const {
  double total = 0.0;
  for (double v : values_) total += v;
  return total;
}

Vector Vector::Normalized() const {
  double norm = Norm();
  CONDENSA_CHECK_GT(norm, 0.0);
  Vector out = *this;
  out /= norm;
  return out;
}

std::string Vector::ToString() const {
  std::string out = "[";
  char buffer[32];
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    std::snprintf(buffer, sizeof(buffer), "%.6g", values_[i]);
    out += buffer;
  }
  out += "]";
  return out;
}

Vector operator+(Vector a, const Vector& b) {
  a += b;
  return a;
}

Vector operator-(Vector a, const Vector& b) {
  a -= b;
  return a;
}

Vector operator*(Vector v, double scale) {
  v *= scale;
  return v;
}

Vector operator*(double scale, Vector v) {
  v *= scale;
  return v;
}

Vector operator/(Vector v, double scale) {
  v /= scale;
  return v;
}

double Dot(const Vector& a, const Vector& b) {
  CONDENSA_CHECK_EQ(a.dim(), b.dim());
  double total = 0.0;
  for (std::size_t i = 0; i < a.dim(); ++i) {
    total += a[i] * b[i];
  }
  return total;
}

double SquaredDistance(const Vector& a, const Vector& b) {
  CONDENSA_CHECK_EQ(a.dim(), b.dim());
  return SquaredDistanceSpan(a.data(), b.data(), a.dim());
}

double SquaredDistanceSpan(const double* a, const double* b,
                           std::size_t dim) {
  double total = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    double diff = a[i] - b[i];
    total += diff * diff;
  }
  return total;
}

double Distance(const Vector& a, const Vector& b) {
  return std::sqrt(SquaredDistance(a, b));
}

bool ApproxEqual(const Vector& a, const Vector& b, double tolerance) {
  if (a.dim() != b.dim()) return false;
  for (std::size_t i = 0; i < a.dim(); ++i) {
    if (std::abs(a[i] - b[i]) > tolerance) return false;
  }
  return true;
}

}  // namespace condensa::linalg
