#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace condensa::obs {
namespace {

// Shortest %g precision that round-trips the value exactly, so bucket
// bounds print as 1e-06 rather than 9.9999999999999995e-07.
std::string FormatDouble(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  char buffer[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Labels SortedLabels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

// Prometheus family name of a series key: everything before the '{'.
std::string_view FamilyOf(const std::string& series_key) {
  std::string_view view = series_key;
  return view.substr(0, view.find('{'));
}

}  // namespace

std::string SeriesKey(std::string_view name, const Labels& labels) {
  std::string key(name);
  if (labels.empty()) {
    return key;
  }
  Labels sorted = SortedLabels(labels);
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ',';
    key += sorted[i].first;
    key += "=\"";
    key += sorted[i].second;
    key += '"';
  }
  key += '}';
  return key;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  CONDENSA_CHECK(!upper_bounds_.empty());
  for (std::size_t i = 1; i < upper_bounds_.size(); ++i) {
    CONDENSA_CHECK_LT(upper_bounds_[i - 1], upper_bounds_[i]);
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      upper_bounds_.size() + 1);
  for (std::size_t i = 0; i <= upper_bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  // Buckets are `le` (value <= bound): the first bound >= value wins;
  // values above every bound land in the +Inf bucket at index size().
  std::size_t bucket =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value) -
      upper_bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(upper_bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       std::size_t count) {
  CONDENSA_CHECK_GT(start, 0.0);
  CONDENSA_CHECK_GT(factor, 1.0);
  CONDENSA_CHECK_GT(count, 0u);
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

const std::vector<double>& DefaultLatencyBucketsSeconds() {
  static const std::vector<double> buckets =
      ExponentialBuckets(1e-6, 4.0, 14);
  return buckets;
}

const std::vector<double>& RpcLatencyBucketsSeconds() {
  static const std::vector<double> buckets =
      ExponentialBuckets(1e-4, 2.0, 17);
  return buckets;
}

MetricsRegistry::Series& MetricsRegistry::GetSeries(
    std::string_view name, const Labels& labels, Kind kind,
    const std::vector<double>& upper_bounds) {
  std::string key = SeriesKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(key);
  if (it == series_.end()) {
    Series series;
    series.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        series.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        series.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        series.histogram = std::make_unique<Histogram>(
            upper_bounds.empty() ? DefaultLatencyBucketsSeconds()
                                 : upper_bounds);
        break;
    }
    it = series_.emplace(std::move(key), std::move(series)).first;
  }
  CONDENSA_CHECK(it->second.kind == kind);
  return it->second;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     const Labels& labels) {
  return *GetSeries(name, labels, Kind::kCounter, {}).counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name,
                                 const Labels& labels) {
  return *GetSeries(name, labels, Kind::kGauge, {}).gauge;
}

Histogram& MetricsRegistry::GetHistogram(
    std::string_view name, const Labels& labels,
    const std::vector<double>& upper_bounds) {
  return *GetSeries(name, labels, Kind::kHistogram, upper_bounds).histogram;
}

std::string MetricsRegistry::DumpPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string_view last_family;
  for (const auto& [key, series] : series_) {
    std::string_view family = FamilyOf(key);
    if (family != last_family) {
      out += "# TYPE ";
      out += family;
      switch (series.kind) {
        case Kind::kCounter:
          out += " counter\n";
          break;
        case Kind::kGauge:
          out += " gauge\n";
          break;
        case Kind::kHistogram:
          out += " histogram\n";
          break;
      }
      last_family = family;
    }
    char buffer[64];
    switch (series.kind) {
      case Kind::kCounter:
        std::snprintf(buffer, sizeof(buffer), " %" PRIu64 "\n",
                      series.counter->value());
        out += key;
        out += buffer;
        break;
      case Kind::kGauge:
        out += key;
        out += ' ';
        out += FormatDouble(series.gauge->value());
        out += '\n';
        break;
      case Kind::kHistogram: {
        // Cumulative le-buckets, then sum and count, Prometheus-style.
        const Histogram& h = *series.histogram;
        // "{a=\"b\"}" or "" — the label block shared by every line.
        const std::string labels_part(key.substr(family.size()));
        auto bucket_line = [&](const std::string& le) {
          std::string line(family);
          line += "_bucket";
          if (labels_part.empty()) {
            line += "{le=\"" + le + "\"}";
          } else {
            line += labels_part.substr(0, labels_part.size() - 1) +
                    ",le=\"" + le + "\"}";
          }
          return line;
        };
        std::vector<std::uint64_t> counts = h.bucket_counts();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
          cumulative += counts[i];
          out += bucket_line(i < h.upper_bounds().size()
                                 ? FormatDouble(h.upper_bounds()[i])
                                 : std::string("+Inf"));
          std::snprintf(buffer, sizeof(buffer), " %" PRIu64 "\n",
                        cumulative);
          out += buffer;
        }
        out += std::string(family) + "_sum" + labels_part + ' ' +
               FormatDouble(h.sum()) + '\n';
        std::snprintf(buffer, sizeof(buffer), " %" PRIu64 "\n", h.count());
        out += std::string(family) + "_count" + labels_part + buffer;
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string counters, gauges, histograms;
  for (const auto& [key, series] : series_) {
    switch (series.kind) {
      case Kind::kCounter: {
        if (!counters.empty()) counters += ',';
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%" PRIu64,
                      series.counter->value());
        counters += '"' + JsonEscape(key) + "\":" + buffer;
        break;
      }
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ',';
        gauges +=
            '"' + JsonEscape(key) + "\":" + FormatDouble(series.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *series.histogram;
        if (!histograms.empty()) histograms += ',';
        std::string entry = '"' + JsonEscape(key) + "\":{\"count\":";
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%" PRIu64, h.count());
        entry += buffer;
        entry += ",\"sum\":" + FormatDouble(h.sum());
        entry += ",\"buckets\":[";
        std::vector<std::uint64_t> counts = h.bucket_counts();
        for (std::size_t i = 0; i < counts.size(); ++i) {
          if (i > 0) entry += ',';
          entry += "{\"le\":";
          entry += i < h.upper_bounds().size()
                       ? FormatDouble(h.upper_bounds()[i])
                       : std::string("\"+Inf\"");
          std::snprintf(buffer, sizeof(buffer), "%" PRIu64, counts[i]);
          entry += ",\"count\":";
          entry += buffer;
          entry += '}';
        }
        entry += "]}";
        histograms += entry;
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

void Histogram::ResetValue() {
  const std::size_t buckets = upper_bounds_.size() + 1;
  for (std::size_t i = 0; i < buckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, series] : series_) {
    switch (series.kind) {
      case Kind::kCounter:
        series.counter->ResetValue();
        break;
      case Kind::kGauge:
        series.gauge->ResetValue();
        break;
      case Kind::kHistogram:
        series.histogram->ResetValue();
        break;
    }
  }
}

MetricsRegistry& DefaultRegistry() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace condensa::obs
