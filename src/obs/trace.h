// Trace spans: named wall-time intervals with an optional
// chrome://tracing-compatible JSON event stream.
//
// A `TraceSpan` is an RAII interval. On destruction it (a) observes its
// duration into a histogram when one is attached, and (b) appends a
// complete ("ph":"X") event to the process-wide trace buffer when tracing
// is enabled. Tracing is off by default and costs one relaxed atomic load
// per span when off.
//
// Usage:
//   obs::StartTracing();
//   { obs::TraceSpan span("engine.condense"); ...work...; }
//   WriteStringToFile(obs::StopTracingAndDump());  // load in ui.perfetto.dev
//
// The dump is a JSON object {"traceEvents": [...]} where each event has
// name, ph, ts (µs since trace start), dur (µs), pid, and tid — the
// Chrome Trace Event format, loadable by chrome://tracing and Perfetto.

#ifndef CONDENSA_OBS_TRACE_H_
#define CONDENSA_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/timing.h"

namespace condensa::obs {

// Begins collecting span events into the process-wide buffer. Clears any
// previously collected events.
void StartTracing();

// True while tracing is enabled.
bool TracingEnabled();

// Stops collecting and returns the Chrome Trace Event JSON for everything
// collected since StartTracing(). Returns {"traceEvents":[]} when tracing
// was never started.
std::string StopTracingAndDump();

// Number of spans dropped because the buffer was full (capped so a
// runaway loop cannot exhaust memory; see kMaxTraceEvents in trace.cc).
std::uint64_t DroppedTraceEvents();

class TraceSpan {
 public:
  // `name` must outlive the span (string literals in practice). The
  // histogram, when given, receives the span duration in seconds.
  explicit TraceSpan(std::string_view name, Histogram* sink = nullptr);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

 private:
  std::string_view name_;
  Histogram* sink_;
  Timer timer_;
  // Microseconds since trace start at construction; only meaningful when
  // tracing was enabled at construction time.
  double start_us_ = 0.0;
  bool tracing_;
};

}  // namespace condensa::obs

#endif  // CONDENSA_OBS_TRACE_H_
