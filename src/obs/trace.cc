#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

namespace condensa::obs {
namespace {

// Hard cap on buffered events; spans beyond it are counted, not stored.
constexpr std::size_t kMaxTraceEvents = 1 << 20;

struct TraceEvent {
  std::string_view name;
  double ts_us;
  double dur_us;
  std::uint32_t tid;
};

struct TraceState {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::chrono::steady_clock::time_point origin;
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> dropped{0};
};

TraceState& State() {
  static TraceState* state = new TraceState();
  return *state;
}

// Small stable per-thread id for the "tid" field.
std::uint32_t CurrentTid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1);
  return tid;
}

double MicrosSince(std::chrono::steady_clock::time_point origin) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin)
      .count();
}

}  // namespace

void StartTracing() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.events.clear();
  state.dropped.store(0, std::memory_order_relaxed);
  state.origin = std::chrono::steady_clock::now();
  state.enabled.store(true, std::memory_order_release);
}

bool TracingEnabled() {
  return State().enabled.load(std::memory_order_acquire);
}

std::uint64_t DroppedTraceEvents() {
  return State().dropped.load(std::memory_order_relaxed);
}

std::string StopTracingAndDump() {
  TraceState& state = State();
  state.enabled.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(state.mu);
  std::string out = "{\"traceEvents\":[";
  char buffer[160];
  for (std::size_t i = 0; i < state.events.size(); ++i) {
    const TraceEvent& event = state.events[i];
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"name\":\"%.*s\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%u}",
                  i == 0 ? "" : ",", static_cast<int>(event.name.size()),
                  event.name.data(), event.ts_us, event.dur_us, event.tid);
    out += buffer;
  }
  out += "]}";
  state.events.clear();
  return out;
}

TraceSpan::TraceSpan(std::string_view name, Histogram* sink)
    : name_(name), sink_(sink), tracing_(TracingEnabled()) {
  if (tracing_) {
    start_us_ = MicrosSince(State().origin);
  }
}

TraceSpan::~TraceSpan() {
  const double elapsed = timer_.ElapsedSeconds();
  if (sink_ != nullptr) {
    sink_->Observe(elapsed);
  }
  if (!tracing_ || !TracingEnabled()) {
    return;
  }
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.events.size() >= kMaxTraceEvents) {
    state.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  state.events.push_back(
      TraceEvent{name_, start_us_, elapsed * 1e6, CurrentTid()});
}

}  // namespace condensa::obs
