// Process-wide metrics: counters, gauges, and fixed-bucket histograms.
//
// The condensation pipeline is instrumented with named metrics so that
// "where does condensation time go, how many groups split, how often did
// recovery replay the journal" are answerable from a running process
// instead of from the source. The design follows the Prometheus data
// model without depending on it:
//
//   * a Counter only goes up (events, bytes, fsyncs),
//   * a Gauge is a settable value (last run's average group size),
//   * a Histogram counts observations into fixed buckets and keeps the
//     sum, so latency distributions survive aggregation.
//
// Metrics are addressed by name plus an ordered label list; the same
// (name, labels) pair always returns the same instance. Lookup takes a
// mutex, so call sites cache the returned reference (instances are never
// invalidated for the registry's lifetime) and the hot path is a relaxed
// atomic update. Exposition is pull-based: DumpPrometheusText() and
// DumpJson() snapshot the registry on demand and cost nothing until
// called.
//
// Naming scheme (see docs/observability.md): condensa_<subsystem>_<what>
// with a _total suffix for counters and a _seconds/_bytes unit suffix
// where applicable, e.g. condensa_dynamic_splits_total,
// condensa_static_nn_search_seconds.

#ifndef CONDENSA_OBS_METRICS_H_
#define CONDENSA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace condensa::obs {

// One "key=value" metric dimension. Labels are kept sorted by key, so
// {{"mode","static"}} and a differently-ordered spelling are one series.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;  // MetricsRegistry::Reset zeroing only
  void ResetValue() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<std::uint64_t> value_{0};
};

// Last-written value (CAS loop keeps Add correct under contention).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;  // MetricsRegistry::Reset zeroing only
  void ResetValue() { value_.store(0.0, std::memory_order_relaxed); }

  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: counts per upper bound plus an implicit +Inf
// bucket, with total count and sum of observed values. Bucket counts are
// non-cumulative internally; exposition cumulates them Prometheus-style.
class Histogram {
 public:
  // `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  // Per-bucket counts; index upper_bounds().size() is the +Inf bucket.
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  friend class MetricsRegistry;  // MetricsRegistry::Reset zeroing only
  void ResetValue();

  std::vector<double> upper_bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Exponentially growing bucket bounds: start, start*factor, ... (count
// bounds total). The standard choice for latency histograms.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       std::size_t count);

// Default wall-time buckets: 1 µs .. ~67 s, factor 4.
const std::vector<double>& DefaultLatencyBucketsSeconds();

// Network round-trip buckets: 100 µs .. ~6.5 s, factor 2 — finer than
// the default in the band where RPC latencies actually live, so a fabric
// heartbeat SLO is readable from the histogram instead of one fat
// bucket.
const std::vector<double>& RpcLatencyBucketsSeconds();

// A named collection of metrics. Thread-safe. Instances returned by the
// getters live as long as the registry and are safe to update from any
// thread without further synchronization.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returns the counter/gauge/histogram registered under (name, labels),
  // creating it on first use. Requesting a series as a different kind
  // than it was registered with aborts (CONDENSA_CHECK).
  Counter& GetCounter(std::string_view name, const Labels& labels = {});
  Gauge& GetGauge(std::string_view name, const Labels& labels = {});
  // Omitting `upper_bounds` uses DefaultLatencyBucketsSeconds(). Bounds
  // are fixed by the first registration of the series.
  Histogram& GetHistogram(std::string_view name, const Labels& labels = {},
                          const std::vector<double>& upper_bounds = {});

  // Prometheus text exposition format (one "# TYPE" line per family).
  std::string DumpPrometheusText() const;
  // JSON object: {"counters": {...}, "gauges": {...}, "histograms": {...}}
  // keyed by "name{label=\"v\",...}" series strings.
  std::string DumpJson() const;

  // Zeroes every registered series IN PLACE — counters and gauges back
  // to 0, histograms emptied. The series objects stay alive, so
  // references cached by instruments (thread-local tallies, per-module
  // singletons) remain valid across a Reset. Series identities are kept
  // (they still appear in the exposition, at zero). Test isolation only.
  void Reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series& GetSeries(std::string_view name, const Labels& labels, Kind kind,
                    const std::vector<double>& upper_bounds);

  mutable std::mutex mu_;
  // Keyed by series string; std::map keeps exposition deterministic.
  std::map<std::string, Series> series_;
};

// The process-wide registry every built-in instrument records into.
MetricsRegistry& DefaultRegistry();

// Canonical "name{k1=\"v1\",k2=\"v2\"}" series key ("name" when unlabeled).
std::string SeriesKey(std::string_view name, const Labels& labels);

}  // namespace condensa::obs

#endif  // CONDENSA_OBS_METRICS_H_
