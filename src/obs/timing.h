// Wall-clock timing, plus the RAII bridge from elapsed time to metrics.
//
// `Timer` (formerly common/timer.h) is the one timing idiom in the
// codebase: a steady-clock stopwatch. `ScopedTimer` records the elapsed
// seconds of a scope into a Histogram on destruction, which is how every
// *_seconds metric in the pipeline is produced.

#ifndef CONDENSA_OBS_TIMING_H_
#define CONDENSA_OBS_TIMING_H_

#include <chrono>

#include "obs/metrics.h"

namespace condensa::obs {

// Measures elapsed wall-clock time from construction (or the last Reset).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  // Returns seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Returns milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Observes the lifetime of a scope, in seconds, into a histogram.
//
//   {
//     ScopedTimer timer(registry.GetHistogram("condensa_x_seconds"));
//     ...work...
//   }  // histogram records the elapsed wall time here
//
// The null-sink constructor makes sampling cheap to express: pass a
// pointer that is null on the iterations that should not be measured.
// With a null sink the clock is never read at all (a steady-clock read
// costs tens of nanoseconds — real money on per-record paths), so
// ElapsedSeconds() is only meaningful when a sink was attached.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink) : sink_(&sink), start_(Clock::now()) {}
  explicit ScopedTimer(Histogram* sink)
      : sink_(sink),
        start_(sink != nullptr ? Clock::now() : Clock::time_point()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (sink_ != nullptr) {
      sink_->Observe(ElapsedSeconds());
    }
  }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Detaches the sink: nothing is recorded at destruction.
  void Cancel() { sink_ = nullptr; }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* sink_;
  Clock::time_point start_;
};

}  // namespace condensa::obs

#endif  // CONDENSA_OBS_TIMING_H_
